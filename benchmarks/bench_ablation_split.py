"""Ablation: the Section-5.3 hull-integral split versus a naive volume split.

DESIGN.md calls out the split criterion as the Gauss-tree's key design
choice. This ablation builds two insertion-based trees over the same
heteroscedastic data — one splitting by the paper's hull-integral score,
one by plain parameter-space volume — and compares page accesses for the
same MLIQ workload. The quality-vs-spread *bulk-loading* counterpart
lives in bench_ablation_bulkload.py.
"""

import numpy as np
import pytest

from repro.core.queries import MLIQuery
from repro.data.synthetic import database_from_arrays
from repro.data.uncertainty import per_object_quality_sigmas
from repro.data.workload import identification_workload
from repro.gausstree.mliq import gausstree_mliq
from repro.gausstree.split import volume_split_quality
from repro.gausstree.tree import GaussTree

N, D, QUERIES = 3_000, 8, 25


@pytest.fixture(scope="module")
def dataset():
    # Per-object quality sigmas: uncertainty is clusterable in parameter
    # space, which is the regime where the choice of split axis (mu vs
    # sigma) actually matters — precisely the case Section 5.3 analyses.
    # (With per-cell-independent sigma noise no split criterion can
    # separate the sigma bands, and the two strategies tie.)
    rng = np.random.default_rng(3)
    mu = rng.uniform(0, 1, (N, D))
    sigma = per_object_quality_sigmas(
        rng, N, D, low=0.003, high=0.012, quality_spread=40.0
    )
    db = database_from_arrays(mu, sigma)
    return db, identification_workload(db, QUERIES, seed=4)


def _build_and_measure(db, workload, split_quality=None):
    kwargs = {} if split_quality is None else {"split_quality": split_quality}
    tree = GaussTree(dims=db.dims, degree=8, **kwargs)
    tree.extend(db.vectors)
    pages = 0
    for item in workload:
        _, stats = gausstree_mliq(
            tree, MLIQuery(item.q, 1), tolerance=float("inf")
        )
        pages += stats.pages_accessed
    return pages


def test_split_hull_integral(benchmark, dataset):
    db, workload = dataset
    pages = benchmark.pedantic(
        lambda: _build_and_measure(db, workload), rounds=1, iterations=1
    )
    benchmark.extra_info["pages_per_query"] = pages / QUERIES
    print(f"\nhull-integral split: {pages / QUERIES:.1f} pages/query")


def test_split_volume(benchmark, dataset):
    db, workload = dataset
    pages = benchmark.pedantic(
        lambda: _build_and_measure(db, workload, volume_split_quality),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["pages_per_query"] = pages / QUERIES
    print(f"\nvolume split: {pages / QUERIES:.1f} pages/query")


def test_split_criteria_comparison(dataset):
    """Finding (recorded in EXPERIMENTS.md): for *insertion-built* trees
    on our generators the two split criteria land within ~10% of each
    other — the path-selection rules dominate node quality. The
    hull-integral criterion's large win (5x page accesses) appears when
    it drives the global leaf partitioning in bulk loading
    (bench_ablation_bulkload.py). We pin the ablation as a sanity band
    rather than asserting a winner."""
    db, workload = dataset
    hull_pages = _build_and_measure(db, workload)
    volume_pages = _build_and_measure(db, workload, volume_split_quality)
    print(
        f"\nablation: hull-integral {hull_pages / QUERIES:.1f} vs "
        f"volume {volume_pages / QUERIES:.1f} pages/query"
    )
    ratio = hull_pages / volume_pages
    assert 0.5 < ratio < 1.5
