#!/usr/bin/env python
"""Write-path benchmark: group commit vs per-operation WAL commits.

Opens a saved Gauss-tree *writable* and measures durable (fsync'd)
insert throughput two ways:

* ``per_op``       — one WAL transaction + fsync per ``insert`` (the
  PR-2 write path; every insert logs full images of the pages it
  dirtied, ~30 KB each on the default 8 KiB layout).
* ``group_commit`` — ``insert_many`` batches (8 / 32 / 128) coalesced
  into one WAL transaction each: one fsync per batch and each dirtied
  page logged once (latest image), so both the barrier count and the
  WAL byte volume collapse.

Both wall-clock and **modeled** numbers are reported, per the repo's
figure-7 convention (see ``docs/benchmarks.md``): containerised hosts
absorb fsync into a write cache (~0.1 ms), hiding exactly the cost
group commit exists to amortise, so durable-commit time is also priced
by ``DiskCostModel.commit_seconds`` (sequential WAL transfer plus one
positioning delay per fsync barrier on the modeled 2006 disk). The
acceptance bar — group commit at batch >= 32 serves >= 5x the fsync'd
insert throughput of per-op commits — is asserted on the modeled
ruler, and the measured wall-clock ratio is reported alongside.

Sanity is asserted, not assumed: every mode's tree is closed *without*
a checkpoint and recovered from the WAL alone; recovered counts must be
exact (group batches all-or-nothing) and a recovered MLIQ must answer
identically to an in-memory tree of the same objects. A final section
measures the same batched writes routed through a writable **sharded**
session (placement-routed ``insert_many`` + interleaved queries).

Run:  PYTHONPATH=src python benchmarks/bench_writes.py
      (--smoke shrinks the workload for CI; REPRO_BENCH_N /
      REPRO_BENCH_WRITES size the full run)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.core.pfv import PFV  # noqa: E402
from repro.core.queries import MLIQuery  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.gausstree.bulkload import bulk_load  # noqa: E402
from repro.gausstree.mliq import gausstree_mliq  # noqa: E402
from repro.gausstree.tree import GaussTree  # noqa: E402
from repro.storage.costmodel import DiskCostModel  # noqa: E402
from repro.storage.wal import REC_PAGE, WAL_MAGIC, WriteAheadLog  # noqa: E402

#: The issue's acceptance bar, on the modeled durable-commit ruler.
TARGET_SPEEDUP = 5.0


def _fresh_vectors(rng, n, d, tag):
    return [
        PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(0.05, 0.4, d),
            key=(tag, i),
        )
        for i in range(n)
    ]


def _wal_stats(wal_path: str) -> tuple[int, int, int]:
    """(bytes, committed transactions, page images) in a WAL file."""
    size = max(0, os.path.getsize(wal_path) - len(WAL_MAGIC))
    txns = 0
    pages = 0
    for records, _end in WriteAheadLog.iter_committed(wal_path):
        txns += 1
        pages += sum(1 for rtype, _ in records if rtype == REC_PAGE)
    return size, txns, pages


def _run_mode(base_path, tmp_dir, mode, vectors, query, cost):
    """Insert ``vectors`` into a fresh copy of the base index under one
    commit discipline; verify WAL-only recovery; return the numbers."""
    name, batch = mode
    path = os.path.join(tmp_dir, f"{name}.gauss")
    shutil.copyfile(base_path, path)
    tree = GaussTree.open(path, writable=True, fsync=True)
    n_before = len(tree)
    started = time.perf_counter()
    if batch is None:
        for v in vectors:
            tree.insert(v)
    else:
        for i in range(0, len(vectors), batch):
            tree.insert_many(vectors[i : i + batch])
    seconds = time.perf_counter() - started
    wal_bytes, txns, pages_logged = _wal_stats(path + ".wal")
    # Die without a checkpoint: recovery must replay the WAL alone.
    tree.close(checkpoint=False)
    recovered = GaussTree.open(path)
    assert len(recovered) == n_before + len(vectors), (
        name,
        len(recovered),
        n_before + len(vectors),
    )
    disk_matches, _ = gausstree_mliq(recovered, query)
    recovered.close()

    modeled_commit = cost.commit_seconds(wal_bytes, txns)
    modeled_total = modeled_commit + cost.modeled_cpu_seconds(0, pages_logged)
    n = len(vectors)
    return {
        "commit_discipline": (
            "one txn + fsync per insert"
            if batch is None
            else f"group commit, batch={batch}"
        ),
        "inserts": n,
        "seconds": round(seconds, 4),
        "inserts_per_second": round(n / seconds, 1),
        "wal_bytes": wal_bytes,
        "wal_bytes_per_insert": round(wal_bytes / n, 1),
        "fsyncs": txns,
        "page_images_logged": pages_logged,
        "modeled_commit_seconds": round(modeled_total, 4),
        "modeled_inserts_per_second": round(n / modeled_total, 1),
    }, disk_matches


def _run_sharded_router(db, vectors, d, rng, tmp_dir):
    """Batched writes + interleaved queries through a writable sharded
    session over a 3-shard manifest; returns throughput + sanity info."""
    import repro
    from repro.cluster import build_shards
    from repro.engine import MLIQ

    manifest = build_shards(db, 3, os.path.join(tmp_dir, "router"))
    q = PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.4, d))
    with repro.connect(
        manifest.source_path, backend="sharded", writable=True
    ) as session:
        started = time.perf_counter()
        for i in range(0, len(vectors), 32):
            session.insert_many(vectors[i : i + 32])
            session.execute(MLIQ(q, 3))  # interleaved read
        seconds = time.perf_counter() - started
        total = len(session)
        session.flush()
    with repro.connect(manifest.source_path, backend="sharded") as session:
        assert len(session) == total, (len(session), total)
        reread = session.execute(MLIQ(q, 5))
        assert len(reread.matches) == 5
    return {
        "shards": 3,
        "inserts": len(vectors),
        "interleaved_query_batches": (len(vectors) + 31) // 32,
        "seconds": round(seconds, 4),
        "inserts_per_second": round(len(vectors) / seconds, 1),
        "total_objects_after": total,
    }


def run(n: int, d: int, n_inserts: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    db = uniform_pfv_dataset(n=n, d=d, seed=seed)
    tmp_dir = tempfile.mkdtemp()
    base_path = os.path.join(tmp_dir, "base.gauss")
    tree = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
    tree.save(base_path)
    cost = DiskCostModel()

    modes = [("per_op", None), ("batch_8", 8), ("batch_32", 32),
             ("batch_128", 128)]
    results: dict[str, dict] = {}
    for mode in modes:
        vectors = _fresh_vectors(rng, n_inserts, d, mode[0])
        query = MLIQuery(
            PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.4, d)), 5
        )
        # Every mode inserts its own fresh vectors into its own copy;
        # the recovered index must answer like an in-memory replay of
        # exactly the same objects.
        results[mode[0]], matches = _run_mode(
            base_path, tmp_dir, mode, vectors, query, cost
        )
        reference = GaussTree(
            dims=d, degree=tree.degree, layout=tree.layout,
            sigma_rule=tree.sigma_rule,
        )
        reference.extend(list(db.vectors) + vectors)
        mem_matches, _ = gausstree_mliq(reference, query)
        assert [m.key for m in mem_matches] == [m.key for m in matches], (
            mode[0]
        )

    speedups = {}
    base = results["per_op"]
    for name in ("batch_8", "batch_32", "batch_128"):
        mode_result = results[name]
        speedups[name] = {
            "measured": round(
                mode_result["inserts_per_second"]
                / base["inserts_per_second"],
                2,
            ),
            "modeled": round(
                mode_result["modeled_inserts_per_second"]
                / base["modeled_inserts_per_second"],
                2,
            ),
            "wal_bytes_ratio": round(
                base["wal_bytes"] / mode_result["wal_bytes"], 2
            ),
            "fsync_ratio": round(
                base["fsyncs"] / mode_result["fsyncs"], 2
            ),
        }

    # The acceptance bar: >= 5x fsync'd insert throughput at batch >= 32
    # on the modeled durable-commit ruler; measured must never regress.
    for name in ("batch_32", "batch_128"):
        assert speedups[name]["modeled"] >= TARGET_SPEEDUP, (
            name,
            speedups[name],
        )
        assert speedups[name]["measured"] >= 0.9, (name, speedups[name])

    router_vectors = _fresh_vectors(rng, n_inserts, d, "router")
    router = _run_sharded_router(db, router_vectors, d, rng, tmp_dir)

    shutil.rmtree(tmp_dir)
    return {
        "workload": {
            "n_objects": n,
            "dims": d,
            "n_inserts_per_mode": n_inserts,
            "seed": seed,
        },
        "conventions": (
            "modeled_* prices durable commits on the repo's 2006-era "
            "DiskCostModel (sequential WAL transfer + one positioning "
            "delay per fsync barrier + per-page CPU); wall-clock is "
            "reported alongside and is host-bound — a container whose "
            "fsync lands in a write cache hides the barrier cost that "
            "dominates on real durable disks. See docs/benchmarks.md."
        ),
        "per_op": results["per_op"],
        "group_commit": {
            name: results[name]
            for name in ("batch_8", "batch_32", "batch_128")
        },
        "speedup_vs_per_op": speedups,
        "sharded_router": router,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_BENCH_N", 5000))
    )
    parser.add_argument("--d", type=int, default=10)
    parser.add_argument(
        "--inserts",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_WRITES", 512)),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload (same assertions, smaller sizes)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_writes.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 1500)
        args.inserts = min(args.inserts, 256)
    result = run(args.n, args.d, args.inserts, args.seed)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))
    s32 = result["speedup_vs_per_op"]["batch_32"]
    print(
        f"\ngroup commit (batch 32): {s32['modeled']}x modeled fsync'd "
        f"insert throughput vs per-op ({s32['measured']}x measured "
        f"wall-clock on this host, {s32['wal_bytes_ratio']}x fewer WAL "
        f"bytes, {s32['fsync_ratio']}x fewer fsyncs) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
