"""Microbenchmarks of the hot paths (timed with pytest-benchmark proper).

These are the kernels whose cost the 2006 cost model abstracts: hull
bound evaluation, batched Lemma-1 refinement, tree insertion, bulk
loading and the two query algorithms on a mid-sized tree.
"""

import numpy as np
import pytest

from repro.core.joint import log_joint_density_batch
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.data.synthetic import uniform_pfv_dataset
from repro.data.workload import identification_workload
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.hull import log_hull_upper, node_log_bounds_batch
from repro.gausstree.tree import GaussTree

D = 10


@pytest.fixture(scope="module")
def db():
    return uniform_pfv_dataset(n=5_000, d=D)


@pytest.fixture(scope="module")
def tree(db):
    return bulk_load(db.vectors, sigma_rule=db.sigma_rule)


@pytest.fixture(scope="module")
def query(db):
    return identification_workload(db, 1, seed=3)[0].q


def test_hull_upper_scalar_grid(benchmark):
    x = np.linspace(-3, 3, 1_000)
    benchmark(lambda: log_hull_upper(x, 0.0, 1.0, 0.1, 0.8))


def test_node_bounds_batch(benchmark, query, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    k = 32
    mu_lo = rng.uniform(0, 0.5, (k, D))
    mu_hi = mu_lo + rng.uniform(0, 0.5, (k, D))
    sg_lo = rng.uniform(0.01, 0.1, (k, D))
    sg_hi = sg_lo + rng.uniform(0, 0.2, (k, D))
    benchmark(lambda: node_log_bounds_batch(mu_lo, mu_hi, sg_lo, sg_hi, query))


def test_joint_density_batch(benchmark, db, query):
    mu, sigma = db.mu_matrix, db.sigma_matrix
    benchmark(lambda: log_joint_density_batch(mu, sigma, query))


def test_tree_insert(benchmark, db):
    vectors = list(db.vectors[:500])

    def build():
        t = GaussTree(dims=D)
        t.extend(vectors)
        return t

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_bulk_load(benchmark, db):
    benchmark.pedantic(
        lambda: bulk_load(db.vectors, sigma_rule=db.sigma_rule),
        rounds=3,
        iterations=1,
    )


def test_mliq_query(benchmark, tree, query):
    from repro.gausstree.mliq import gausstree_mliq

    benchmark(lambda: gausstree_mliq(tree, MLIQuery(query, 1), tolerance=0.01))


def test_tiq_query(benchmark, tree, query):
    from repro.gausstree.tiq import gausstree_tiq

    benchmark(lambda: gausstree_tiq(tree, ThresholdQuery(query, 0.5)))
