#!/usr/bin/env python
"""Persistence + batch query benchmark (standalone script).

Builds a Gauss-tree, saves it to a real index file, reconnects to it
cold through the unified session API and compares three ways of
answering the same 100-query MLIQ workload:

* ``fresh_open_per_query`` — worst case: every query re-connects to the
  index (a new process per query); nodes re-materialize from page bytes.
* ``per_query_loop``       — one connection, ``execute`` per query.
* ``batch``                — one connection, one ``execute_many`` (the
  backend's buffer-warm shared-pass batch entry point).

The sequential-scan backend gets the same treatment (execute-loop vs
the single-pass ``execute_many``). On top of that, the same tree is
saved twice — interleaved v2 pages and columnar v3 pages — and three
configurations race over interleaved best-of-3 rounds: the v2 baseline
serving path (per-query execution against the v2 file, i.e. what the
cluster served before format v3), the v2 batch, and the v3 batch. The
``format_v3_vs_v2`` section reports all wall-clock times, the
queries-per-second headline and both v3 speedups, with the match keys
*and posteriors* asserted bit-for-bit equal across every configuration.
Numbers are written to ``BENCH_persistence.json`` next to the
repository root so CI and reviewers can diff them.

Run:  PYTHONPATH=src python benchmarks/bench_persistence.py
      (REPRO_BENCH_N / REPRO_BENCH_QUERIES shrink or grow the workload;
       --smoke runs a seconds-scale configuration for CI)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.data.workload import identification_workload  # noqa: E402
from repro.engine import MLIQ, connect  # noqa: E402
from repro.gausstree.bulkload import bulk_load  # noqa: E402


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run(n: int, d: int, n_queries: int, k: int, seed: int) -> dict:
    db = uniform_pfv_dataset(n=n, d=d, seed=seed)
    workload = identification_workload(db, n_queries, seed=seed + 1)
    specs = [MLIQ(w.q, k) for w in workload]

    tree, build_s = _timed(lambda: bulk_load(db.vectors, sigma_rule=db.sigma_rule))
    tmp_dir = tempfile.mkdtemp()
    index_path = os.path.join(tmp_dir, "bench.gauss")
    _, save_s = _timed(lambda: tree.save(index_path))
    file_bytes = os.path.getsize(index_path)

    # Worst case: a fresh process per query (connect + single query).
    def fresh_open_per_query():
        answers = []
        for spec in specs:
            with connect(index_path) as session:
                answers.append(session.execute(spec).matches)
        return answers

    fresh_answers, fresh_s = _timed(fresh_open_per_query)

    # One cold connection shared by both single-query loop and batch.
    disk, open_s = _timed(lambda: connect(index_path))
    loop_answers, loop_s = _timed(
        lambda: [disk.execute(spec).matches for spec in specs]
    )
    disk.cold_start()
    batch_rs, batch_s = _timed(lambda: disk.execute_many(specs))
    batch_stats = batch_rs.stats
    for a, b, c in zip(fresh_answers, loop_answers, batch_rs):
        assert [m.key for m in a] == [m.key for m in b] == [m.key for m in c]
    disk.close()

    scan = connect(db, backend="seqscan")
    scan_loop, scan_loop_s = _timed(
        lambda: [scan.execute(spec).matches for spec in specs]
    )
    scan_batch_rs, scan_batch_s = _timed(lambda: scan.execute_many(specs))
    for a, b in zip(scan_loop, scan_batch_rs):
        assert [m.key for m in a] == [m.key for m in b]

    # Format shoot-out: the identical tree as interleaved v2 pages and as
    # columnar v3 pages. The baseline is the pre-v3 serving path — one
    # query at a time against the v2 file (the configuration whose
    # wall-clock saturation motivated the columnar format) — and both
    # formats also run the batch entry point. Rounds are interleaved and
    # each configuration keeps its best wall time, which suppresses
    # host-level CPU steal on shared machines.
    v2_path = os.path.join(tmp_dir, "bench.v2.gauss")
    v3_path = os.path.join(tmp_dir, "bench.v3.gauss")
    tree.save(v2_path, version=2)
    tree.save(v3_path, version=3)

    def loop_on(path):
        with connect(path) as session:
            return _timed(lambda: [session.execute(s).matches for s in specs])

    def batch_on(path):
        with connect(path) as session:
            return _timed(lambda: session.execute_many(specs))

    v2_loop_times, v2_times, v3_times = [], [], []
    for _ in range(5):
        v2_loop_rs, t = loop_on(v2_path)
        v2_loop_times.append(t)
        v2_rs, t = batch_on(v2_path)
        v2_times.append(t)
        v3_rs, t = batch_on(v3_path)
        v3_times.append(t)
    v2_loop_s, v2_s, v3_s = min(v2_loop_times), min(v2_times), min(v3_times)
    for a, b, c in zip(v2_loop_rs, v2_rs, v3_rs):
        assert [m.key for m in a] == [m.key for m in b] == [m.key for m in c]
        assert (
            [m.probability for m in a]
            == [m.probability for m in b]
            == [m.probability for m in c]
        )

    shutil.rmtree(tmp_dir)
    return {
        "workload": {
            "n_objects": n,
            "dims": d,
            "n_queries": n_queries,
            "k": k,
            "seed": seed,
        },
        "index": {
            "build_seconds": round(build_s, 4),
            "save_seconds": round(save_s, 4),
            "open_seconds": round(open_s, 4),
            "file_bytes": file_bytes,
        },
        "gausstree": {
            "fresh_open_per_query_seconds": round(fresh_s, 4),
            "per_query_loop_seconds": round(loop_s, 4),
            "batch_seconds": round(batch_s, 4),
            "batch_speedup_vs_loop": round(loop_s / batch_s, 3),
            "batch_speedup_vs_fresh_open": round(fresh_s / batch_s, 3),
            "batch_pages_accessed": batch_stats.pages_accessed,
            "batch_page_faults": batch_stats.page_faults,
        },
        "seqscan": {
            "per_query_loop_seconds": round(scan_loop_s, 4),
            "batch_seconds": round(scan_batch_s, 4),
            "batch_speedup_vs_loop": round(scan_loop_s / scan_batch_s, 3),
        },
        "format_v3_vs_v2": {
            "timing": "best of 5 interleaved rounds per configuration",
            "v2_baseline_loop_seconds": round(v2_loop_s, 4),
            "v2_batch_seconds": round(v2_s, 4),
            "v3_batch_seconds": round(v3_s, 4),
            "v2_baseline_qps": round(n_queries / v2_loop_s, 1),
            "v2_batch_qps": round(n_queries / v2_s, 1),
            "v3_batch_qps": round(n_queries / v3_s, 1),
            "v3_speedup_vs_v2_baseline": round(v2_loop_s / v3_s, 3),
            "v3_speedup_vs_v2_batch": round(v2_s / v3_s, 3),
            "identical_posteriors": True,  # asserted bit-for-bit above
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_BENCH_N", 20000))
    )
    parser.add_argument("--d", type=int, default=10)
    parser.add_argument(
        "--queries",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_QUERIES", 100)),
    )
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for CI (overrides --n/--queries)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_persistence.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.queries = 1200, 25
    result = run(args.n, args.d, args.queries, args.k, args.seed)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))
    gt = result["gausstree"]
    if gt["batch_seconds"] >= gt["per_query_loop_seconds"]:
        print("WARNING: batch API did not beat the per-query loop", file=sys.stderr)
        return 1
    fmt = result["format_v3_vs_v2"]
    # The PR-6 acceptance bar, asserted on full-size runs only: smoke
    # workloads are too small for stable wall-clock ratios (traversal
    # overhead shared by both formats dominates tiny refinement sets).
    if not args.smoke and fmt["v3_speedup_vs_v2_baseline"] < 5.0:
        print(
            f"FAIL: v3 wall-clock speedup "
            f"{fmt['v3_speedup_vs_v2_baseline']}x over the v2 baseline "
            "serving path is below the 5x acceptance bar",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nbatch mliq_many: {gt['batch_speedup_vs_loop']}x vs loop, "
        f"{gt['batch_speedup_vs_fresh_open']}x vs fresh-open-per-query "
        f"-> {args.out}"
    )
    print(
        f"format v3 (columnar batch): {fmt['v3_batch_qps']} qps — "
        f"{fmt['v3_speedup_vs_v2_baseline']}x the v2 baseline serving path "
        f"({fmt['v2_baseline_qps']} qps) and "
        f"{fmt['v3_speedup_vs_v2_batch']}x the v2 batch "
        f"({fmt['v2_batch_qps']} qps); identical posteriors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
