"""Ablation: buffer-size sensitivity of the Figure-7 overall times.

The paper's testbed used "up to 50 MByte" of database cache. This
ablation sweeps the cache from nothing to the paper's budget and shows
how the Gauss-tree's simulated overall time responds: with no cache the
index pays a random seek per visited page; once the working set fits,
repeated queries run almost IO-free.
"""

import pytest

from repro.core.queries import MLIQuery
from repro.data.histograms import color_histogram_dataset
from repro.data.workload import identification_workload
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.mliq import gausstree_mliq
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.layout import PageLayout
from repro.storage.pagestore import PageStore

N, QUERIES = 4_000, 25
CACHE_BUDGETS = {"none": 0, "1MB": 1 << 20, "50MB": 50 << 20}


@pytest.fixture(scope="module")
def dataset():
    db = color_histogram_dataset(n=N)
    return db, identification_workload(db, QUERIES, seed=5)


def _run(db, workload, cache_bytes):
    layout = PageLayout(dims=db.dims)
    store = PageStore(
        buffer=BufferManager.from_bytes(cache_bytes, layout.page_size),
        cost_model=DiskCostModel(page_size=layout.page_size),
    )
    tree = bulk_load(db.vectors, page_store=store, sigma_rule=db.sigma_rule)
    store.cold_start()
    io = faults = 0
    for item in workload:
        _, stats = gausstree_mliq(tree, MLIQuery(item.q, 1), tolerance=0.05)
        io += stats.io_seconds
        faults += stats.page_faults
    return io / len(workload), faults / len(workload)


@pytest.mark.parametrize("label", list(CACHE_BUDGETS))
def test_buffer_sweep(benchmark, dataset, label):
    db, workload = dataset
    io, faults = benchmark.pedantic(
        lambda: _run(db, workload, CACHE_BUDGETS[label]), rounds=1, iterations=1
    )
    benchmark.extra_info["io_seconds_per_query"] = round(io, 5)
    benchmark.extra_info["faults_per_query"] = round(faults, 1)
    print(f"\ncache={label}: {io * 1000:.2f} ms IO/query, {faults:.1f} faults/query")


def test_cache_reduces_io(dataset):
    db, workload = dataset
    io_none, _ = _run(db, workload, 0)
    io_paper, _ = _run(db, workload, 50 << 20)
    print(f"\nIO/query: no cache {io_none * 1e3:.2f} ms vs 50MB {io_paper * 1e3:.2f} ms")
    assert io_paper < io_none
