"""Figure 7(b) — efficiency grid on data set 2 (synthetic 10-d pfv).

Default scale is 20,000 objects (REPRO_FULL_SCALE=1 for the paper's
100,000). Paper reference: Gauss-tree 4.3x fewer pages for MLIQ and
35.7-43.2x for TIQ; overall time 3.1-7.5x better. Our reproduction keeps
the ordering (TIQ cheaper than MLIQ, both cheaper than the scan) at
smaller factors — see EXPERIMENTS.md for the analysis of the gap.
"""

from repro.eval.figures import figure7
from repro.eval.report import format_figure7


def test_figure7_ds2(benchmark, ds2, ds2_workload):
    cells = benchmark.pedantic(
        lambda: figure7(ds2, ds2_workload), rounds=1, iterations=1
    )
    print()
    print(format_figure7(cells, "Figure 7(b) - data set 2"))
    by = {(c.method, c.query_kind): c for c in cells}
    for c in cells:
        benchmark.extra_info[
            f"{c.method}/{c.query_kind}"
        ] = f"pages {c.pages_percent:.1f}% cpu {c.cpu_percent:.1f}% overall {c.overall_percent:.1f}%"
    # Shape contract: the Gauss-tree wins pages on every query type, and
    # TIQ prunes harder than MLIQ (the paper's ordering).
    for kind in ("1-MLIQ", "TIQ(P=0.8)", "TIQ(P=0.2)"):
        assert by[("G-Tree", kind)].pages_percent < 100.0
    assert (
        by[("G-Tree", "TIQ(P=0.8)")].pages_percent
        < by[("G-Tree", "1-MLIQ")].pages_percent
    )
