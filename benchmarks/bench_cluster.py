#!/usr/bin/env python
"""Sharded serving benchmark: 1 vs N shards, serial vs process pool.

Shard-builds one synthetic dataset twice (a single-shard manifest as the
unsharded baseline and an N-shard manifest), then answers the same
64-query MLIQ batch through three serving configurations:

* ``single_shard_serial`` — one shard, i.e. plain disk serving;
* ``sharded_serial``      — N shards fanned out one after another;
* ``sharded_process``     — N shards fanned out to a process pool whose
  workers open their shards locally (per-process page buffers).

Two latency columns per configuration, following the repository's
figure-7 convention that the Python substrate is the wrong ruler for
relative claims (see ``repro.storage.costmodel``):

* ``wall_seconds_per_batch`` — measured wall clock on *this* host. On a
  single-core container the process pool cannot beat serial fan-out
  (there is nothing to overlap with) and pays pickling overhead; on a
  multi-core host it approaches the modeled ratio.
* ``modeled_seconds_per_batch`` — the per-shard work counters priced by
  the storage cost model: a serial fan-out pays the *sum* of the shard
  batch times, the process pool pays the *max* (its slowest shard) —
  both plus a per-shard dispatch overhead. This is the hardware-
  independent serving-latency claim, and the ``>= 1.5x`` throughput
  gate below is evaluated on it.

Writes ``BENCH_cluster.json``; exits 1 if the modeled process-pool
throughput is not at least 1.5x the serial fan-out, or if any
configuration disagrees on answers.

Run:  PYTHONPATH=src python benchmarks/bench_cluster.py
      (--smoke shrinks the workload for CI)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cluster import build_shards  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.data.workload import identification_workload  # noqa: E402
from repro.engine import MLIQ, connect  # noqa: E402
from repro.storage.costmodel import DiskCostModel  # noqa: E402

COST = DiskCostModel()


def _run_config(
    manifest_path: str,
    specs,
    *,
    pool: str,
    workers: int | None,
    repeats: int,
) -> dict:
    session = connect(
        manifest_path,
        backend="sharded",
        pool=pool,
        workers=workers,
    )
    parallel = pool == "process"
    # One warmup batch: opens shard sessions (and forks pool workers)
    # and warms page buffers, so the timed runs measure serving, not
    # cold start.
    warmup = session.execute_many(specs)
    wall_times = []
    last = None
    for _ in range(repeats):
        started = time.perf_counter()
        last = session.execute_many(specs)
        wall_times.append(time.perf_counter() - started)
    shard_seconds = [
        stats.modeled_total_seconds for _, stats in last.provenance
    ]
    modeled = COST.fan_out_seconds(shard_seconds, parallel=parallel)
    wall = min(wall_times)
    answers = [[m.key for m in matches] for matches in last]
    session.close()
    return {
        "pool": pool,
        "shards": len(shard_seconds),
        "workers": workers,
        "backend": warmup.backend,
        "wall_seconds_per_batch": round(wall, 4),
        "wall_queries_per_second": round(len(specs) / wall, 1),
        "modeled_seconds_per_batch": round(modeled, 4),
        "modeled_queries_per_second": round(len(specs) / modeled, 1),
        "modeled_shard_seconds": [round(s, 4) for s in shard_seconds],
        "pages_accessed": last.stats.pages_accessed,
        "_answers": answers,
    }


def run(
    n: int, d: int, n_queries: int, k: int, shards: int, workers: int, seed: int,
    repeats: int,
) -> dict:
    db = uniform_pfv_dataset(n=n, d=d, seed=seed)
    workload = identification_workload(db, n_queries, seed=seed + 1)
    specs = [MLIQ(w.q, k) for w in workload]

    tmp_dir = tempfile.mkdtemp()
    try:
        started = time.perf_counter()
        single = build_shards(db, 1, os.path.join(tmp_dir, "single"))
        multi = build_shards(db, shards, os.path.join(tmp_dir, "multi"))
        build_s = time.perf_counter() - started

        configs = {
            "single_shard_serial": _run_config(
                single.source_path, specs, pool="serial", workers=None,
                repeats=repeats,
            ),
            "sharded_serial": _run_config(
                multi.source_path, specs, pool="serial", workers=None,
                repeats=repeats,
            ),
            "sharded_process": _run_config(
                multi.source_path, specs, pool="process", workers=workers,
                repeats=repeats,
            ),
        }
    finally:
        shutil.rmtree(tmp_dir)

    reference = configs["single_shard_serial"].pop("_answers")
    answers_agree = all(
        configs[name].pop("_answers") == reference
        for name in ("sharded_serial", "sharded_process")
    )
    serial = configs["sharded_serial"]
    process = configs["sharded_process"]
    best_wall = max(
        configs, key=lambda name: configs[name]["wall_queries_per_second"]
    )
    return {
        # The ROADMAP's wall-clock ask, answered up front: measured qps
        # on this host for the fastest serving configuration, next to
        # the single-shard number the format-v3 columnar pages feed
        # (BENCH_persistence.json carries the v2-vs-v3 ratio itself).
        "headline": {
            "best_config": best_wall,
            "wall_queries_per_second": configs[best_wall][
                "wall_queries_per_second"
            ],
            "single_shard_wall_queries_per_second": configs[
                "single_shard_serial"
            ]["wall_queries_per_second"],
        },
        "workload": {
            "n_objects": n,
            "dims": d,
            "batch_queries": n_queries,
            "k": k,
            "shards": shards,
            "pool_workers": workers,
            "seed": seed,
            "repeats": repeats,
            "shard_build_seconds": round(build_s, 3),
            "shard_objects": [s.objects for s in multi.shards],
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "note": (
                "wall numbers are host-bound (a 1-core container cannot "
                "overlap shard batches); modeled numbers price the "
                "per-shard work counters via storage/costmodel — serial "
                "fan-out pays the sum over shards, the process pool its "
                "slowest shard plus dispatch"
            ),
        },
        "configs": configs,
        "speedups": {
            "modeled_process_pool_vs_serial_fanout": round(
                serial["modeled_seconds_per_batch"]
                / process["modeled_seconds_per_batch"],
                3,
            ),
            "wall_process_pool_vs_serial_fanout": round(
                serial["wall_seconds_per_batch"]
                / process["wall_seconds_per_batch"],
                3,
            ),
            "modeled_sharded_serial_vs_single_shard": round(
                configs["single_shard_serial"]["modeled_seconds_per_batch"]
                / serial["modeled_seconds_per_batch"],
                3,
            ),
        },
        "answers_agree_across_configs": answers_agree,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_BENCH_N", 20000))
    )
    parser.add_argument("--d", type=int, default=8)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool workers (default: one per shard)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload (n=2000, one repeat)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_cluster.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 2000)
        args.repeats = 1
    workers = args.workers or args.shards
    result = run(
        args.n, args.d, args.queries, args.k, args.shards, workers,
        args.seed, args.repeats,
    )
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))
    failures = []
    if not result["answers_agree_across_configs"]:
        failures.append("configurations returned different answers")
    speedup = result["speedups"]["modeled_process_pool_vs_serial_fanout"]
    if speedup < 1.5:
        failures.append(
            f"modeled process-pool speedup {speedup}x is below 1.5x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    headline = result["headline"]
    print(
        f"\nprocess pool vs serial fan-out on {args.shards} shards: "
        f"{speedup}x modeled throughput "
        f"({result['speedups']['wall_process_pool_vs_serial_fanout']}x "
        f"wall on {os.cpu_count()} core(s)) -> {args.out}"
    )
    print(
        f"wall-clock headline: {headline['wall_queries_per_second']} qps "
        f"({headline['best_config']}; single shard "
        f"{headline['single_shard_wall_queries_per_second']} qps)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
