"""Ablation: quality-driven bulk loading vs generic spatial packing.

The bulk loader (an extension over the paper) can order leaves by the
paper's hull-integral criterion or by a generic normalised-spread tiling.
On heteroscedastic data the quality ordering produces dramatically
tighter query bounds; this benchmark quantifies the gap in page accesses
and also reports construction time for insertion vs both bulk modes.
"""

import time

import pytest

from repro.core.queries import MLIQuery
from repro.data.histograms import color_histogram_dataset
from repro.data.workload import identification_workload
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.mliq import gausstree_mliq
from repro.gausstree.tree import GaussTree

N, QUERIES = 4_000, 25


@pytest.fixture(scope="module")
def dataset():
    db = color_histogram_dataset(n=N)
    return db, identification_workload(db, QUERIES, seed=9)


def _measure_pages(tree, workload):
    pages = 0
    for item in workload:
        _, stats = gausstree_mliq(
            tree, MLIQuery(item.q, 1), tolerance=float("inf")
        )
        pages += stats.pages_accessed
    return pages / len(workload)


@pytest.mark.parametrize("ordering", ["quality", "spread"])
def test_bulk_ordering(benchmark, dataset, ordering):
    db, workload = dataset
    tree = bulk_load(db.vectors, ordering=ordering, sigma_rule=db.sigma_rule)
    pages = benchmark.pedantic(
        lambda: _measure_pages(tree, workload), rounds=1, iterations=1
    )
    benchmark.extra_info["pages_per_query"] = round(pages, 1)
    print(f"\nbulk ordering={ordering}: {pages:.1f} pages/query")


def test_quality_ordering_wins(dataset):
    db, workload = dataset
    quality = bulk_load(db.vectors, ordering="quality", sigma_rule=db.sigma_rule)
    spread = bulk_load(db.vectors, ordering="spread", sigma_rule=db.sigma_rule)
    q_pages = _measure_pages(quality, workload)
    s_pages = _measure_pages(spread, workload)
    print(f"\nquality {q_pages:.1f} vs spread {s_pages:.1f} pages/query")
    assert q_pages < s_pages


def test_construction_time_comparison(dataset):
    db, _ = dataset
    t0 = time.perf_counter()
    bulk_load(db.vectors, sigma_rule=db.sigma_rule)
    bulk_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    tree = GaussTree(dims=db.dims, sigma_rule=db.sigma_rule)
    tree.extend(db.vectors)
    insert_seconds = time.perf_counter() - t0
    print(
        f"\nconstruction at n={N}: bulk {bulk_seconds:.2f}s, "
        f"insertion {insert_seconds:.2f}s ({insert_seconds / bulk_seconds:.0f}x)"
    )
    assert bulk_seconds < insert_seconds
