"""Figure 6 — effectiveness of NN vs MLIQ (precision/recall, x1..x9).

Regenerates both panels of Figure 6. Paper reference points:
  (a) data set 1: NN precision/recall 42% at x1, NN recall saturating
      near 60% by x9; MLIQ 98%.
  (b) data set 2: NN 61%, MLIQ 99%.
The benchmark prints the full reproduction table and stores the headline
numbers in ``extra_info``.
"""

from repro.eval.figures import figure6
from repro.eval.report import format_figure6


def _run(db, workload, title, benchmark):
    rows = benchmark.pedantic(
        lambda: figure6(db, workload), rounds=1, iterations=1
    )
    print()
    print(format_figure6(rows, title))
    x1, x9 = rows[0], rows[-1]
    benchmark.extra_info.update(
        {
            "nn_precision_x1": round(100 * x1.nn.precision, 1),
            "mliq_precision_x1": round(100 * x1.mliq.precision, 1),
            "nn_recall_x9": round(100 * x9.nn.recall, 1),
            "mliq_recall_x9": round(100 * x9.mliq.recall, 1),
        }
    )
    # Reproduction contract: the probabilistic model dominates NN.
    assert x1.mliq.recall > x1.nn.recall
    assert x9.nn.recall >= x1.nn.recall


def test_figure6_ds1(benchmark, ds1, ds1_workload):
    _run(ds1, ds1_workload, "Figure 6(a) - data set 1", benchmark)


def test_figure6_ds2(benchmark, ds2, ds2_workload):
    _run(ds2, ds2_workload, "Figure 6(b) - data set 2", benchmark)
