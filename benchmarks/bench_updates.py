#!/usr/bin/env python
"""Writable-index benchmark: insert throughput, checkpoint, recovery.

Builds and saves a Gauss-tree, reopens it *writable* and measures the
write-ahead path introduced with persistence format v2:

* ``insert_fsync``    — per-commit fsync durability (every completed
  insert survives ``kill -9``); the honest number.
* ``insert_nofsync``  — commits flushed to the OS cache only (recovery
  still correct, the newest tail may be lost on power cut).
* ``checkpoint``      — transferring the committed WAL state into the
  main file (dirty pages + key table + header, fsync-ordered).
* ``recovery``        — reopening an index whose writer died without a
  checkpoint: the WAL replay cost, compared against a clean open.

Sanity is asserted, not assumed: recovered object counts must be exact
and the recovered index must answer an MLIQ identically to an in-memory
tree holding the same objects. Numbers land in ``BENCH_updates.json``.

Run:  PYTHONPATH=src python benchmarks/bench_updates.py
      (REPRO_BENCH_N / REPRO_BENCH_INSERTS shrink or grow the workload)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.core.pfv import PFV  # noqa: E402
from repro.core.queries import MLIQuery  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.gausstree.bulkload import bulk_load  # noqa: E402
from repro.gausstree.mliq import gausstree_mliq  # noqa: E402
from repro.gausstree.tree import GaussTree  # noqa: E402


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _fresh_vectors(rng, n, d, tag):
    return [
        PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(0.05, 0.4, d),
            key=(tag, i),
        )
        for i in range(n)
    ]


def run(n: int, d: int, n_inserts: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    db = uniform_pfv_dataset(n=n, d=d, seed=seed)
    tmp_dir = tempfile.mkdtemp()
    base_path = os.path.join(tmp_dir, "base.gauss")
    tree = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
    tree.save(base_path)
    base_bytes = os.path.getsize(base_path)

    # Each mode mutates its own copy of the base index, so neither pays
    # for the other's tree growth and the comparison is apples-to-apples.
    fsync_path = os.path.join(tmp_dir, "fsync.gauss")
    nofsync_path = os.path.join(tmp_dir, "nofsync.gauss")
    shutil.copyfile(base_path, fsync_path)
    shutil.copyfile(base_path, nofsync_path)

    # -- durable (fsync-per-commit) inserts ---------------------------------
    fsync_batch = _fresh_vectors(rng, n_inserts, d, "fsync")
    writable = GaussTree.open(fsync_path, writable=True, fsync=True)
    _, fsync_s = _timed(lambda: [writable.insert(v) for v in fsync_batch])
    _, checkpoint_s = _timed(writable.flush)
    writable.close()

    # -- OS-cache (no fsync) inserts ----------------------------------------
    nofsync_batch = _fresh_vectors(rng, n_inserts, d, "nofsync")
    writable = GaussTree.open(nofsync_path, writable=True, fsync=False)
    _, nofsync_s = _timed(lambda: [writable.insert(v) for v in nofsync_batch])
    wal_bytes_at_close = os.path.getsize(nofsync_path + ".wal")
    # Die without a checkpoint: the WAL alone carries these inserts.
    writable.close(checkpoint=False)

    # -- recovery -----------------------------------------------------------
    recovered, recovery_open_s = _timed(lambda: GaussTree.open(nofsync_path))
    expected = n + n_inserts
    assert len(recovered) == expected, (len(recovered), expected)
    query = MLIQuery(
        PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.4, d)), 5
    )
    disk_matches, _ = gausstree_mliq(recovered, query)
    recovered.close()

    reference = GaussTree(dims=d, degree=tree.degree, layout=tree.layout,
                          sigma_rule=tree.sigma_rule)
    reference.extend(list(db.vectors) + nofsync_batch)
    mem_matches, _ = gausstree_mliq(reference, query)
    assert [m.key for m in mem_matches] == [m.key for m in disk_matches]

    # A clean (checkpointed) open for the recovery comparison.
    _, clean_open_s = _timed(lambda: GaussTree.open(nofsync_path).close())
    final_bytes = os.path.getsize(nofsync_path)
    shutil.rmtree(tmp_dir)
    return {
        "workload": {
            "n_objects": n,
            "dims": d,
            "n_inserts_per_mode": n_inserts,
            "seed": seed,
        },
        "index": {
            "base_file_bytes": base_bytes,
            "final_file_bytes": final_bytes,
        },
        "insert_fsync": {
            "seconds": round(fsync_s, 4),
            "inserts_per_second": round(n_inserts / fsync_s, 1),
        },
        "insert_nofsync": {
            "seconds": round(nofsync_s, 4),
            "inserts_per_second": round(n_inserts / nofsync_s, 1),
        },
        "checkpoint": {
            "seconds": round(checkpoint_s, 4),
        },
        "recovery": {
            "wal_bytes_replayed": wal_bytes_at_close,
            "recovery_open_seconds": round(recovery_open_s, 4),
            "clean_open_seconds": round(clean_open_s, 4),
            "recovery_overhead_seconds": round(
                recovery_open_s - clean_open_s, 4
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_BENCH_N", 5000))
    )
    parser.add_argument("--d", type=int, default=10)
    parser.add_argument(
        "--inserts",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_INSERTS", 500)),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_updates.json",
        ),
    )
    args = parser.parse_args(argv)
    result = run(args.n, args.d, args.inserts, args.seed)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))
    print(
        f"\ninserts: {result['insert_fsync']['inserts_per_second']}/s "
        f"fsync'd, {result['insert_nofsync']['inserts_per_second']}/s "
        f"without; recovery replayed "
        f"{result['recovery']['wal_bytes_replayed']} WAL bytes in "
        f"{result['recovery']['recovery_open_seconds']}s -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
