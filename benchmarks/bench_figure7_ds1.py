"""Figure 7(a) — efficiency grid on data set 1 (10,987 x 27-d histograms).

Page accesses, modeled CPU and modeled overall time of Gauss-tree,
X-tree-on-approximations and sequential scan, each as a percentage of the
scan, for 1-MLIQ, TIQ(0.8) and TIQ(0.2). Paper reference: the Gauss-tree
cuts pages and CPU ~4.2x on every query type and overall time by >= 46%;
the X-tree offers little.
"""

from repro.eval.figures import figure7
from repro.eval.report import format_figure7


def test_figure7_ds1(benchmark, ds1, ds1_workload):
    cells = benchmark.pedantic(
        lambda: figure7(ds1, ds1_workload), rounds=1, iterations=1
    )
    print()
    print(format_figure7(cells, "Figure 7(a) - data set 1"))
    by = {(c.method, c.query_kind): c for c in cells}
    for c in cells:
        benchmark.extra_info[
            f"{c.method}/{c.query_kind}"
        ] = f"pages {c.pages_percent:.1f}% cpu {c.cpu_percent:.1f}% overall {c.overall_percent:.1f}%"
    # Reproduction contract (shape, not absolute numbers): the Gauss-tree
    # beats the scan on pages, CPU and overall time for every query type.
    for kind in ("1-MLIQ", "TIQ(P=0.8)", "TIQ(P=0.2)"):
        cell = by[("G-Tree", kind)]
        assert cell.pages_percent < 100.0
        assert cell.cpu_percent < 100.0
        assert cell.overall_percent < 100.0
