#!/usr/bin/env python
"""Async serving-tier benchmark: coalescing speedup and load shedding.

Drives a live :class:`repro.serve.AsyncQueryServer` over real sockets
with closed-loop :class:`repro.serve.JsonlClient` threads (one pipelined
JSONL connection each) against an on-disk Gauss-tree, and answers the
two serving-tier claims:

* **Coalescing** — with >= 8 concurrent singleton-query clients, the
  dispatcher's batching window fuses neighbours into shared
  ``execute_many`` calls, so measured throughput must be at least 1.5x
  the same server with ``coalesce_reads=False`` (each request then
  executes alone, exactly like the threaded tier). The amortization is
  the same one ``BENCH_persistence.json`` measures for client-side
  batching (~2x); coalescing recovers it for clients that cannot batch.
* **Shedding** — a saturation sweep over client counts finds the knee
  (the smallest count within 90% of peak throughput); a second server
  with a deliberately small admission queue is then offered ~2x the
  knee's load by pipelined clients that keep several requests in
  flight. It must shed the excess with 429s (not errors, not timeouts)
  while the p99 latency of the *accepted* requests stays within 3x the
  half-saturation p99 — backpressure keeps queue wait bounded instead
  of letting latency collapse.
* **Instrumentation overhead** — the default metrics registry and its
  instrument sites must cost <= 2% of coalescing throughput against the
  same server with a :class:`repro.obs.NullRegistry` (private and
  process-global both swapped out) — observability is on by default,
  so its cost is a gated claim, not a hope.

The gates are asserted on full runs (exit 1 on failure); ``--smoke``
shrinks the workload for CI and reports the gates without asserting
them (a 1-core container makes throughput ratios, not the mechanism,
unreliable). Writes ``BENCH_serve.json``.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py
      (--smoke shrinks the workload for CI)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cluster.wire import spec_to_json  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.data.workload import identification_workload  # noqa: E402
from repro.engine import MLIQ, connect  # noqa: E402
from repro.gausstree.bulkload import bulk_load  # noqa: E402
from repro.obs import NullRegistry, set_global_registry  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionConfig,
    CoalesceConfig,
    JsonlClient,
    serve_async,
)
from repro.storage.layout import PageLayout  # noqa: E402


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _drive(
    host: str,
    port: int,
    specs: list[dict],
    *,
    clients: int,
    depth: int,
    duration: float,
    honor_retry_after: bool = False,
) -> dict:
    """Closed-loop load: each client thread keeps ``depth`` requests in
    flight on one pipelined connection until the deadline, re-sending as
    responses land. With ``honor_retry_after`` (overload runs, depth 1)
    a 429 makes the client sleep the server's ``retry_after`` before
    re-offering, like a well-behaved :class:`ServeClient` would —
    hammering retries back instantly just measures the retry storm's CPU
    steal, not the server's shedding. Returns throughput, latency
    percentiles of accepted (200) responses, and the shed/error
    counts."""
    barrier = threading.Barrier(clients)
    results: list[dict] = [None] * clients  # type: ignore[list-item]

    def one(slot: int) -> None:
        latencies: list[float] = []
        shed = errors = 0
        inflight: dict[int, float] = {}
        cursor = slot  # spread clients across the workload
        with JsonlClient(host, port) as client:
            def send() -> None:
                nonlocal cursor
                spec = specs[cursor % len(specs)]
                cursor += clients
                rid = client.send("query", queries=[spec])
                inflight[rid] = time.perf_counter()

            barrier.wait()
            deadline = time.perf_counter() + duration
            for _ in range(depth):
                send()
            while inflight:
                resp = client.recv()
                now = time.perf_counter()
                started = inflight.pop(resp.get("id"), now)
                status = resp.get("status")
                if status == 200:
                    latencies.append(now - started)
                elif status == 429:
                    shed += 1
                    if honor_retry_after and not inflight:
                        time.sleep(float(resp.get("retry_after") or 0.05))
                else:
                    errors += 1
                if now < deadline:
                    send()
        results[slot] = {
            "latencies": latencies,
            "shed": shed,
            "errors": errors,
        }

    threads = [
        threading.Thread(target=one, args=(slot,)) for slot in range(clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    latencies = [lat for r in results for lat in r["latencies"]]
    return {
        "clients": clients,
        "depth": depth,
        "completed": len(latencies),
        "queries_per_second": round(len(latencies) / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        "shed_429": sum(r["shed"] for r in results),
        "errors": sum(r["errors"] for r in results),
    }


def run(
    n: int,
    d: int,
    *,
    clients: int,
    max_batch: int,
    max_delay_ms: float,
    duration: float,
    sweep: list[int],
    seed: int,
    smoke: bool,
) -> dict:
    db = uniform_pfv_dataset(n=n, d=d, seed=seed)
    workload = identification_workload(db, 64, seed=seed + 1)
    specs = [spec_to_json(MLIQ(w.q, 10)) for w in workload]

    tmp_dir = tempfile.mkdtemp()
    try:
        index_path = os.path.join(tmp_dir, "serve.gauss")
        tree = bulk_load(
            db.vectors, layout=PageLayout(dims=d), sigma_rule=db.sigma_rule
        )
        tree.save(index_path)
        del tree

        window = CoalesceConfig(
            max_batch=max_batch, max_delay_seconds=max_delay_ms / 1e3
        )
        no_window = CoalesceConfig(
            max_batch=max_batch,
            max_delay_seconds=max_delay_ms / 1e3,
            coalesce_reads=False,
            coalesce_writes=False,
        )

        # Stage 1 — coalescing on vs off, same closed-loop client fleet.
        session = connect(index_path)
        with serve_async(session, port=0, coalesce=no_window) as server:
            baseline = _drive(
                *server.address, specs,
                clients=clients, depth=1, duration=duration,
            )
        session = connect(index_path)
        with serve_async(session, port=0, coalesce=window) as server:
            coalesced = _drive(
                *server.address, specs,
                clients=clients, depth=1, duration=duration,
            )
            coalesced_stats = server._stats_payload()["coalescing"]

        # Stage 1b — instrumentation overhead: the same coalescing
        # fleet against a server whose private registry is a no-op and
        # with the process-global registry swapped out too, so every
        # instrument site (admission, coalescing, WAL, buffer) costs
        # nothing. The default-instrumented leg above must stay within
        # 2% of this one — the "on by default" contract.
        session = connect(index_path)
        previous_registry = set_global_registry(NullRegistry())
        try:
            with serve_async(
                session, port=0, coalesce=window, registry=NullRegistry()
            ) as server:
                uninstrumented = _drive(
                    *server.address, specs,
                    clients=clients, depth=1, duration=duration,
                )
        finally:
            set_global_registry(previous_registry)

        # Stage 2 — saturation sweep on a coalescing server.
        session = connect(index_path)
        sweep_points = []
        with serve_async(session, port=0, coalesce=window) as server:
            for count in sweep:
                sweep_points.append(
                    _drive(
                        *server.address, specs,
                        clients=count, depth=1, duration=duration,
                    )
                )
        peak_qps = max(p["queries_per_second"] for p in sweep_points)
        knee = next(
            p for p in sweep_points
            if p["queries_per_second"] >= 0.9 * peak_qps
        )
        half_clients = max(1, knee["clients"] // 2)
        half = min(
            sweep_points, key=lambda p: abs(p["clients"] - half_clients)
        )

        # Stage 3 — 2x-saturation offered load against a small queue.
        session = connect(index_path)
        # The queue is the latency budget: every queued operation is one
        # the accepted request may wait behind, so cap pending work at
        # about a quarter batch and shed the rest — that is the whole
        # point of admission control. The straggler window goes to zero
        # too: under saturation the backlog forms batches by itself, so
        # waiting for stragglers only adds queue depth (and wait) for
        # free.
        overload_admission = AdmissionConfig(
            max_queue=max(2, max_batch // 4),
            max_queue_per_client=2,
        )
        overload_window = CoalesceConfig(
            max_batch=max_batch, max_delay_seconds=0.0
        )
        with serve_async(
            session,
            port=0,
            coalesce=overload_window,
            admission=overload_admission,
        ) as server:
            overload = _drive(
                *server.address, specs,
                clients=2 * knee["clients"], depth=1,
                duration=duration, honor_retry_after=True,
            )
    finally:
        shutil.rmtree(tmp_dir)

    coalesce_speedup = (
        coalesced["queries_per_second"]
        / max(baseline["queries_per_second"], 1e-9)
    )
    overhead = 1.0 - (
        coalesced["queries_per_second"]
        / max(uninstrumented["queries_per_second"], 1e-9)
    )
    p99_ratio = overload["p99_ms"] / max(half["p99_ms"], 1e-9)
    return {
        "headline": {
            "coalesce_speedup": round(coalesce_speedup, 3),
            "coalesced_queries_per_second": coalesced["queries_per_second"],
            "baseline_queries_per_second": baseline["queries_per_second"],
            "instrumentation_overhead": round(overhead, 4),
            "uninstrumented_queries_per_second": uninstrumented[
                "queries_per_second"
            ],
            "saturation_knee_clients": knee["clients"],
            "overload_shed_429": overload["shed_429"],
            "overload_accepted_p99_over_half_saturation_p99": round(
                p99_ratio, 3
            ),
        },
        "workload": {
            "n_objects": n,
            "dims": d,
            "k": 10,
            "singleton_clients": clients,
            "max_batch": max_batch,
            "max_delay_ms": max_delay_ms,
            "seconds_per_point": duration,
            "seed": seed,
            "smoke": smoke,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "note": (
                "closed-loop JSONL clients over real sockets against one "
                "disk session (pool_size=1); coalescing recovers the "
                "execute_many batch amortization for singleton clients, "
                "so its speedup tracks BENCH_persistence's batch-vs-"
                "singleton ratio, not core count"
            ),
        },
        "coalescing": {
            "baseline": baseline,
            "coalesced": coalesced,
            "uninstrumented": uninstrumented,
            "server_counters": {
                key: coalesced_stats[key]
                for key in ("read_batches", "coalesced_reads", "max_batch")
            },
        },
        "saturation_sweep": sweep_points,
        "overload": {
            "offered_clients": 2 * knee["clients"],
            "pipeline_depth": 1,
            "admission_max_queue": overload_admission.max_queue,
            "half_saturation_point": half,
            **overload,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_BENCH_N", 20000))
    )
    parser.add_argument("--d", type=int, default=8)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of closed-loop load per measured point",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload; gates are reported, not asserted",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_serve.json",
        ),
    )
    args = parser.parse_args(argv)
    sweep = [1, 2, 4, 8, 16, 32]
    if args.smoke:
        args.n = min(args.n, 2000)
        args.duration = min(args.duration, 0.5)
        sweep = [1, 4, 8]
    result = run(
        args.n,
        args.d,
        clients=args.clients,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        duration=args.duration,
        sweep=sweep,
        seed=args.seed,
        smoke=args.smoke,
    )
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))

    headline = result["headline"]
    failures = []
    if headline["coalesce_speedup"] < 1.5:
        failures.append(
            f"coalescing speedup {headline['coalesce_speedup']}x with "
            f"{args.clients} singleton clients is below 1.5x"
        )
    if headline["overload_shed_429"] <= 0:
        failures.append("overload produced no 429s (admission never shed)")
    if result["overload"]["errors"] > 0:
        failures.append(
            f"overload produced {result['overload']['errors']} hard errors "
            "(should shed with 429s instead)"
        )
    if headline["overload_accepted_p99_over_half_saturation_p99"] > 3.0:
        failures.append(
            "accepted-request p99 under 2x-saturation load is "
            f"{headline['overload_accepted_p99_over_half_saturation_p99']}x "
            "the half-saturation p99 (gate: 3x)"
        )
    if headline["instrumentation_overhead"] > 0.02:
        failures.append(
            "default instrumentation costs "
            f"{headline['instrumentation_overhead']:.1%} of coalescing "
            "throughput vs the NullRegistry server (gate: 2%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures and not args.smoke:
        return 1
    if failures:
        print(
            "(smoke run: gates reported above are informational)",
            file=sys.stderr,
        )
    print(
        f"\ncoalescing: {headline['coalesce_speedup']}x qps with "
        f"{args.clients} singleton clients "
        f"({headline['baseline_queries_per_second']} -> "
        f"{headline['coalesced_queries_per_second']} qps); knee at "
        f"{headline['saturation_knee_clients']} clients; overload shed "
        f"{headline['overload_shed_429']} with accepted p99 at "
        f"{headline['overload_accepted_p99_over_half_saturation_p99']}x "
        "half-saturation; instrumentation overhead "
        f"{headline['instrumentation_overhead']:.1%} -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
