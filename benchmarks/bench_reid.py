#!/usr/bin/env python
"""Online re-identification benchmark: identify latency and track churn.

Replays the paper's motivating workload — a stream of uncertain
observations, each *identified* against the live track database with
``ConsensusTopK`` and then *inserted* as a new track version, with
sliding-window deletes expiring stale versions — against two tiers:

* **sync** — one writable sharded session in-process (2 disk shards,
  round-robin placement): the floor for serving overhead;
* **serve** — the same loop through one pipelined
  :class:`repro.serve.JsonlClient` against a live writable async server
  (``repro serve --async --writable``): in-process ``serve_async`` by
  default, or ``--server HOST:PORT`` to drive an external one (the CI
  job starts the CLI server and points this flag at it).

Both report identify-latency percentiles, sustained track-churn
throughput (identify+insert+expire cycles per second) and the
re-identification precision against the stream generator's ground
truth.

* **Failover determinism** — a read-only process-pool deployment
  answers a 48-query identification batch with a worker kill armed
  mid-batch; the answers must be *bit-identical* (keys, posteriors,
  consensus scores) to the fault-free run. This gate is asserted even
  under ``--smoke``: it is a correctness claim, not a throughput ratio.

Throughput gates (full runs only): every observation must complete its
identify+insert cycle, every expiry must delete exactly its track, and
both tiers must sustain > 0 cycles/s. Writes ``BENCH_reid.json``.

Run:  PYTHONPATH=src python benchmarks/bench_reid.py
      (--smoke shrinks the stream for CI; --server drives an external
      async server instead of an in-process one)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.cluster.backend import ShardedBackend, _run_shard_payload  # noqa: E402
from repro.cluster.partition import build_shards  # noqa: E402
from repro.core.database import PFVDatabase  # noqa: E402
from repro.core.pfv import PFV  # noqa: E402
from repro.engine import ConsensusTopK, connect  # noqa: E402
from repro.engine.session import Session  # noqa: E402
from repro.serve import JsonlClient, serve_async  # noqa: E402
from repro.storage.fault import WorkerKillSwitch, killing_runner  # noqa: E402


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def make_stream(
    n_identities: int, steps: int, d: int, seed: int
) -> list[tuple[int, PFV]]:
    """A seeded stream of noisy, uncertain observations of
    ``n_identities`` ground-truth identities (each observation carries
    its own per-dimension sigma)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, (n_identities, d))
    stream = []
    for _ in range(steps):
        ident = int(rng.integers(n_identities))
        sigma = rng.uniform(0.03, 0.12, d)
        mu = centers[ident] + rng.normal(0.0, sigma)
        stream.append((ident, PFV(mu, sigma)))
    return stream


def churn(
    stream: list[tuple[int, PFV]],
    *,
    window_size: int,
    k: int,
    key_tag: str,
    identify,
    insert,
    expire,
) -> dict:
    """Drive one identify-then-insert / sliding-window-expire loop.

    ``identify(obs, k)`` returns the top answer's key (or None),
    ``insert(track)`` / ``expire(track)`` apply the write. Returns
    identify-latency percentiles, sustained churn throughput and the
    re-identification precision against the stream's ground truth.
    """
    track_identity: dict[object, int] = {}
    window: list[PFV] = []
    latencies: list[float] = []
    hits = misses = 0
    started = time.perf_counter()
    for serial, (true_ident, obs) in enumerate(stream):
        t = time.perf_counter()
        top_key = identify(obs, k)
        latencies.append(time.perf_counter() - t)
        if top_key is not None:
            if track_identity.get(tuple(top_key)) == true_ident:
                hits += 1
            else:
                misses += 1
        track = PFV(obs.mu, obs.sigma, key=(key_tag, serial))
        track_identity[(key_tag, serial)] = true_ident
        insert(track)
        window.append(track)
        if len(window) > window_size:
            expire(window.pop(0))
    elapsed = time.perf_counter() - started
    return {
        "observations": len(stream),
        "window": window_size,
        "identify_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "identify_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "identify_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "churn_per_second": round(len(stream) / elapsed, 1),
        "elapsed_seconds": round(elapsed, 3),
        "reid_hits": hits,
        "reid_misses": misses,
        "reid_precision": round(hits / max(1, hits + misses), 4),
    }


def _seeded_manifest(stream, tmp_dir: str, name: str):
    """A 2-shard round-robin deployment seeded with the first
    observation (the stream proper starts after it)."""
    _, first = stream[0]
    seed_track = PFV(first.mu, first.sigma, key=("seed", 0))
    return build_shards(
        PFVDatabase([seed_track]),
        2,
        os.path.join(tmp_dir, name),
        policy="round-robin",
    )


def run_sync_phase(stream, tmp_dir: str, *, window: int, k: int) -> dict:
    manifest = _seeded_manifest(stream, tmp_dir, "sync")
    with connect(
        manifest.source_path, backend="sharded", writable=True
    ) as session:

        def identify(obs, k):
            matches = session.execute(ConsensusTopK(obs, k)).matches
            return matches[0].key if matches else None

        def expire(track):
            assert session.delete(track), track.key

        result = churn(
            stream[1:],
            window_size=window,
            k=k,
            key_tag="sync",
            identify=identify,
            insert=session.insert,
            expire=expire,
        )
        result["objects_live"] = len(session)
    return result


def _drive_serve(host, port, stream, *, window: int, k: int) -> dict:
    with JsonlClient(host, port) as client:

        def identify(obs, k):
            resp = client.query([ConsensusTopK(obs, k)])
            if resp.get("status") != 200:
                raise RuntimeError(f"query failed: {resp}")
            matches = resp["results"][0]
            return matches[0]["key"] if matches else None

        def insert(track):
            resp = client.insert([track])
            if resp.get("status") != 200 or resp.get("inserted") != 1:
                raise RuntimeError(f"insert failed: {resp}")

        def expire(track):
            resp = client.delete([track])
            if resp.get("status") != 200 or resp.get("deleted") != 1:
                raise RuntimeError(f"delete failed: {resp}")

        result = churn(
            stream[1:],
            window_size=window,
            k=k,
            key_tag="serve",
            identify=identify,
            insert=insert,
            expire=expire,
        )
        health = client.healthz()
        result["objects_live"] = health.get("objects")
    return result


def run_serve_phase(
    stream,
    tmp_dir: str,
    *,
    window: int,
    k: int,
    server: str | None,
) -> dict:
    if server is not None:
        host, _, port = server.rpartition(":")
        result = _drive_serve(
            host or "127.0.0.1", int(port), stream, window=window, k=k
        )
        result["server"] = server
        return result
    manifest = _seeded_manifest(stream, tmp_dir, "serve")
    session = connect(manifest.source_path, backend="sharded", writable=True)
    with serve_async(session, port=0) as srv:
        result = _drive_serve(*srv.address, stream, window=window, k=k)
    result["server"] = "in-process serve_async"
    return result


def run_kill_phase(stream, tmp_dir: str, *, k: int) -> dict:
    """Bit-identical failover: a 48-query identification batch over a
    process-pool deployment with a worker kill armed mid-batch must
    answer exactly like the fault-free run — keys, posteriors and
    consensus scores compared as floats, no tolerance."""
    tracks = [
        PFV(obs.mu, obs.sigma, key=("track", i))
        for i, (_, obs) in enumerate(stream[:64])
    ]
    manifest = build_shards(
        PFVDatabase(tracks), 2, os.path.join(tmp_dir, "kill"), replicas=1
    )
    specs = [ConsensusTopK(obs, k) for _, obs in stream[64:112]]

    with connect(manifest.source_path, backend="sharded") as ref:
        expected = [list(matches) for matches in ref.execute_many(specs)]

    switch = WorkerKillSwitch(os.path.join(tmp_dir, "kill.sentinel"))
    backend = ShardedBackend(
        manifest.shard_paths(),
        [s.objects for s in manifest.shards],
        inner="disk",
        pool_kind="process",
        workers=2,
        inner_options={"mliq_tolerance": 1e-12},
        manifest=manifest,
        replicas=manifest.replica_paths(),
        runner=killing_runner(_run_shard_payload, switch),
    )
    session = Session(backend)
    try:
        switch.arm()
        got = [list(matches) for matches in session.execute_many(specs)]
    finally:
        session.close()
    identical = len(got) == len(expected)
    for exp, act in zip(expected, got):
        identical = identical and (
            [m.key for m in exp] == [m.key for m in act]
            and all(
                a.probability == b.probability and a.score == b.score
                for a, b in zip(exp, act)
            )
        )
    return {
        "queries": len(specs),
        "tracks": len(tracks),
        "kill_consumed": not switch.armed,
        "bit_identical": identical,
    }


def run(
    *,
    identities: int,
    steps: int,
    d: int,
    window: int,
    k: int,
    seed: int,
    server: str | None,
    smoke: bool,
) -> dict:
    stream = make_stream(identities, steps, d, seed)
    tmp_dir = tempfile.mkdtemp()
    try:
        sync = run_sync_phase(stream, tmp_dir, window=window, k=k)
        serve = run_serve_phase(
            stream, tmp_dir, window=window, k=k, server=server
        )
        if os.name == "posix":
            kill = run_kill_phase(stream, tmp_dir, k=min(k, 5))
        else:  # pragma: no cover - process pools need fork
            kill = {"skipped": "process pool requires posix fork"}
    finally:
        shutil.rmtree(tmp_dir)
    return {
        "headline": {
            "sync_churn_per_second": sync["churn_per_second"],
            "serve_churn_per_second": serve["churn_per_second"],
            "sync_identify_p99_ms": sync["identify_p99_ms"],
            "serve_identify_p99_ms": serve["identify_p99_ms"],
            "reid_precision": sync["reid_precision"],
            "failover_bit_identical": kill.get("bit_identical"),
        },
        "workload": {
            "identities": identities,
            "observations": steps,
            "dims": d,
            "window": window,
            "k": k,
            "seed": seed,
            "smoke": smoke,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "note": (
                "identify-then-insert with sliding-window expiry; sync "
                "is one in-process writable sharded session, serve is "
                "one pipelined JSONL client against a writable async "
                "server (writes serialize on the primary, so serve "
                "churn tracks per-request wire overhead, not cores)"
            ),
        },
        "sync": sync,
        "serve": serve,
        "failover": kill,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--identities", type=int, default=24)
    parser.add_argument("--steps", type=int, default=600)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--window", type=int, default=200)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="drive an external async writable server for the serve "
        "phase instead of starting one in-process",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI stream; throughput gates are reported, not "
        "asserted (the failover determinism gate always asserts)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_reid.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.steps = min(args.steps, 160)
        args.window = min(args.window, 48)
    result = run(
        identities=args.identities,
        steps=args.steps,
        d=args.d,
        window=args.window,
        k=args.k,
        seed=args.seed,
        server=args.server,
        smoke=args.smoke,
    )
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))

    headline = result["headline"]
    failures = []
    if result["failover"].get("skipped") is None:
        # Correctness gates hold even in smoke runs.
        if not result["failover"]["kill_consumed"]:
            failures.append("no worker consumed the kill sentinel")
        if not headline["failover_bit_identical"]:
            failures.append(
                "identification answers under a worker kill differ from "
                "the fault-free run (must be bit-identical)"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    soft = []
    if headline["sync_churn_per_second"] <= 0:
        soft.append("sync tier sustained no churn")
    if headline["serve_churn_per_second"] <= 0:
        soft.append("serve tier sustained no churn")
    if headline["reid_precision"] < 0.5:
        soft.append(
            f"re-identification precision {headline['reid_precision']} "
            "is below 0.5 (posterior is not identifying the stream)"
        )
    for failure in soft:
        print(f"FAIL: {failure}", file=sys.stderr)
    if soft and not args.smoke:
        return 1
    if soft:
        print(
            "(smoke run: gates reported above are informational)",
            file=sys.stderr,
        )
    print(
        f"\nchurn: sync {headline['sync_churn_per_second']}/s "
        f"(p99 identify {headline['sync_identify_p99_ms']} ms), serve "
        f"{headline['serve_churn_per_second']}/s (p99 identify "
        f"{headline['serve_identify_p99_ms']} ms); precision "
        f"{headline['reid_precision']}; failover bit-identical: "
        f"{headline['failover_bit_identical']} -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
