"""Shared benchmark fixtures: datasets and workloads, built once.

Scales: data set 1 always runs at the paper's size (10,987 x 27). Data
set 2 defaults to 20% of the paper's 100,000 objects because building a
100k-object index in pure Python takes minutes; set ``REPRO_FULL_SCALE=1``
to run the paper's size. Query counts default to 50 per batch (the paper
uses 100/500); EXPERIMENTS.md records the scales behind the committed
numbers.
"""

import os

import pytest

from repro.data.workload import identification_workload
from repro.eval.figures import dataset1, dataset2


def query_count(default: int = 50) -> int:
    return int(os.environ.get("REPRO_QUERIES", str(default)))


@pytest.fixture(scope="session")
def ds1():
    return dataset1()


@pytest.fixture(scope="session")
def ds1_workload(ds1):
    return identification_workload(ds1, query_count(), seed=7)


@pytest.fixture(scope="session")
def ds2():
    return dataset2()


@pytest.fixture(scope="session")
def ds2_workload(ds2):
    return identification_workload(ds2, query_count(), seed=11)
