"""Worker pools that fan shard batches out for the sharded backend.

The unit of work is a *shard task* ``(shard_id, payload)``: run one
query payload against one shard. A pool is built from two picklable
callables —

``opener(shard_id) -> Session``
    opens (and owns) the shard's session. Pools cache one session per
    shard per worker, so a disk shard's page buffer lives and stays warm
    inside the process that reads it;
``runner(session, payload) -> result``
    executes the payload on an open session.

Two implementations share that contract:

* :class:`SerialPool` — in-process, one shard after another. The
  baseline fan-out (and the only choice when shards are in-memory
  objects that cannot cross a process boundary).
* :class:`ProcessPool` — a ``multiprocessing`` process pool. Workers
  open disk shards *locally* (sessions never cross processes; only
  specs and match lists are pickled), so page buffers are per-process
  and shard batches genuinely overlap on multi-core hosts.

Failures never hang the caller: a payload that raises, a worker that
dies mid-batch (``BrokenProcessPool``) and a shard that cannot open all
surface as :class:`ClusterError` naming the shard.

**Failover.** Both pools take ``attempts``/``backoff``/``failover``:
a failed task is retried up to ``attempts`` times total, sleeping
``backoff * attempt`` seconds between rounds, and an optional
``failover(task_key, attempt) -> task_key | None`` hook re-targets each
retry (the sharded backend maps ``(shard, replica)`` keys to the next
replica of the same shard, which is what turns a dead worker or a lost
replica file into a transparent retry instead of a failed batch). The
shard task key is opaque to the pool — an ``int`` shard id or a
``(shard_id, replica_idx)`` tuple — it only keys the per-worker session
cache and names the shard in errors. Retries preserve result order and
resubmit only the failed tasks; a retry that keeps failing surfaces the
*first* error of the final round, so the historical error messages
(``"worker process died ..."``) are stable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.obs import metrics as _obs_metrics

__all__ = [
    "ClusterError",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "POOL_KINDS",
]

POOL_KINDS = ("serial", "process")


class ClusterError(RuntimeError):
    """A sharded-serving failure: bad manifest, unopenable shard, or a
    worker that raised/died mid-batch. Always carries enough context to
    name the shard involved: beyond the message, ``shard`` holds the
    shard label (or ``None`` for non-shard failures) and ``attempts``
    how many execution rounds were spent before giving up — so the
    trace/metrics path can count failovers instead of only surviving
    them."""

    def __init__(
        self,
        message: str,
        *,
        shard: str | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


def _count_retry() -> None:
    _obs_metrics.counter(
        "repro_cluster_retry_total",
        "Shard tasks re-executed after a failed attempt.",
    ).inc()


def _count_failover() -> None:
    _obs_metrics.counter(
        "repro_cluster_failover_total",
        "Shard tasks re-targeted to another replica by the failover hook.",
    ).inc()


def default_workers(n_shards: int) -> int:
    """Worker count when the caller does not choose: one per shard,
    bounded by the visible cores (but never below 2 — overlap between a
    blocked and a running shard batch helps even on small hosts, and a
    single-shard deployment still overlaps a dying worker's replacement
    with its healthy sibling)."""
    return max(2, min(n_shards, max(2, os.cpu_count() or 1)))


def _shard_label(key) -> str:
    """Human-readable shard name of a task key (int or shard/replica)."""
    if isinstance(key, tuple):
        shard_id, replica = key
        return f"{shard_id}" if replica == 0 else (
            f"{shard_id} (replica {replica})"
        )
    return f"{key}"


class SerialPool:
    """In-process fan-out: shard tasks run one after another.

    Exposes its per-shard session cache (:meth:`session`) so the owning
    backend can reuse the same sessions for metadata (count, estimate,
    database materialisation) without opening shards twice.
    """

    kind = "serial"
    parallel = False

    def __init__(
        self,
        opener: Callable[[int], Any],
        runner: Callable[[Any, Any], Any],
        *,
        attempts: int = 1,
        backoff: float = 0.05,
        failover: Callable[[Any, int], Any] | None = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self._opener = opener
        self._runner = runner
        self.attempts = attempts
        self.backoff = backoff
        self._failover = failover
        self._sessions: dict[Any, Any] = {}
        self._closed = False

    def session(self, shard_id):
        """The cached session of one shard (opened on first use)."""
        session = self._sessions.get(shard_id)
        if session is None:
            try:
                session = self._opener(shard_id)
            except ClusterError:
                raise
            except Exception as exc:
                raise ClusterError(
                    f"cannot open shard {_shard_label(shard_id)}: {exc}",
                    shard=_shard_label(shard_id),
                ) from exc
            self._sessions[shard_id] = session
        return session

    def _run_one(self, key, payload):
        """One task with bounded retries; failover re-targets the key."""
        last_error: ClusterError | None = None
        for attempt in range(self.attempts):
            if attempt:
                _count_retry()
                if self.backoff:
                    time.sleep(self.backoff * attempt)
                if self._failover is not None:
                    alternate = self._failover(key, attempt)
                    if alternate is not None:
                        key = alternate
                        _count_failover()
            try:
                session = self.session(key)
                return self._runner(session, payload)
            except ClusterError as exc:
                last_error = exc
            except Exception as exc:
                last_error = ClusterError(
                    f"shard {_shard_label(key)} failed executing its "
                    f"batch: {exc}",
                    shard=_shard_label(key),
                )
                last_error.__cause__ = exc
        assert last_error is not None
        if last_error.shard is None:
            last_error.shard = _shard_label(key)
        last_error.attempts = self.attempts
        raise last_error

    def run(self, tasks: Sequence[tuple[Any, Any]]) -> list[Any]:
        """Run shard tasks one after another; results in task order."""
        if self._closed:
            raise ClusterError("worker pool is closed")
        return [self._run_one(key, payload) for key, payload in tasks]

    def close(self) -> None:
        """Close every cached shard session (writable ones checkpoint)."""
        self._closed = True
        sessions, self._sessions = self._sessions, {}
        for session in sessions.values():
            close = getattr(session, "close", None)
            if close is not None:
                close()


# -- process-pool worker side (module-level: picklable by reference) --------

_WORKER_OPENER: Callable[[int], Any] | None = None
_WORKER_RUNNER: Callable[[Any, Any], Any] | None = None
_WORKER_SESSIONS: dict[int, Any] = {}


def _worker_init(opener, runner) -> None:
    global _WORKER_OPENER, _WORKER_RUNNER
    _WORKER_OPENER = opener
    _WORKER_RUNNER = runner
    _WORKER_SESSIONS.clear()


def _worker_call(task):
    shard_id, payload = task
    session = _WORKER_SESSIONS.get(shard_id)
    if session is None:
        session = _WORKER_OPENER(shard_id)
        _WORKER_SESSIONS[shard_id] = session
    return _WORKER_RUNNER(session, payload)


def _worker_warmup(seconds: float) -> int:
    # Keeps a freshly spawned worker busy just long enough that the
    # executor spawns a sibling for the next pending warmup task.
    time.sleep(seconds)
    return os.getpid()


class ProcessPool:
    """``multiprocessing`` fan-out: each worker opens shards locally.

    Uses the ``fork`` start method where available (Linux) so worker
    startup is cheap and test doubles pickle by reference; falls back to
    the platform default elsewhere. Because forking from a
    multi-threaded process is hazardous (a lock held by any other
    thread at fork time is inherited locked), callers that will go
    multi-threaded — the HTTP server — should :meth:`warm` the pool
    first, from their still-single-threaded setup phase; the sharded
    backend does this at construction. A broken executor (dead worker)
    is dropped and replaced on the next batch, so one crash fails its
    batch loudly instead of poisoning the pool forever.
    """

    kind = "process"
    parallel = True

    def __init__(
        self,
        opener: Callable[[int], Any],
        runner: Callable[[Any, Any], Any],
        workers: int,
        *,
        attempts: int = 1,
        backoff: float = 0.05,
        failover: Callable[[Any, int], Any] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self._opener = opener
        self._runner = runner
        self.workers = workers
        self.attempts = attempts
        self.backoff = backoff
        #: Parent-side hook ``(task_key, attempt) -> task_key | None``:
        #: re-targets a failed task before its retry (e.g. onto another
        #: replica of the same shard). Never pickled to workers.
        self._failover = failover
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._opener, self._runner),
            )
        return self._executor

    def warm(self) -> None:
        """Spawn the worker processes now (from the calling thread).

        ProcessPoolExecutor forks workers lazily on submit; submitting
        one short sleep per worker slot forces the full complement to
        spawn while the caller is still single-threaded.
        """
        executor = self._ensure_executor()
        warmups = [
            executor.submit(_worker_warmup, 0.05)
            for _ in range(self.workers)
        ]
        for future in warmups:
            try:
                future.result(timeout=60)
            except BrokenProcessPool:
                self._executor = None
                raise ClusterError(
                    "worker process died during pool warm-up"
                ) from None

    def run(self, tasks: Sequence[tuple[Any, Any]]) -> list[Any]:
        """Submit shard tasks to the worker processes; results in task
        order. Worker failures surface as :class:`ClusterError` — after
        up to ``attempts`` rounds: only the failed tasks are resubmitted
        (to a fresh executor if a worker died), each re-targeted through
        the ``failover`` hook if one is set, so a mid-batch worker kill
        with replicas configured completes the batch transparently."""
        if self._closed:
            raise ClusterError("worker pool is closed")
        slots: list[tuple[Any, Any]] = [
            (key, payload) for key, payload in tasks
        ]
        results: list[Any] = [None] * len(slots)
        pending = list(range(len(slots)))
        first_error: ClusterError | None = None
        for attempt in range(self.attempts):
            if not pending:
                break
            if attempt:
                for _ in pending:
                    _count_retry()
                if self.backoff:
                    time.sleep(self.backoff * attempt)
                if self._failover is not None:
                    for i in pending:
                        alternate = self._failover(slots[i][0], attempt)
                        if alternate is not None:
                            slots[i] = (alternate, slots[i][1])
                            _count_failover()
            executor = self._ensure_executor()
            futures = [
                (i, executor.submit(_worker_call, slots[i]))
                for i in pending
            ]
            failed: list[int] = []
            first_error = None
            for i, future in futures:
                key = slots[i][0]
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    # A worker died (killed, OOM, segfault): the executor
                    # is unusable. Drop it so the retry (or the next
                    # batch) gets a fresh pool.
                    self._executor = None
                    failed.append(i)
                    if first_error is None:
                        first_error = ClusterError(
                            "worker process died while serving shard "
                            f"{_shard_label(key)} (pool restarted; "
                            "re-submit the batch)",
                            shard=_shard_label(key),
                        )
                        first_error.__cause__ = exc
                except ClusterError as exc:
                    failed.append(i)
                    if exc.shard is None:
                        exc.shard = _shard_label(key)
                    first_error = first_error or exc
                except Exception as exc:
                    failed.append(i)
                    if first_error is None:
                        first_error = ClusterError(
                            f"shard {_shard_label(key)} failed in a pool "
                            f"worker: {exc}",
                            shard=_shard_label(key),
                        )
                        first_error.__cause__ = exc
            pending = failed
        if pending:
            assert first_error is not None
            first_error.attempts = self.attempts
            raise first_error
        return results

    def close(self) -> None:
        """Shut the worker processes down (cancelling queued tasks)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


def make_pool(
    kind: str,
    opener: Callable[[int], Any],
    runner: Callable[[Any, Any], Any],
    *,
    n_shards: int,
    workers: int | None = None,
    attempts: int = 1,
    backoff: float = 0.05,
    failover: Callable[[Any, int], Any] | None = None,
):
    """Build the pool named by ``kind`` (``"serial"`` or ``"process"``).

    ``attempts``/``backoff``/``failover`` configure per-task retries
    (see the module docstring); the defaults keep the historical
    fail-fast behaviour."""
    if kind == "serial":
        return SerialPool(
            opener, runner,
            attempts=attempts, backoff=backoff, failover=failover,
        )
    if kind == "process":
        return ProcessPool(
            opener,
            runner,
            workers or default_workers(n_shards),
            attempts=attempts,
            backoff=backoff,
            failover=failover,
        )
    raise ValueError(
        f"unknown pool kind {kind!r}; choose from {POOL_KINDS}"
    )
