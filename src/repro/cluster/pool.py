"""Worker pools that fan shard batches out for the sharded backend.

The unit of work is a *shard task* ``(shard_id, payload)``: run one
query payload against one shard. A pool is built from two picklable
callables —

``opener(shard_id) -> Session``
    opens (and owns) the shard's session. Pools cache one session per
    shard per worker, so a disk shard's page buffer lives and stays warm
    inside the process that reads it;
``runner(session, payload) -> result``
    executes the payload on an open session.

Two implementations share that contract:

* :class:`SerialPool` — in-process, one shard after another. The
  baseline fan-out (and the only choice when shards are in-memory
  objects that cannot cross a process boundary).
* :class:`ProcessPool` — a ``multiprocessing`` process pool. Workers
  open disk shards *locally* (sessions never cross processes; only
  specs and match lists are pickled), so page buffers are per-process
  and shard batches genuinely overlap on multi-core hosts.

Failures never hang the caller: a payload that raises, a worker that
dies mid-batch (``BrokenProcessPool``) and a shard that cannot open all
surface as :class:`ClusterError` naming the shard.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

__all__ = [
    "ClusterError",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "POOL_KINDS",
]

POOL_KINDS = ("serial", "process")


class ClusterError(RuntimeError):
    """A sharded-serving failure: bad manifest, unopenable shard, or a
    worker that raised/died mid-batch. Always carries enough context to
    name the shard involved."""


def default_workers(n_shards: int) -> int:
    """Worker count when the caller does not choose: one per shard,
    bounded by the visible cores (but never below 2 — overlap between a
    blocked and a running shard batch helps even on small hosts)."""
    return max(1, min(n_shards, max(2, os.cpu_count() or 1)))


class SerialPool:
    """In-process fan-out: shard tasks run one after another.

    Exposes its per-shard session cache (:meth:`session`) so the owning
    backend can reuse the same sessions for metadata (count, estimate,
    database materialisation) without opening shards twice.
    """

    kind = "serial"
    parallel = False

    def __init__(
        self,
        opener: Callable[[int], Any],
        runner: Callable[[Any, Any], Any],
    ) -> None:
        self._opener = opener
        self._runner = runner
        self._sessions: dict[int, Any] = {}
        self._closed = False

    def session(self, shard_id: int):
        """The cached session of one shard (opened on first use)."""
        session = self._sessions.get(shard_id)
        if session is None:
            try:
                session = self._opener(shard_id)
            except ClusterError:
                raise
            except Exception as exc:
                raise ClusterError(
                    f"cannot open shard {shard_id}: {exc}"
                ) from exc
            self._sessions[shard_id] = session
        return session

    def run(self, tasks: Sequence[tuple[int, Any]]) -> list[Any]:
        """Run shard tasks one after another; results in task order."""
        if self._closed:
            raise ClusterError("worker pool is closed")
        results = []
        for shard_id, payload in tasks:
            session = self.session(shard_id)
            try:
                results.append(self._runner(session, payload))
            except ClusterError:
                raise
            except Exception as exc:
                raise ClusterError(
                    f"shard {shard_id} failed executing its batch: {exc}"
                ) from exc
        return results

    def close(self) -> None:
        """Close every cached shard session (writable ones checkpoint)."""
        self._closed = True
        sessions, self._sessions = self._sessions, {}
        for session in sessions.values():
            close = getattr(session, "close", None)
            if close is not None:
                close()


# -- process-pool worker side (module-level: picklable by reference) --------

_WORKER_OPENER: Callable[[int], Any] | None = None
_WORKER_RUNNER: Callable[[Any, Any], Any] | None = None
_WORKER_SESSIONS: dict[int, Any] = {}


def _worker_init(opener, runner) -> None:
    global _WORKER_OPENER, _WORKER_RUNNER
    _WORKER_OPENER = opener
    _WORKER_RUNNER = runner
    _WORKER_SESSIONS.clear()


def _worker_call(task):
    shard_id, payload = task
    session = _WORKER_SESSIONS.get(shard_id)
    if session is None:
        session = _WORKER_OPENER(shard_id)
        _WORKER_SESSIONS[shard_id] = session
    return _WORKER_RUNNER(session, payload)


def _worker_warmup(seconds: float) -> int:
    # Keeps a freshly spawned worker busy just long enough that the
    # executor spawns a sibling for the next pending warmup task.
    time.sleep(seconds)
    return os.getpid()


class ProcessPool:
    """``multiprocessing`` fan-out: each worker opens shards locally.

    Uses the ``fork`` start method where available (Linux) so worker
    startup is cheap and test doubles pickle by reference; falls back to
    the platform default elsewhere. Because forking from a
    multi-threaded process is hazardous (a lock held by any other
    thread at fork time is inherited locked), callers that will go
    multi-threaded — the HTTP server — should :meth:`warm` the pool
    first, from their still-single-threaded setup phase; the sharded
    backend does this at construction. A broken executor (dead worker)
    is dropped and replaced on the next batch, so one crash fails its
    batch loudly instead of poisoning the pool forever.
    """

    kind = "process"
    parallel = True

    def __init__(
        self,
        opener: Callable[[int], Any],
        runner: Callable[[Any, Any], Any],
        workers: int,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._opener = opener
        self._runner = runner
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._opener, self._runner),
            )
        return self._executor

    def warm(self) -> None:
        """Spawn the worker processes now (from the calling thread).

        ProcessPoolExecutor forks workers lazily on submit; submitting
        one short sleep per worker slot forces the full complement to
        spawn while the caller is still single-threaded.
        """
        executor = self._ensure_executor()
        warmups = [
            executor.submit(_worker_warmup, 0.05)
            for _ in range(self.workers)
        ]
        for future in warmups:
            try:
                future.result(timeout=60)
            except BrokenProcessPool:
                self._executor = None
                raise ClusterError(
                    "worker process died during pool warm-up"
                ) from None

    def run(self, tasks: Sequence[tuple[int, Any]]) -> list[Any]:
        """Submit shard tasks to the worker processes; results in task
        order. Worker failures surface as :class:`ClusterError`."""
        if self._closed:
            raise ClusterError("worker pool is closed")
        executor = self._ensure_executor()
        futures = [
            (shard_id, executor.submit(_worker_call, (shard_id, payload)))
            for shard_id, payload in tasks
        ]
        results = []
        first_error: ClusterError | None = None
        for shard_id, future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                # A worker died (killed, OOM, segfault): the executor is
                # unusable. Drop it so the next batch gets a fresh pool,
                # and fail this batch with the shard that surfaced it.
                self._executor = None
                first_error = first_error or ClusterError(
                    f"worker process died while serving shard {shard_id} "
                    "(pool restarted; re-submit the batch)"
                )
                first_error.__cause__ = exc
            except ClusterError as exc:
                first_error = first_error or exc
            except Exception as exc:
                first_error = first_error or ClusterError(
                    f"shard {shard_id} failed in a pool worker: {exc}"
                )
                first_error.__cause__ = exc
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        """Shut the worker processes down (cancelling queued tasks)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


def make_pool(
    kind: str,
    opener: Callable[[int], Any],
    runner: Callable[[Any, Any], Any],
    *,
    n_shards: int,
    workers: int | None = None,
):
    """Build the pool named by ``kind`` (``"serial"`` or ``"process"``)."""
    if kind == "serial":
        return SerialPool(opener, runner)
    if kind == "process":
        return ProcessPool(
            opener, runner, workers or default_workers(n_shards)
        )
    raise ValueError(
        f"unknown pool kind {kind!r}; choose from {POOL_KINDS}"
    )
