"""Tiny stdlib client for the ``repro serve`` JSON endpoint.

Speaks the wire format of :mod:`repro.cluster.wire` over
``urllib.request`` — no dependencies, usable from load generators and
smoke tests::

    client = ServeClient("http://127.0.0.1:8631")
    client.healthz()
    answers = client.query([MLIQ(q, 5), TIQ(q, 0.3)])
    answers.results[0][0]["key"]
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
from typing import Sequence

from repro.cluster.wire import pfv_to_json, spec_to_json
from repro.core.pfv import PFV
from repro.engine.spec import Query

__all__ = ["ServeClient", "RemoteAnswer", "RemoteError"]


class RemoteError(RuntimeError):
    """The server answered with an error (or could not be reached)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass(frozen=True)
class RemoteAnswer:
    """A ``POST /query`` response, parsed.

    ``results[i]`` is the i-th query's match list as wire dicts
    (``key`` / ``probability`` / ``log_density``), ordered by descending
    posterior — the serialised form of the server-side ResultSet.
    """

    backend: str
    results: list[list[dict]]
    stats: dict
    execute_seconds: float
    provenance: list[dict]

    def keys(self) -> list[list]:
        """Per-query matched keys, in rank order."""
        return [[m["key"] for m in matches] for matches in self.results]


class ServeClient:
    """HTTP client bound to one ``repro serve`` endpoint.

    ``retries`` (default 0 — fail fast, the historical behaviour)
    re-issues a request that could not *reach* the server up to that
    many extra times, sleeping ``retry_backoff * attempt`` seconds in
    between. Only transport failures retry: requests are re-sent
    verbatim, which is safe for the read endpoints but would duplicate
    an ``/insert`` whose response got lost, and an HTTP error status is
    an answer, not an outage. Useful while a serving endpoint restarts
    during failover or a reshard cutover.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retries: int = 0,
        retry_backoff: float = 0.2,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, path: str, body: dict | None = None, *, retries: int | None = None
    ) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        attempts = 1 + (self.retries if retries is None else retries)
        for attempt in range(attempts):
            if attempt and self.retry_backoff:
                time.sleep(self.retry_backoff * attempt)
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    payload = json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get(
                        "error", ""
                    )
                except Exception:
                    detail = ""
                raise RemoteError(
                    f"{url} answered HTTP {exc.code}"
                    + (f": {detail}" if detail else ""),
                    status=exc.code,
                ) from exc
            except (urllib.error.URLError, OSError) as exc:
                if attempt + 1 < attempts:
                    continue
                raise RemoteError(f"cannot reach {url}: {exc}") from exc
            if not isinstance(payload, dict):
                raise RemoteError(f"{url} answered non-object JSON")
            return payload
        raise AssertionError("unreachable")  # the loop returns or raises

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz`` — raises :class:`RemoteError` if unhealthy."""
        payload = self._request("/healthz")
        if payload.get("status") != "ok":
            raise RemoteError(f"server unhealthy: {payload}")
        return payload

    def stats(self) -> dict:
        """``GET /stats`` — cumulative serving counters."""
        return self._request("/stats")

    def query(self, specs: Sequence[Query] | Query) -> RemoteAnswer:
        """``POST /query`` with one spec or a batch of specs."""
        if not isinstance(specs, (list, tuple)):
            specs = [specs]
        if not specs:
            raise ValueError("query() needs at least one spec")
        payload = self._request(
            "/query",
            {"queries": [spec_to_json(spec) for spec in specs]},
        )
        return RemoteAnswer(
            backend=payload.get("backend", "?"),
            results=payload.get("results", []),
            stats=payload.get("stats", {}),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            provenance=payload.get("provenance", []),
        )

    def insert(self, vectors: Sequence[PFV] | PFV) -> dict:
        """``POST /insert`` with one pfv or a batch of pfv.

        The server applies the batch through its writable primary
        session (group commit / placement routing) and answers
        ``{"inserted": n, "objects": total, "execute_seconds": s}``;
        a read-only server answers HTTP 403, raised here as
        :class:`RemoteError`.
        """
        if isinstance(vectors, PFV):
            vectors = [vectors]
        if not vectors:
            raise ValueError("insert() needs at least one pfv")
        # Never auto-retry writes: a lost response would re-send (and
        # re-apply) the whole batch.
        return self._request(
            "/insert",
            {"vectors": [pfv_to_json(v) for v in vectors]},
            retries=0,
        )
