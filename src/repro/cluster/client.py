"""Tiny stdlib client for the ``repro serve`` JSON endpoint.

Speaks the wire format of :mod:`repro.cluster.wire` over
``urllib.request`` — no dependencies, usable from load generators and
smoke tests::

    client = ServeClient("http://127.0.0.1:8631")
    client.healthz()
    answers = client.query([MLIQ(q, 5), TIQ(q, 0.3)])
    answers.results[0][0]["key"]
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
import urllib.error
import urllib.request
from typing import Sequence

from repro.cluster.wire import pfv_to_json, spec_to_json
from repro.core.pfv import PFV
from repro.engine.spec import Query
from repro.obs.trace import mint_trace_id

__all__ = ["ServeClient", "RemoteAnswer", "RemoteError"]


class RemoteError(RuntimeError):
    """The server answered with an error (or could not be reached)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass(frozen=True)
class RemoteAnswer:
    """A ``POST /query`` response, parsed.

    ``results[i]`` is the i-th query's match list as wire dicts
    (``key`` / ``probability`` / ``log_density``), ordered by descending
    posterior — the serialised form of the server-side ResultSet.
    """

    backend: str
    results: list[list[dict]]
    stats: dict
    execute_seconds: float
    provenance: list[dict]
    #: The request's span tree (``Trace.to_dict()`` shape) when the
    #: query was traced; ``None`` otherwise.
    trace: dict | None = None

    def keys(self) -> list[list]:
        """Per-query matched keys, in rank order."""
        return [[m["key"] for m in matches] for matches in self.results]


class ServeClient:
    """HTTP client bound to one ``repro serve`` endpoint.

    ``retries`` (default 0 — fail fast, the historical behaviour)
    re-issues a request that could not *reach* the server up to that
    many extra times, sleeping ``retry_backoff * attempt`` seconds in
    between. Only transport failures retry: requests are re-sent
    verbatim, which is safe for the read endpoints but would duplicate
    an ``/insert`` whose response got lost, and an HTTP error status is
    an answer, not an outage. Useful while a serving endpoint restarts
    during failover or a reshard cutover.

    Backpressure (HTTP 429 from the async serving tier's admission
    control) is handled separately and is on by default: the client
    backs off and retries rather than failing on first rejection,
    honouring the server's ``Retry-After`` hint when present and
    otherwise doubling from ``retry_backoff`` up to ``max_busy_backoff``
    seconds, with jitter so a rejected thundering herd does not retry
    in lockstep. A 429 retry is safe for *writes* too — the server
    rejected the request before executing anything. Disable with
    ``retry_busy=False`` (429 then raises :class:`RemoteError` like any
    other error status) or bound it with ``max_busy_retries``.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retries: int = 0,
        retry_backoff: float = 0.2,
        retry_busy: bool = True,
        max_busy_retries: int = 8,
        max_busy_backoff: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_busy_retries < 0:
            raise ValueError(
                f"max_busy_retries must be >= 0, got {max_busy_retries}"
            )
        if max_busy_backoff < 0:
            raise ValueError(
                f"max_busy_backoff must be >= 0, got {max_busy_backoff}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_busy = retry_busy
        self.max_busy_retries = max_busy_retries
        self.max_busy_backoff = max_busy_backoff

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        path: str,
        body: dict | None = None,
        *,
        retries: int | None = None,
        headers: dict | None = None,
    ) -> dict:
        url = self.base_url + path
        data = None
        all_headers = {"Accept": "application/json"}
        if headers:
            all_headers.update(headers)
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            all_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=all_headers)
        attempts = 1 + (self.retries if retries is None else retries)
        attempt = 0  # transport failures, bounded by `attempts`
        busy_retries = 0  # 429 backoff, bounded by max_busy_retries
        while True:
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    payload = json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                if (
                    exc.code == 429
                    and self.retry_busy
                    and busy_retries < self.max_busy_retries
                ):
                    time.sleep(self._busy_delay(exc, busy_retries))
                    busy_retries += 1
                    continue
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get(
                        "error", ""
                    )
                except Exception:
                    detail = ""
                raise RemoteError(
                    f"{url} answered HTTP {exc.code}"
                    + (f": {detail}" if detail else ""),
                    status=exc.code,
                ) from exc
            except (urllib.error.URLError, OSError) as exc:
                attempt += 1
                if attempt < attempts:
                    if self.retry_backoff:
                        time.sleep(self.retry_backoff * attempt)
                    continue
                raise RemoteError(f"cannot reach {url}: {exc}") from exc
            if not isinstance(payload, dict):
                raise RemoteError(f"{url} answered non-object JSON")
            return payload

    def _busy_delay(self, exc: urllib.error.HTTPError, busy_retries: int) -> float:
        """Seconds to back off after one 429: the server's Retry-After
        if sent, else capped exponential from ``retry_backoff`` —
        jittered either way (uniform over [50%, 100%])."""
        retry_after = exc.headers.get("Retry-After") if exc.headers else None
        if retry_after is not None:
            try:
                delay = float(retry_after)
            except ValueError:
                delay = self.retry_backoff
        else:
            delay = self.retry_backoff * (2.0**busy_retries)
        delay = min(delay, self.max_busy_backoff)
        return delay * (0.5 + random.random() / 2.0)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz`` — raises :class:`RemoteError` if unhealthy."""
        payload = self._request("/healthz")
        if payload.get("status") != "ok":
            raise RemoteError(f"server unhealthy: {payload}")
        return payload

    def stats(self) -> dict:
        """``GET /stats`` — cumulative serving counters."""
        return self._request("/stats")

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus exposition text."""
        url = self.base_url + "/metrics"
        try:
            with urllib.request.urlopen(
                url, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise RemoteError(
                f"{url} answered HTTP {exc.code}", status=exc.code
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise RemoteError(f"cannot reach {url}: {exc}") from exc

    def query(
        self,
        specs: Sequence[Query] | Query,
        *,
        trace: bool | str = False,
    ) -> RemoteAnswer:
        """``POST /query`` with one spec or a batch of specs.

        A truthy ``trace`` requests the span tree of the execution
        (sent as the ``X-Repro-Trace`` header; a string supplies the
        trace ID, ``True`` lets the server mint one). The tree comes
        back as :attr:`RemoteAnswer.trace`.
        """
        if not isinstance(specs, (list, tuple)):
            specs = [specs]
        if not specs:
            raise ValueError("query() needs at least one spec")
        headers = {}
        if trace:
            # The header always carries a concrete ID (headers are
            # strings); ``True`` mints one client-side.
            headers["X-Repro-Trace"] = (
                trace if isinstance(trace, str) else mint_trace_id()
            )
        payload = self._request(
            "/query",
            {"queries": [spec_to_json(spec) for spec in specs]},
            headers=headers,
        )
        return RemoteAnswer(
            backend=payload.get("backend", "?"),
            results=payload.get("results", []),
            stats=payload.get("stats", {}),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            provenance=payload.get("provenance", []),
            trace=payload.get("trace"),
        )

    def insert(self, vectors: Sequence[PFV] | PFV) -> dict:
        """``POST /insert`` with one pfv or a batch of pfv.

        The server applies the batch through its writable primary
        session (group commit / placement routing) and answers
        ``{"inserted": n, "objects": total, "execute_seconds": s}``;
        a read-only server answers HTTP 403, raised here as
        :class:`RemoteError`.
        """
        if isinstance(vectors, PFV):
            vectors = [vectors]
        if not vectors:
            raise ValueError("insert() needs at least one pfv")
        # Never auto-retry writes on *transport* failures: a lost
        # response would re-send (and re-apply) the whole batch. 429
        # backoff still applies — the server rejects before executing.
        return self._request(
            "/insert",
            {"vectors": [pfv_to_json(v) for v in vectors]},
            retries=0,
        )

    def delete(self, vectors: Sequence[PFV] | PFV) -> dict:
        """``POST /delete`` with one pfv or a batch of pfv.

        The server deletes each vector through its writable primary
        session and answers ``{"deleted": n_found, "requested": n,
        "objects": total, "execute_seconds": s}`` — vectors absent from
        the index are clean misses that lower ``deleted``, not errors.
        A read-only server answers HTTP 403, raised here as
        :class:`RemoteError`.
        """
        if isinstance(vectors, PFV):
            vectors = [vectors]
        if not vectors:
            raise ValueError("delete() needs at least one pfv")
        # Deletes are idempotent, but keep the no-transport-retry write
        # discipline: a re-sent batch would report misleading counts.
        return self._request(
            "/delete",
            {"vectors": [pfv_to_json(v) for v in vectors]},
            retries=0,
        )
