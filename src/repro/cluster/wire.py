"""JSON wire format for query specs and results.

One workload format shared by every serving surface: ``repro query
--input queries.jsonl``, the ``repro serve`` HTTP endpoint, the Python
client and ``benchmarks/bench_cluster.py`` all speak these shapes, so a
load file generated once drives any of them.

A spec is one JSON object::

    {"kind": "mliq", "mu": [..], "sigma": [..], "k": 5}
    {"kind": "tiq",  "mu": [..], "sigma": [..], "tau": 0.3, "eps": 0.0}
    {"kind": "rank", "mu": [..], "sigma": [..], "k": 5, "min_mass": 0.95}
    {"kind": "consensus", "mu": [..], "sigma": [..], "k": 5}
    {"kind": "erank", "mu": [..], "sigma": [..], "k": 5}

Write specs (served by ``POST /insert`` / ``POST /delete`` and
writable sessions)::

    {"kind": "insert", "mu": [..], "sigma": [..], "key": "O7"}
    {"kind": "delete", "mu": [..], "sigma": [..], "key": "O7"}

Keys may be null, booleans, numbers or strings directly; tuple keys —
the only other persistable kind — encode as ``{"tuple": [..]}`` (JSON
has no tuple type, and a bare list would decode as an unhashable key).

A JSONL workload file holds one spec per line (blank lines ignored). A
match serializes as ``{"key": .., "probability": .., "log_density": ..}``
— the identification answer, not the stored vector (keys that are not
JSON types are stringified, flagged by ``"key_repr": true``). Answers
to the ranked semantics additionally carry ``"score"`` — the
consensus membership probability or the expected rank. The full
endpoint/error contract is documented in ``docs/wire-protocol.md``.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.core.pfv import PFV
from repro.core.queries import Match
from repro.engine.result import ResultSet
from repro.engine.spec import (
    MLIQ,
    TIQ,
    ConsensusTopK,
    Delete,
    ExpectedRank,
    Insert,
    Query,
    RankQuery,
    Spec,
)

__all__ = [
    "WireError",
    "spec_to_json",
    "spec_from_json",
    "pfv_to_json",
    "pfv_from_json",
    "match_to_json",
    "result_to_json",
    "load_jsonl",
    "dump_jsonl",
    "REQUEST_OPS",
    "request_from_json",
    "response_to_json",
]

#: Operations a pipelined-JSONL request envelope may name. ``query``,
#: ``insert`` and ``delete`` mirror the HTTP POST endpoints;
#: ``healthz``, ``stats`` and ``metrics`` the GET ones (``metrics``
#: answers with the Prometheus exposition text in a ``{"text": ..}``
#: payload).
REQUEST_OPS = frozenset(
    {"query", "insert", "delete", "healthz", "stats", "metrics"}
)


class WireError(ValueError):
    """A payload that does not parse as the documented wire format."""


def _key_to_json(key):
    """Wire encoding of an application key (tuples become
    ``{"tuple": [..]}`` — JSON has no tuple type)."""
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    if isinstance(key, tuple):
        return {"tuple": [_key_to_json(k) for k in key]}
    raise WireError(
        f"cannot serialize key {key!r} of type {type(key).__name__}; "
        "supported: None, bool, int, float, str and tuples thereof"
    )


def _key_from_json(data):
    """Inverse of :func:`_key_to_json` (validating)."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict) and set(data) == {"tuple"}:
        items = data["tuple"]
        if not isinstance(items, list):
            raise WireError('"tuple" key encoding must hold a list')
        return tuple(_key_from_json(k) for k in items)
    raise WireError(
        f"bad wire key {data!r} (expected a JSON scalar or "
        '{"tuple": [..]})'
    )


def pfv_to_json(v: PFV) -> dict:
    """Serialize one stored pfv (mu, sigma and its application key)."""
    payload = {
        "mu": [float(x) for x in v.mu],
        "sigma": [float(x) for x in v.sigma],
    }
    if v.key is not None:
        payload["key"] = _key_to_json(v.key)
    return payload


def pfv_from_json(data: object) -> PFV:
    """Parse one wire pfv dict (mu/sigma required, key optional)."""
    if not isinstance(data, dict):
        raise WireError(f"a pfv must be a JSON object, got {data!r}")
    try:
        return PFV(
            data["mu"], data["sigma"], key=_key_from_json(data.get("key"))
        )
    except KeyError as exc:
        raise WireError(f"pfv is missing field {exc}") from None
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad pfv: {exc}") from exc


def spec_to_json(spec: Spec) -> dict:
    """Serialize one engine spec (read or write) to its wire dict."""
    base = {
        "kind": spec.kind,
        "mu": [float(x) for x in (spec.q if hasattr(spec, "q") else spec.v).mu],
        "sigma": [
            float(x) for x in (spec.q if hasattr(spec, "q") else spec.v).sigma
        ],
    }
    if isinstance(spec, MLIQ):
        base["k"] = spec.k
    elif isinstance(spec, TIQ):
        base["tau"] = spec.tau
        if spec.eps:
            base["eps"] = spec.eps
    elif isinstance(spec, RankQuery):
        base["k"] = spec.k
        if spec.min_mass is not None:
            base["min_mass"] = spec.min_mass
    elif isinstance(spec, (ConsensusTopK, ExpectedRank)):
        base["k"] = spec.k
    elif isinstance(spec, (Insert, Delete)):
        if spec.v.key is not None:
            base["key"] = _key_to_json(spec.v.key)
    else:  # pragma: no cover - spec union is closed today
        raise WireError(f"cannot serialize spec {spec!r}")
    return base


def spec_from_json(data: object) -> Spec:
    """Parse one wire dict back into an engine spec (validating)."""
    if not isinstance(data, dict):
        raise WireError(f"query spec must be a JSON object, got {data!r}")
    kind = data.get("kind")
    if kind in ("insert", "delete"):
        v = pfv_from_json(
            {k: data[k] for k in ("mu", "sigma", "key") if k in data}
        )
        return Insert(v) if kind == "insert" else Delete(v)
    try:
        q = PFV(data["mu"], data["sigma"])
    except KeyError as exc:
        raise WireError(f"query spec is missing field {exc}") from None
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad query pfv: {exc}") from exc
    try:
        if kind == "mliq":
            return MLIQ(q, int(data.get("k", 1)))
        if kind == "tiq":
            return TIQ(
                q, float(data.get("tau", 0.5)), float(data.get("eps", 0.0))
            )
        if kind == "rank":
            min_mass = data.get("min_mass")
            return RankQuery(
                q,
                int(data.get("k", 1)),
                min_mass=None if min_mass is None else float(min_mass),
            )
        if kind == "consensus":
            return ConsensusTopK(q, int(data.get("k", 1)))
        if kind == "erank":
            return ExpectedRank(q, int(data.get("k", 1)))
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad {kind} parameters: {exc}") from exc
    raise WireError(
        f"unknown query kind {kind!r} "
        "(expected mliq, tiq, rank, consensus, erank, insert or delete)"
    )


def match_to_json(match: Match) -> dict:
    """Serialize one answer match (key + posterior + log density, plus
    the semantics ``score`` when the spec attached one)."""
    key = match.key
    try:
        json.dumps(key)
    except (TypeError, ValueError):
        out = {
            "key": repr(key),
            "key_repr": True,
            "probability": match.probability,
            "log_density": match.log_density,
        }
    else:
        out = {
            "key": key,
            "probability": match.probability,
            "log_density": match.log_density,
        }
    if match.score is not None:
        out["score"] = match.score
    return out


def result_to_json(rs: ResultSet) -> dict:
    """Serialize a whole ResultSet (per-query matches + merged stats)."""
    stats = rs.stats
    payload = {
        "backend": rs.backend,
        "n_queries": len(rs),
        "results": [
            [match_to_json(m) for m in matches] for matches in rs
        ],
        "stats": {
            "pages_accessed": stats.pages_accessed,
            "page_faults": stats.page_faults,
            "objects_refined": stats.objects_refined,
            "nodes_expanded": stats.nodes_expanded,
            "cpu_seconds": stats.cpu_seconds,
            "io_seconds": stats.io_seconds,
            "modeled_cpu_seconds": stats.modeled_cpu_seconds,
            "buffer_evictions": stats.buffer_evictions,
            "buffer_hit_ratio": round(stats.buffer_hit_ratio, 6),
        },
    }
    if rs.trace is not None:
        payload["trace"] = rs.trace
    if rs.provenance:
        payload["provenance"] = [
            {
                "shard": name,
                "pages_accessed": s.pages_accessed,
                "objects_refined": s.objects_refined,
            }
            for name, s in rs.provenance
        ]
    return payload


def request_from_json(data: object) -> tuple:
    """Validate one pipelined-JSONL request envelope.

    The async serving tier (``docs/serving.md``) frames requests as one
    JSON object per line: ``{"op":
    "query"|"insert"|"delete"|"healthz"|"stats", "id": ..,
    ...payload}``. Returns ``(id, op, data)``; ``id`` is the
    client's correlation token (echoed verbatim on the response, so
    pipelined responses may arrive out of order), ``op`` selects the
    operation and the remaining keys are the op's payload — the same
    shapes the HTTP endpoints take (``"queries"`` for ``query``,
    ``"vectors"`` for ``insert`` and ``delete``).
    """
    if not isinstance(data, dict):
        raise WireError(f"a request must be a JSON object, got {data!r}")
    op = data.get("op")
    if op not in REQUEST_OPS:
        raise WireError(
            f"unknown op {op!r} (expected one of {sorted(REQUEST_OPS)})"
        )
    rid = data.get("id")
    if rid is not None and not isinstance(rid, (bool, int, float, str)):
        raise WireError(
            f"request id must be a JSON scalar, got {rid!r}"
        )
    return rid, op, data


def response_to_json(rid: object, status: int, payload: dict) -> dict:
    """Stamp one response envelope: the payload plus the echoed request
    ``id`` and an HTTP-alike ``status`` (200 success, 4xx/5xx carrying
    ``{"error": ..}`` and — for 429/503 — a ``retry_after`` hint)."""
    out = dict(payload)
    out["id"] = rid
    out["status"] = int(status)
    return out


def load_jsonl(f: IO[str]) -> list[Query]:
    """Read a JSONL workload (one spec per line; blank lines skipped)."""
    specs: list[Query] = []
    for lineno, line in enumerate(f, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WireError(f"line {lineno}: not JSON ({exc})") from exc
        try:
            specs.append(spec_from_json(data))
        except WireError as exc:
            raise WireError(f"line {lineno}: {exc}") from None
    return specs


def dump_jsonl(specs: Iterable[Query], f: IO[str]) -> int:
    """Write specs as a JSONL workload; returns the number written."""
    count = 0
    for spec in specs:
        f.write(json.dumps(spec_to_json(spec)))
        f.write("\n")
        count += 1
    return count
