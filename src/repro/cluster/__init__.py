"""``repro.cluster`` — sharded parallel serving over the unified engine.

The scaling layer the ROADMAP's serving story plugs into: one database
split into N disjoint shards, each behind its own inner backend, fanned
out to by a :class:`~repro.cluster.backend.ShardedBackend` that merges
per-shard answers into *globally correct* posteriors (the Bayes
denominator spans every shard; see :mod:`repro.cluster.backend` for the
math), served concurrently over HTTP by :mod:`repro.cluster.server`.

The lifecycle:

1. :func:`build_shards` (CLI: ``repro shard-build``) partitions a
   database deterministically (``hash`` or ``round-robin`` policy),
   saves one Gauss-tree index per shard and writes a
   ``<name>.shards.json`` manifest;
2. ``repro.connect(manifest, backend="sharded", pool="process")`` opens
   a session that fans batches out through a
   :mod:`~repro.cluster.pool` worker pool (serial, or a
   ``multiprocessing`` pool whose workers open disk shards locally so
   page buffers stay per-process); ``writable=True`` additionally arms
   the **write router** — inserts/deletes route to the owning shard by
   the placement policy, batches group-commit per shard, and the
   manifest's counts + placement epoch refresh on every commit;
3. :func:`serve` (CLI: ``repro serve``) exposes any session — sharded
   or not — as a JSON HTTP endpoint over a :class:`SessionPool`
   (``--sessions N`` executes concurrent queries on N pooled sessions;
   ``--writable`` accepts ``POST /insert`` serialized on the primary),
   with :class:`ServeClient` as the matching stdlib client and
   :mod:`~repro.cluster.wire` as the shared workload format
   (``repro query --input queries.jsonl`` speaks it too).

Elasticity (PR 7): ``repro shard-build --replicas K`` clones each shard
K times; a writable session WAL-ships every committed batch to the
clones (:mod:`repro.storage.ship`), read-only sessions rotate reads
across them and the pools retry a failed task on the next replica — a
worker killed mid-batch costs a retry, not the batch. :func:`reshard`
(CLI: ``repro reshard``) rebuilds the deployment at a new shard count
and cuts over atomically via the manifest while queries keep flowing;
:func:`reshard_gc` (CLI: ``repro reshard-gc``) later deletes the
superseded generation's files once flock probes show no live readers.

The high-concurrency front end lives in :mod:`repro.serve` (CLI:
``repro serve --async``): an asyncio event loop with admission control
and request coalescing in front of the same session pool.

Importing this package registers the ``"sharded"`` backend with the
engine registry (``repro`` imports it eagerly, so ``connect(...,
backend="sharded")`` always works).
"""

from repro.cluster.backend import ClusterError, ShardedBackend
from repro.cluster.client import RemoteAnswer, RemoteError, ServeClient
from repro.cluster.partition import (
    PARTITION_POLICIES,
    ShardInfo,
    ShardManifest,
    build_shards,
    load_manifest,
    partition_database,
    shard_of,
    stable_shard_hash,
)
from repro.cluster.pool import POOL_KINDS, ProcessPool, SerialPool, make_pool
from repro.cluster.reshard import reshard, reshard_gc
from repro.cluster.server import QueryServer, SessionPool, serve
from repro.cluster.wire import (
    WireError,
    dump_jsonl,
    load_jsonl,
    pfv_from_json,
    pfv_to_json,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "ClusterError",
    "ShardedBackend",
    "PARTITION_POLICIES",
    "ShardInfo",
    "ShardManifest",
    "build_shards",
    "load_manifest",
    "partition_database",
    "shard_of",
    "stable_shard_hash",
    "POOL_KINDS",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "reshard",
    "reshard_gc",
    "QueryServer",
    "SessionPool",
    "serve",
    "ServeClient",
    "RemoteAnswer",
    "RemoteError",
    "WireError",
    "spec_to_json",
    "spec_from_json",
    "pfv_to_json",
    "pfv_from_json",
    "load_jsonl",
    "dump_jsonl",
]
