"""The ``"sharded"`` backend: fan-out over N shard sessions, exact merge.

Each shard holds a disjoint slice of the database behind its own inner
backend (``tree``, ``disk``, ``seqscan`` — anything registered). A batch
fans out through a :mod:`~repro.cluster.pool` worker pool and the
per-shard answers merge into *globally correct* identification results.

The merge is the interesting part. A shard can only normalise posteriors
over its own objects::

    P_s(v | q) = p(q | v) / Z_s,   Z_s = sum_{w in shard s} p(q | w)

but the paper's identification posterior conditions on the closed world
of the *whole* database, whose Bayes denominator spans every shard::

    P(v | q) = p(q | v) / Z,       Z = sum_s Z_s

Because shards partition the database, ``Z`` is exactly the sum of the
per-shard denominators — including shards that contributed *no*
candidate (their density mass still shrinks everyone else's posterior).
Every shard therefore reports, per query, its total density ``log Z_s``
(recovered from its top match: ``log Z_s = log p(q|v_top) -
log P_s(v_top|q)``, with an MLIQ(q, 1) probe for TIQ batches whose local
answer set is empty), and the merge renormalises the union of shard
candidates against ``log Z = logsumexp_s(log Z_s)``.

Correctness of the candidate sets:

* **MLIQ(k)** — the global top-k by posterior is the top-k by density,
  and each shard returns its local top-k by density, so the union of
  local top-k lists contains the global top-k.
* **TIQ(tau)** — ``Z_s <= Z`` means every local posterior bounds the
  global one from above, so each shard's local TIQ(tau) answer is a
  superset of the global answers living on that shard; the merge then
  applies the exact global filter ``p(q|v)/Z >= tau``.
* **RankQuery** — lowered to MLIQ by the session, which applies the
  ``min_mass`` cut *after* this merge, i.e. against global posteriors.
* **ConsensusTopK / ExpectedRank** — the ranked semantics of
  :mod:`repro.engine.semantics` need, beyond the global posteriors, the
  count and posterior mass of the objects strictly above each answer —
  all of which live inside the global top-k prefix. The dedicated
  ``"ranked"`` payload generalises the log-Z pattern: each shard
  piggybacks per query its candidate posteriors, its total density mass
  ``log Z_s`` *and* the density mass at-or-above its own cutoff (the
  returned candidates' logsumexp), so the coordinator can both compute
  the scores exactly from the merged prefix and *certify* exactness —
  a truncated shard whose cutoff outranks the global cutoff, or whose
  above-cutoff mass exceeds its total, means a malformed reply and
  raises :class:`ClusterError` instead of silently mis-ranking.

**Writable sharded sessions (the write router).** Opened with
``connect(..., backend="sharded", writable=True)``, the fan-out also
accepts ``insert``/``insert_many``/``delete`` (and the engine's
``Insert``/``Delete`` specs through ``execute_many``): every write
routes to its **owning shard** under the deployment's placement policy
— the stable key hash directly, round-robin by the manifest's recorded
*placement epoch*, which keeps counting positions where the original
partitioning stopped. Writes land on per-shard *writable* child
sessions held behind the (serial) pool — the same sessions queries fan
out to, so an interleaved write+query workload is read-your-writes
consistent and the parity property holds against a single writable
tree. Batches group-commit per shard (one WAL fsync per touched shard),
and every commit refreshes the manifest's per-shard object counts and
epoch. The process pool is refused for writable sessions: its workers
open shards in other processes read-only, where they could not see
uncheckpointed writes.

**Replicas & failover.** A v2 manifest may record replica index files
per shard. A *writable* session ships its WAL to them after every
committed batch (:class:`~repro.storage.ship.WALShipper` — replica
apply is the crash-recovery path, so a replica is always a committed
prefix of the primary) and the primary stays sole writer. A *read-only*
session routes each fan-out to a replica (rotating across them;
the primary is the last-resort fallback, since an external writer may
leave the primary's main file at its last checkpoint while replicas got
the shipped tail) and arms the pool's retry hook: a worker that dies or
a replica that will not open re-targets the failed task onto the next
replica of the same shard, so the batch completes with answers
bit-identical to the fault-free run.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import os
import time

from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.core.database import PFVDatabase
from repro.core.gaussian import logsumexp
from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats
from repro.engine.backends import (
    BackendAdapter,
    PlanEstimate,
    as_database,
    create_backend,
    register_backend,
)
from repro.engine.session import Session
from repro.engine.spec import MLIQ, TIQ
from repro.cluster.partition import (
    MANIFEST_SUFFIX,
    ShardInfo,
    ShardManifest,
    load_manifest,
    partition_database,
    shard_of,
)
from repro.cluster.pool import (
    ClusterError,
    SerialPool,
    _shard_label,
    make_pool,
)

__all__ = ["ClusterError", "ShardedBackend", "ShardReply"]

#: Inner backends whose answers provably equal the sequential scan;
#: a sharded deployment over them stays exact (third-party inners are
#: probed for the capability instead).
_EXACT_INNER = {"tree", "disk", "seqscan"}


# ---------------------------------------------------------------------------
# Worker-side pieces (module level: pickled by reference into pool workers)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ShardReply:
    """One shard's answer to one fanned-out payload.

    ``per_query`` holds ``(matches, log_total)`` pairs in query order:
    the shard-local answer list (posteriors still shard-normalised) and
    the shard's log Bayes denominator ``log Z_s`` for that query
    (``-inf`` for an empty shard or fully underflowed densities).

    ``aux`` is ``None`` except for ``"ranked"`` payloads, where it
    holds one ``(n_s, log_above)`` pair per query: the shard's object
    count and the log density mass at-or-above the shard's own cutoff
    (the returned candidates' logsumexp) — the per-shard sufficient
    statistics the coordinator uses to certify that global consensus /
    expected-rank scores are exact.
    """

    per_query: list[tuple[list[Match], float]]
    stats: QueryStats
    aux: list[tuple[int, float]] | None = None


class _ShardOpener:
    """Picklable ``opener(key) -> Session`` over the shard sources.

    Sources are per-shard index file paths (manifest mode) or per-shard
    :class:`PFVDatabase` slices (in-memory mode). Workers call this
    lazily, so each process opens only the shards it actually serves and
    keeps their page buffers local. The task key is an ``int`` shard id
    (the primary) or ``(shard_id, replica_idx)`` with ``replica_idx >=
    1`` naming one of the shard's replica files from
    ``replica_sources`` — replicas always open read-only (the primary is
    sole writer).
    """

    def __init__(
        self,
        sources: list,
        inner: str,
        inner_options: dict,
        writable: bool = False,
        replica_sources: list | None = None,
    ) -> None:
        self.sources = sources
        self.inner = inner
        self.inner_options = dict(inner_options)
        self.writable = writable
        self.replica_sources = replica_sources

    def __call__(self, key) -> Session:
        """Open one task key's session (writable only for a primary key
        of a writable deployment)."""
        if isinstance(key, tuple):
            shard_id, replica_idx = key
        else:
            shard_id, replica_idx = key, 0
        if replica_idx == 0:
            source = self.sources[shard_id]
            writable = self.writable
        else:
            replicas = (
                self.replica_sources[shard_id]
                if self.replica_sources is not None
                else []
            )
            source = (
                replicas[replica_idx - 1]
                if replica_idx - 1 < len(replicas)
                else None
            )
            writable = False
        if source is None:
            raise ClusterError(
                f"shard {_shard_label(key)} is empty and has no index "
                "to open"
            )
        try:
            backend = create_backend(
                self.inner,
                source,
                writable=writable,
                options=dict(self.inner_options),
            )
        except ClusterError:
            raise
        except Exception as exc:
            raise ClusterError(
                f"cannot open shard {_shard_label(key)} "
                f"({source if isinstance(source, str) else 'in-memory'}) "
                f"with inner backend {self.inner!r}: {exc}"
            ) from exc
        return Session(backend)


def _shard_log_total(matches: list[Match]) -> float:
    """Recover ``log Z_s`` from a shard's answer list.

    The top match has the shard's maximal posterior (``>= 1/n_s``), so
    ``log p(q|v) - log P_s(v|q)`` reproduces the local log-sum-exp
    denominator at full float precision. Empty lists and underflowed
    densities yield ``-inf`` — a shard contributing no mass.
    """
    if not matches:
        return -math.inf
    top = max(matches, key=lambda m: m.probability)
    if top.probability <= 0.0 or math.isinf(top.log_density):
        return -math.inf
    return top.log_density - math.log(top.probability)


def _run_shard_payload(session: Session, payload) -> ShardReply:
    """Execute one fanned-out payload on an open shard session.

    Runs in pool workers (and inline for the serial pool). Payloads are
    ``("mliq", [(q, k), ...])``, ``("tiq", [(q, tau, eps), ...])`` or
    ``("ranked", [(q, k), ...])``; TIQ payloads piggyback an
    ``MLIQ(q, 1)`` denominator probe per query in the same batch, so a
    shard whose threshold answer is empty still reports its total
    density mass, and ranked payloads (consensus / expected-rank)
    piggyback the per-shard sufficient statistics described on
    :class:`ShardReply`.
    """
    kind, items = payload
    if kind == "mliq":
        specs = [MLIQ(q, k) for q, k in items]
        rs = session.execute_many(specs)
        per = [(list(matches), _shard_log_total(matches)) for matches in rs]
        return ShardReply(per, rs.stats)
    if kind == "ranked":
        specs = [MLIQ(q, k) for q, k in items]
        rs = session.execute_many(specs)
        per, aux = [], []
        n_s = len(session)
        for matches in rs:
            matches = list(matches)
            per.append((matches, _shard_log_total(matches)))
            log_above = (
                logsumexp([m.log_density for m in matches])
                if matches
                else -math.inf
            )
            aux.append((n_s, log_above))
        return ShardReply(per, rs.stats, aux)
    if kind == "tiq":
        tiqs = [TIQ(q, tau, eps) for q, tau, eps in items]
        probes = [MLIQ(q, 1) for q, _, _ in items]
        rs = session.execute_many([*tiqs, *probes])
        per = []
        for i in range(len(items)):
            matches = list(rs[i])
            probe = rs[len(items) + i]
            per.append((matches, _shard_log_total(probe)))
        return ShardReply(per, rs.stats)
    raise ClusterError(f"unknown shard payload kind {kind!r}")


# ---------------------------------------------------------------------------
# The fan-out backend
# ---------------------------------------------------------------------------


class ShardedBackend(BackendAdapter):
    """Fan a batch out to N shard sessions and merge globally.

    Connect over a shard manifest (built by ``repro shard-build`` /
    :func:`~repro.cluster.partition.build_shards`)::

        repro.connect("ds1.shards.json", backend="sharded",
                      pool="process", workers=4)

    or shard an in-memory source on the fly (the parity-testing path)::

        repro.connect(db, backend="sharded", shards=3, inner="tree")

    Options: ``inner`` (inner backend name; default ``"disk"`` for a
    manifest, ``"tree"`` for in-memory sources), ``pool`` (``"serial"``
    or ``"process"``), ``workers``, ``shards`` + ``policy`` (in-memory
    partitioning), ``inner_options`` (dict forwarded to every shard's
    backend factory).

    With ``connect(..., writable=True)`` the deployment also routes
    writes: inserts land on the shard the placement policy owns them to
    (round-robin continues from the manifest's recorded placement
    epoch), batches group-commit per shard, and every commit refreshes
    the manifest counts. Writable sessions hold writable child sessions
    behind a *serial* pool so queries read their own writes; the
    process pool is refused.
    """

    def __init__(
        self,
        sources: list,
        counts: list[int],
        *,
        inner: str,
        pool_kind: str,
        workers: int | None,
        inner_options: dict,
        manifest: ShardManifest | None = None,
        writable: bool = False,
        policy: str | None = None,
        placement_epoch: int | None = None,
        replicas: list | None = None,
        runner=None,
    ) -> None:
        if len(sources) != len(counts):
            raise ValueError("one object count per shard source required")
        if writable and pool_kind != "serial":
            raise TypeError(
                "writable sharded sessions require pool='serial': process "
                "pool workers open shards read-only in other processes and "
                "would not see uncheckpointed writes"
            )
        self.inner = inner
        self.manifest = manifest
        self._writable = writable
        #: Per-shard replica index paths (empty lists without replicas).
        #: Read-only sessions route fan-outs to them; writable sessions
        #: keep them current by WAL shipping after every commit.
        self._replicas: list[list[str]] = [
            list(r) for r in (replicas or [])
        ]
        while len(self._replicas) < len(sources):
            self._replicas.append([])
        self._shippers: dict[int, object] = {}
        self._rotation = 0
        #: The worker-side payload runner — a test can substitute a
        #: fault-injecting wrapper (``storage.fault.killing_runner``).
        self._runner = runner if runner is not None else _run_shard_payload
        #: Placement policy writes route by (from the manifest, or the
        #: in-memory partitioning choice; None on read-only sessions
        #: over pre-sharded sources whose policy is unknown).
        self.policy = policy
        #: Positions ever placed; round-robin routing continues here.
        self._placement_epoch = (
            placement_epoch if placement_epoch is not None else sum(counts)
        )
        self._counts = list(counts)
        self._sources = list(sources)
        self._opener = _ShardOpener(
            self._sources,
            inner,
            inner_options,
            writable=writable,
            replica_sources=self._replicas,
        )
        # With replicas on a read-only session, arm the pool's retry
        # hook: enough attempts to visit every replica plus the primary
        # (the last-resort fallback), re-targeted by _failover_target.
        max_replicas = max((len(r) for r in self._replicas), default=0)
        use_failover = max_replicas > 0 and not writable
        self._pool = make_pool(
            pool_kind,
            self._opener,
            self._runner,
            n_shards=len(sources),
            workers=workers,
            attempts=max_replicas + 2 if use_failover else 1,
            failover=self._failover_target if use_failover else None,
        )
        # Spawn pool workers now, while the constructing thread (the
        # connect() caller) is the only one running — forking later
        # from an HTTP handler thread risks inheriting held locks.
        warm = getattr(self._pool, "warm", None)
        if warm is not None:
            warm()
        if writable:
            # Open every shard eagerly and trust the *indexes*, not the
            # manifest: a crashed writer leaves manifest counts stale
            # while the shard WALs replay the truth on open. The epoch
            # can be stale the same way; it never goes backwards (it
            # only balances round-robin placement, it cannot affect
            # answer correctness).
            for i, source in enumerate(self._sources):
                if source is not None:
                    self._counts[i] = len(self._pool.session(i))
            self._placement_epoch = max(
                self._placement_epoch, sum(self._counts)
            )
        #: Shards that hold at least one object; empty shards never get
        #: tasks (an empty shard's denominator contribution is zero).
        self._active = [i for i, c in enumerate(self._counts) if c > 0]
        self._meta_sessions: dict[int, Session] = {}
        self._pending_provenance: list[tuple[str, QueryStats]] = []
        self.name = f"sharded({inner}x{len(sources)})"
        caps = {"mliq", "tiq", "batch"}
        if self._inner_is_exact():
            caps.add("exact")
        if writable:
            caps.add("writable")
        self.capabilities = frozenset(caps)
        self._closed = False

    # -- shard plumbing ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Shards in the deployment layout (empty ones included)."""
        return len(self._sources)

    def _inner_is_exact(self) -> bool:
        if self.inner in _EXACT_INNER:
            return True
        if self.inner == "xtree":
            return False
        if not self._active:  # empty deployment answers exactly (nothing)
            return True
        probe = self._meta_session(self._active[0])
        return "exact" in probe.capabilities

    def _meta_session(self, shard_id: int) -> Session:
        """A parent-side session for metadata (estimates, database
        materialisation). The serial pool shares its execution sessions;
        the process pool's sessions live in workers, so the parent opens
        its own read-only view lazily."""
        if isinstance(self._pool, SerialPool):
            return self._pool.session(shard_id)
        session = self._meta_sessions.get(shard_id)
        if session is None:
            session = self._opener(shard_id)
            self._meta_sessions[shard_id] = session
        return session

    def _task_key(self, shard_id: int):
        """The pool task key a fan-out uses for one shard.

        Writable sessions (and shards without replicas) read the
        primary. Read-only sessions with replicas rotate across them —
        an external writer may leave the primary's main file at its
        last checkpoint while the replicas carry the shipped WAL tail,
        so replicas are the *fresher* read targets, not just spares.
        """
        replicas = self._replicas[shard_id]
        if self._writable or not replicas:
            return shard_id
        return (shard_id, 1 + self._rotation % len(replicas))

    def _failover_target(self, key, attempt: int):
        """Pool retry hook: the next replica of the failed task's shard
        (cycling through every replica, then the primary)."""
        if isinstance(key, tuple):
            shard_id, replica_idx = key
        else:
            shard_id, replica_idx = key, 0
        n = len(self._replicas[shard_id])
        if n == 0:
            return None
        order = [*range(1, n + 1), 0]  # primary is the last resort
        position = order.index(replica_idx) if replica_idx in order else -1
        return (shard_id, order[(position + 1) % len(order)])

    def _shipper(self, shard_id: int):
        """The shard's lazily built WAL shipper (None without replicas).

        First construction fully resyncs the replicas: a predecessor
        writer may have crashed after committing but before shipping,
        and the resync re-establishes the replica-is-a-committed-prefix
        invariant from the recovered primary.
        """
        if not self._replicas[shard_id] or self._sources[shard_id] is None:
            return None
        shipper = self._shippers.get(shard_id)
        if shipper is None:
            from repro.storage.ship import WALShipper

            shipper = WALShipper(
                self._sources[shard_id], self._replicas[shard_id]
            )
            self._shippers[shard_id] = shipper
        return shipper

    def _ship_replicas(self, shard_ids) -> None:
        """Forward freshly committed WAL bytes to the shards' replicas."""
        for shard_id in shard_ids:
            shipper = self._shipper(shard_id)
            if shipper is not None:
                shipper.ship()

    def _fan_out(self, payload) -> list[tuple[int, ShardReply]]:
        tasks = [(self._task_key(i), payload) for i in self._active]
        self._rotation += 1
        active_trace = _obs_trace.current_trace()
        started = time.perf_counter()
        if active_trace is not None:
            with active_trace.span(
                "cluster.fanout", count=len(tasks)
            ) as fanout_span:
                replies = self._pool.run(tasks)
                # Per-shard spans are synthesized on the coordinator
                # from the replies (a process pool cannot carry live
                # spans across its boundary); a serial pool
                # additionally nests the shard sessions' own spans
                # here, since it runs in the calling thread.
                done = active_trace.now()
                for shard_id, reply in zip(self._active, replies):
                    active_trace.add(
                        "shard",
                        start=fanout_span.start,
                        dur=done - fanout_span.start,
                        shard=f"{shard_id:02d}",
                        pages=reply.stats.pages_accessed,
                    )
        else:
            replies = self._pool.run(tasks)
        elapsed = time.perf_counter() - started
        _obs_metrics.counter(
            "repro_cluster_fanouts_total",
            "Batches fanned out across the active shards.",
        ).inc()
        _obs_metrics.histogram(
            "repro_cluster_fanout_seconds",
            "Wall time of one whole-cluster fan-out (all shards).",
        ).observe(elapsed)
        for shard_id, reply in zip(self._active, replies):
            self._pending_provenance.append(
                (f"shard-{shard_id:02d}:{self.inner}", reply.stats)
            )
        return list(zip(self._active, replies))

    def take_provenance(self) -> tuple[tuple[str, QueryStats], ...]:
        """Per-shard (name, stats) pairs accumulated since the last take
        — the session attaches them to the ResultSet it returns."""
        taken = tuple(self._pending_provenance)
        self._pending_provenance = []
        return taken

    # -- query execution -----------------------------------------------------

    def _mliq_batch(
        self, queries: list[MLIQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        payload = ("mliq", [(query.q, query.k) for query in queries])
        shard_replies = self._fan_out(payload)
        total = QueryStats()
        for _, reply in shard_replies:
            total.merge(reply.stats)
        results: list[list[Match]] = []
        n = self.count()
        for j, query in enumerate(queries):
            merged = self._merge_candidates(shard_replies, j, n)
            results.append(merged[: query.k])
        return results, total

    def _tiq_batch(
        self, specs: list[TIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        payload = ("tiq", [(s.q, s.tau, s.eps) for s in specs])
        shard_replies = self._fan_out(payload)
        total = QueryStats()
        for _, reply in shard_replies:
            total.merge(reply.stats)
        results: list[list[Match]] = []
        n = self.count()
        for j, spec in enumerate(specs):
            merged = self._merge_candidates(shard_replies, j, n)
            results.append(
                [m for m in merged if m.probability >= spec.tau]
            )
        return results, total

    def run_ranked(
        self, specs
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer ``ConsensusTopK``/``ExpectedRank`` specs via the
        dedicated ``"ranked"`` fan-out payload.

        Each shard piggybacks the per-shard sufficient statistics the
        semantics need (candidate posteriors + ``log Z_s`` + its
        at-or-above-cutoff candidate mass); the coordinator merges to
        exact global posteriors, certifies the merge with
        :meth:`_check_ranked_stats`, and rescores the global prefix
        with the same pure functions the single-tree path uses — so the
        sharded answers are parity-identical to a single tree's.
        """
        self._require("mliq")
        from repro.engine.semantics import score_ranked

        results: list[list[Match]] = [[] for _ in specs]
        if self.count() == 0:
            return results, QueryStats()
        live = [(i, s) for i, s in enumerate(specs) if s.k > 0]
        if not live:
            return results, QueryStats()
        payload = ("ranked", [(s.q, s.k) for _, s in live])
        shard_replies = self._fan_out(payload)
        total = QueryStats()
        for _, reply in shard_replies:
            total.merge(reply.stats)
        n = self.count()
        for j, (i, spec) in enumerate(live):
            merged = self._merge_candidates(shard_replies, j, n)
            prefix = merged[: spec.k]
            self._check_ranked_stats(shard_replies, j, prefix)
            results[i] = score_ranked(spec, prefix)
        return results, total

    @staticmethod
    def _check_ranked_stats(
        shard_replies: list[tuple[int, ShardReply]],
        j: int,
        prefix: list[Match],
    ) -> None:
        """Certify query ``j``'s merge from the piggybacked statistics.

        Two invariants must hold for the global prefix to be exact:
        a shard's at-or-above-cutoff candidate mass cannot exceed its
        total density mass (``log_above <= log Z_s``), and a *truncated*
        shard's local cutoff cannot outrank the global cutoff while the
        shard fills the whole prefix by itself — that would mean an
        unreturned object could still displace a global answer, i.e.
        the containment lemma was violated. Either failure indicates a
        malformed shard reply (a faulty runner, a replica serving a
        different population) and raises :class:`ClusterError` rather
        than silently mis-ranking.
        """
        for shard_id, reply in shard_replies:
            if reply.aux is None:
                raise ClusterError(
                    f"shard {shard_id} answered a ranked payload without "
                    "its sufficient statistics"
                )
            matches, log_total = reply.per_query[j]
            n_s, log_above = reply.aux[j]
            if log_above > log_total + 1e-6:
                raise ClusterError(
                    f"shard {shard_id} reports more at-cutoff candidate "
                    f"mass ({log_above:.6f}) than total density mass "
                    f"({log_total:.6f}) over {n_s} object(s)"
                )
            if not prefix or not matches or len(matches) >= n_s:
                continue  # nothing truncated away on this shard
            if (
                len(matches) >= len(prefix)
                and matches[-1].log_density > prefix[-1].log_density
            ):
                raise ClusterError(
                    f"shard {shard_id}'s local cutoff outranks the "
                    "global cutoff with candidates truncated away — "
                    "the merged ranking would not be exact"
                )

    @staticmethod
    def _merge_candidates(
        shard_replies: list[tuple[int, ShardReply]], j: int, total_n: int
    ) -> list[Match]:
        """Merge query ``j``'s shard answers into globally normalised
        matches, ordered by descending global posterior (ties broken by
        shard id then local rank, so merges are deterministic)."""
        log_z = logsumexp(
            [reply.per_query[j][1] for _, reply in shard_replies]
        )
        pool: list[tuple[float, int, int, Match]] = []
        for shard_id, reply in shard_replies:
            matches, _ = reply.per_query[j]
            for rank, m in enumerate(matches):
                pool.append((-m.log_density, shard_id, rank, m))
        pool.sort(key=lambda item: item[:3])
        merged: list[Match] = []
        for neg_ld, _, _, m in pool:
            ld = -neg_ld
            if math.isfinite(log_z):
                probability = (
                    0.0 if math.isinf(ld) else min(1.0, math.exp(ld - log_z))
                )
            else:
                # Every shard's denominator underflowed: mirror the
                # scan's "maximally indifferent" uniform fallback.
                probability = 1.0 / max(1, total_n)
            merged.append(Match(m.vector, ld, probability))
        return merged

    # -- the write router ----------------------------------------------------

    def _create_shard_index(self, shard_id: int, dims: int) -> None:
        """Materialize the index file of a shard that was empty at build
        time, the moment the first write routes to it.

        An empty shard has no dimensionality of its own (which is why
        ``build_shards`` records ``path=None``); the first routed vector
        supplies it. The file is named exactly as ``build_shards`` would
        have named it (``<prefix>.shard-NN.gauss``, next to the
        manifest, default page size) and the manifest entry gains the
        path, so later sessions open the shard like any other.
        """
        from repro.cluster.partition import MANIFEST_SUFFIX, ShardInfo
        from repro.core.joint import SigmaRule
        from repro.gausstree.tree import GaussTree

        manifest = self.manifest
        assert manifest is not None and manifest.source_path is not None
        base = os.path.abspath(manifest.source_path)
        prefix = (
            base[: -len(MANIFEST_SUFFIX)]
            if base.endswith(MANIFEST_SUFFIX)
            else os.path.splitext(base)[0]
        )
        shard_path = f"{prefix}.shard-{shard_id:02d}.gauss"
        tree = GaussTree(
            dims=dims, sigma_rule=SigmaRule(manifest.sigma_rule)
        )
        tree.save(shard_path)
        # The opener shares this list, so its next call opens the file.
        self._sources[shard_id] = shard_path
        shards = list(manifest.shards)
        shards[shard_id] = ShardInfo(
            path=os.path.basename(shard_path), objects=0
        )
        self.manifest = dataclasses.replace(manifest, shards=tuple(shards))

    def _writable_session(
        self, shard_id: int, dims: int | None = None
    ) -> Session:
        """The writable child session owning one shard (serial pool).

        ``dims`` is the dimensionality of the write being routed; a
        manifest-backed shard with no index file yet (empty at build
        time) lazily creates one from it instead of rejecting the write.
        """
        if self._sources[shard_id] is None:
            if (
                dims is not None
                and self.manifest is not None
                and self.manifest.source_path is not None
            ):
                self._create_shard_index(shard_id, dims)
            else:
                raise ClusterError(
                    f"cannot route a write to shard {shard_id}: the "
                    "deployment records no index file for it (the shard "
                    "was empty at build time) and no manifest path is "
                    "available to create one next to"
                )
        session = self._pool.session(shard_id)  # serial pool, enforced
        if not session.writable:
            raise ClusterError(
                f"shard {shard_id}'s inner backend {self.inner!r} is not "
                "writable; writable sharded sessions need inner='tree' "
                "or inner='disk'"
            )
        return session

    def _note_count_change(self, shard_id: int, delta: int) -> None:
        """Track a shard's object count and its active/empty status."""
        before = self._counts[shard_id]
        self._counts[shard_id] = before + delta
        if before == 0 and self._counts[shard_id] > 0:
            bisect.insort(self._active, shard_id)
        elif before > 0 and self._counts[shard_id] == 0:
            self._active.remove(shard_id)

    def insert(self, v: PFV) -> None:
        """Insert one pfv on its owning shard (placement-routed)."""
        self.insert_many([v])

    def insert_many(self, vectors) -> int:
        """Route a batch to its owning shards; each shard's slice is one
        group-commit transaction on disk-backed shards.

        Placement follows the deployment's policy: the stable key hash
        directly, round-robin by the persisted placement epoch (each
        insert consumes one position, continuing the sequence the
        original partitioning started). The manifest's counts and epoch
        refresh after the batch commits.
        """
        self._require("writable")
        batch = list(vectors)
        by_shard: dict[int, list[PFV]] = {}
        position = self._placement_epoch
        for v in batch:
            shard_id = shard_of(v, position, self.n_shards, self.policy)
            position += 1
            by_shard.setdefault(shard_id, []).append(v)
        # Open (and vet) every target shard *before* committing any
        # slice: routing failures — a pathless shard, a non-writable
        # inner — must reject the batch whole, not after an earlier
        # shard already committed part of it. The epoch advances only
        # once routing is validated.
        sessions = {
            shard_id: self._writable_session(
                shard_id, dims=by_shard[shard_id][0].dims
            )
            for shard_id in sorted(by_shard)
        }
        self._placement_epoch = position
        committed = 0
        try:
            for shard_id, session in sessions.items():
                session.insert_many(by_shard[shard_id])
                self._note_count_change(shard_id, len(by_shard[shard_id]))
                committed += len(by_shard[shard_id])
        except Exception as exc:
            # A mid-batch IO failure is partial by nature (per-shard
            # WALs are independent); persist what landed and say so.
            self._ship_replicas(sessions)
            self._refresh_manifest()
            raise ClusterError(
                f"insert batch failed after {committed} of {len(batch)} "
                f"vectors committed (per-shard transactions are "
                f"independent): {exc}"
            ) from exc
        # Replicas catch up as soon as the shard WALs hold the commits,
        # so replica-routed readers (server sessions, process pools)
        # observe this batch without waiting for a checkpoint.
        self._ship_replicas(sessions)
        self._refresh_manifest()
        return len(batch)

    def delete(self, v: PFV) -> bool:
        """Delete one pfv; returns whether it was found on any shard.

        Hash placement names the owning shard outright (re-observations
        share the key, the key fixes the shard); round-robin placement
        depends on historical insert order, so the delete probes every
        non-empty shard until one reports a hit.

        An absent key is a clean not-found: the probes return ``False``
        without touching any WAL (a tree-level miss never commits), a
        shard with no index file yet is skipped instead of failing the
        routing (a stale manifest can record a positive count for a
        never-materialised shard), and neither the manifest nor the
        replicas are refreshed.
        """
        self._require("writable")
        if self.policy == "hash":
            shard_id = shard_of(v, 0, self.n_shards, "hash")
            candidates = [shard_id] if self._counts[shard_id] > 0 else []
        else:
            candidates = list(self._active)
        for shard_id in candidates:
            if self._sources[shard_id] is None:
                # Nothing was ever written here; routing a delete
                # through _writable_session would raise ClusterError
                # for the missing index file.
                continue
            if self._writable_session(shard_id).delete(v):
                self._note_count_change(shard_id, -1)
                self._ship_replicas([shard_id])
                self._refresh_manifest()
                return True
        return False

    def flush(self) -> None:
        """Checkpoint every writable shard session and refresh the
        manifest (no-op on read-only sessions).

        Replicas ship *before* each shard's checkpoint (the checkpoint
        resets the primary WAL, destroying the unshipped tail) and are
        marked current after it (``note_reset`` — the replicas already
        hold everything the checkpoint folded in, no resync needed).
        """
        if not self._writable:
            return
        for shard_id, source in enumerate(self._sources):
            if source is not None:
                shipper = self._shipper(shard_id)
                if shipper is not None:
                    shipper.ship()
                self._pool.session(shard_id).flush()
                if shipper is not None:
                    shipper.note_reset()
        self._refresh_manifest()

    def _refresh_manifest(self) -> None:
        """Persist the current per-shard counts and placement epoch back
        into the ``.shards.json`` manifest (manifest-backed deployments
        only; in-memory partitionings have nothing to refresh)."""
        if (
            not self._writable
            or self.manifest is None
            or self.manifest.source_path is None
        ):
            return
        shards = tuple(
            ShardInfo(
                path=info.path,
                objects=self._counts[i],
                replicas=info.replicas,
            )
            for i, info in enumerate(self.manifest.shards)
        )
        manifest = dataclasses.replace(
            self.manifest,
            shards=shards,
            placement_epoch=self._placement_epoch,
        )
        manifest.save(self.manifest.source_path)
        self.manifest = manifest

    # -- metadata ------------------------------------------------------------

    def count(self) -> int:
        """Objects across all shards."""
        return sum(self._counts)

    def estimate(self, kind: str, specs) -> PlanEstimate:
        """Sum shard page estimates; price latency via the pool's
        fan-out rule (max-over-shards parallel, sum serial)."""
        if not self._active or not specs:
            return PlanEstimate(0, 0.0, "empty deployment: no shards hit")
        pages = 0
        cpu_seconds = 0.0
        branch_seconds: list[float] = []
        cost_model = None
        for shard_id in self._active:
            session = self._meta_session(shard_id)
            est = session._backend.estimate(kind, specs)
            pages += est.pages
            cpu_seconds += est.cpu_seconds
            branch_seconds.append(est.io_seconds)
            store = getattr(session._backend, "store", None)
            if cost_model is None and store is not None:
                cost_model = store.cost_model
        if cost_model is None:
            from repro.storage.costmodel import DiskCostModel

            cost_model = DiskCostModel()
        io_seconds = cost_model.fan_out_seconds(
            branch_seconds, parallel=self._pool.parallel
        )
        how = (
            "max over shards (parallel pool)"
            if self._pool.parallel
            else "sum over shards (serial fan-out)"
        )
        return PlanEstimate(
            pages,
            io_seconds,
            f"fan-out to {len(self._active)} shard(s); latency priced as "
            f"{how} plus per-shard dispatch",
            cpu_seconds,
        )

    def plan_lowering(self, kinds) -> tuple[str, ...]:
        """Extra lowering lines for ``Session.explain`` (planner hook)."""
        steps = [
            f"fan-out: {len(self._active)} of {self.n_shards} shard(s) "
            f"via {self._pool.kind} pool, inner backend {self.inner!r}",
            "merge: renormalise posteriors against the global Bayes "
            "denominator (logsumexp of per-shard totals)",
        ]
        if "tiq" in kinds:
            steps.append(
                "tiq: per-shard TIQ(tau) superset + MLIQ(q, 1) "
                "denominator probe per query"
            )
        if "consensus" in kinds or "erank" in kinds:
            steps.append(
                "ranked: shards piggyback sufficient statistics "
                "(log Z_s + at-cutoff candidate mass) so global "
                "consensus/expected-rank scores are exact"
            )
        return tuple(steps)

    def database(self) -> PFVDatabase:
        """Materialise every shard's objects as one database."""
        merged: PFVDatabase | None = None
        for shard_id in self._active:
            shard_db = self._meta_session(shard_id).database()
            if merged is None:
                merged = PFVDatabase(sigma_rule=shard_db.sigma_rule)
            merged.extend(shard_db)
        return merged if merged is not None else PFVDatabase()

    def cold_start(self) -> None:
        """Drop every open shard session's page cache."""
        if isinstance(self._pool, SerialPool):
            for shard_id in self._active:
                self._pool.session(shard_id).cold_start()
        for session in self._meta_sessions.values():
            session.cold_start()

    def close(self) -> None:
        """Release every shard session (writable ones checkpoint) and
        persist the final manifest counts."""
        if self._closed:
            return
        self._closed = True
        self._refresh_manifest()
        self._pool.close()
        sessions, self._meta_sessions = self._meta_sessions, {}
        for session in sessions.values():
            session.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedBackend {self.name!r} n={self.count()} "
            f"pool={self._pool.kind}>"
        )


# ---------------------------------------------------------------------------
# Factory + registration
# ---------------------------------------------------------------------------


def _looks_like_manifest(source) -> bool:
    return isinstance(source, (str, os.PathLike)) and os.fspath(
        source
    ).endswith((MANIFEST_SUFFIX, ".json"))


def _make_sharded(source, *, writable: bool, options: dict) -> ShardedBackend:
    """Factory behind ``connect(..., backend="sharded")``: resolves the
    manifest / in-memory partitioning, the inner backend and the pool,
    and (``writable=True``) arms the write router."""
    inner = options.pop("inner", None)
    policy = options.pop("policy", None)
    pool_kind = options.pop("pool", "serial")
    workers = options.pop("workers", None)
    inner_options = dict(options.pop("inner_options", None) or {})
    shards_requested = options.pop("shards", None)
    if options:
        raise TypeError(
            f"the 'sharded' backend does not understand options "
            f"{sorted(options)}"
        )
    if writable and pool_kind == "process":
        raise TypeError(
            "writable sharded sessions require pool='serial' (process "
            "pool workers open shards read-only in other processes and "
            "cannot see uncheckpointed writes)"
        )

    manifest: ShardManifest | None = None
    if isinstance(source, ShardManifest):
        manifest = source
    elif _looks_like_manifest(source):
        manifest = load_manifest(source)

    if manifest is not None:
        # The manifest *is* the partitioning; shards=/policy= would be
        # silently ignored, so make the contradiction loud.
        if shards_requested is not None or policy is not None:
            raise TypeError(
                "shards=/policy= describe in-memory partitioning and "
                "conflict with a manifest source (the manifest fixes "
                f"{manifest.n_shards} shards, policy "
                f"{manifest.policy!r}); re-run `repro shard-build` to "
                "re-partition"
            )
        inner = inner or "disk"
        sources = manifest.shard_paths()
        missing = [
            p
            for p, info in zip(sources, manifest.shards)
            if info.objects > 0 and (p is None or not os.path.exists(p))
        ]
        if missing:
            raise ClusterError(
                "shard manifest references missing index file(s): "
                + ", ".join(str(p) for p in missing)
                + " — re-run `repro shard-build` or fix the manifest"
            )
        counts = [info.objects for info in manifest.shards]
        route_policy = manifest.policy
        placement_epoch = manifest.effective_placement_epoch
        replicas = manifest.replica_paths()
    else:
        if shards_requested is None:
            raise TypeError(
                "sharding an in-memory source needs shards=N "
                "(or connect to a `repro shard-build` manifest)"
            )
        if shards_requested < 1:
            raise ValueError(
                f"shards must be >= 1, got {shards_requested}"
            )
        inner = inner or "tree"
        if inner == "disk":
            raise TypeError(
                "inner backend 'disk' needs shard index files; build them "
                "with `repro shard-build` and connect to the manifest"
            )
        db = as_database(source)
        route_policy = policy or "hash"
        parts = partition_database(db, shards_requested, route_policy)
        sources = list(parts)
        counts = [len(p) for p in parts]
        placement_epoch = len(db)
        replicas = None  # in-memory shards have no replica files

    # Tighten the Gauss-tree's posterior tolerance below the merge's
    # cross-shard agreement budget unless the caller chose their own.
    if inner in ("tree", "disk"):
        inner_options.setdefault("mliq_tolerance", 1e-12)

    return ShardedBackend(
        sources,
        counts,
        inner=inner,
        pool_kind=pool_kind,
        workers=workers,
        inner_options=inner_options,
        manifest=manifest,
        writable=writable,
        policy=route_policy,
        placement_epoch=placement_epoch,
        replicas=replicas,
    )


register_backend(
    "sharded",
    _make_sharded,
    "fan-out over N shard sessions (manifest or shards=N) with exact "
    "global posterior renormalisation; serial or process pool; "
    "writable=True adds placement-routed writes",
)
