"""Deterministic shard assignment and per-shard index construction.

A sharded deployment splits one :class:`~repro.core.database.PFVDatabase`
into ``n_shards`` disjoint shard databases, bulk-loads a Gauss-tree per
shard and records the layout in a *manifest* file
(``<name>.shards.json``). The manifest is the connect() source of the
``"sharded"`` backend: it names the policy, the shard index files and
their object counts, so a serving process (or a pool worker) can open
exactly the shards it needs.

Two placement policies:

``"hash"``
    Stable content hash of the object's key (BLAKE2, *never* Python's
    randomised ``hash()``): the same object lands on the same shard in
    every process, every run, regardless of ``PYTHONHASHSEED``.
    Re-observations of one real-world object share a key and therefore a
    shard.
``"round-robin"``
    Position modulo ``n_shards``: perfectly balanced shard sizes, at the
    price of placement depending on insertion order. So that *later*
    writes keep routing deterministically, the manifest records a
    **placement epoch** — the number of objects ever placed — and a
    writable sharded session continues the sequence from there
    (persisting the advanced epoch on every commit).

Both policies assign every object to exactly one shard — the global
Bayes denominator is then the sum of the per-shard denominators, which
is what makes the distributed posterior merge of
:mod:`repro.cluster.backend` exact.

**Replication & generations (manifest v2).** Each shard may record a
list of replica index files (kept live by WAL shipping,
:mod:`repro.storage.ship`); the sharded backend routes reads to them
and fails over when a worker dies, the primary stays sole writer. A
``generation`` counter names the current shard-file family — online
re-sharding (:mod:`repro.cluster.reshard`) bulk-loads generation
``g+1`` files beside generation ``g`` and cuts over with one atomic
manifest replace, so in-flight queries keep reading the old generation.
Version-1 manifests (no replicas, generation 0) still load unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule
from repro.core.pfv import PFV

__all__ = [
    "PARTITION_POLICIES",
    "ShardInfo",
    "ShardManifest",
    "stable_shard_hash",
    "shard_of",
    "partition_database",
    "build_shards",
    "load_manifest",
]

PARTITION_POLICIES = ("hash", "round-robin")

MANIFEST_SUFFIX = ".shards.json"
_MANIFEST_VERSION = 2
#: Versions this build can read. v1 = no replicas/generation (PR 4/5);
#: v2 adds per-shard ``replicas`` lists and the manifest ``generation``.
_READABLE_VERSIONS = (1, 2)


def stable_shard_hash(v: PFV) -> int:
    """Process-stable 64-bit content hash of a pfv's identity.

    Hashes the ``repr`` of the key (ints, strings, tuples — anything
    with a stable repr) through BLAKE2b; anonymous vectors (``key is
    None``) fall back to their mu/sigma bytes so they still place
    deterministically.
    """
    if v.key is not None:
        payload = repr(v.key).encode("utf-8", "backslashreplace")
    else:
        payload = v.mu.tobytes() + v.sigma.tobytes()
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


def shard_of(v: PFV, position: int, n_shards: int, policy: str) -> int:
    """The shard index (``0 .. n_shards-1``) an object belongs to."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if policy == "hash":
        return stable_shard_hash(v) % n_shards
    if policy == "round-robin":
        return position % n_shards
    raise ValueError(
        f"unknown partition policy {policy!r}; "
        f"choose from {PARTITION_POLICIES}"
    )


def partition_database(
    db: PFVDatabase, n_shards: int, policy: str = "hash"
) -> list[PFVDatabase]:
    """Split ``db`` into ``n_shards`` disjoint shard databases.

    Every object lands in exactly one shard; shard databases keep the
    source's sigma rule so probabilities stay identical. Shards may be
    empty (e.g. more shards than objects) — the sharded backend treats
    an empty shard as contributing zero density mass.
    """
    shards: list[PFVDatabase] = [
        PFVDatabase(sigma_rule=db.sigma_rule) for _ in range(n_shards)
    ]
    for position, v in enumerate(db):
        shards[shard_of(v, position, n_shards, policy)].add(v)
    return shards


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardInfo:
    """One shard of a manifest: its index file and object count.

    ``path`` is ``None`` for an empty shard (an empty Gauss-tree has no
    dimensionality to serialize); the backend skips opening it but still
    counts it in the layout. ``replicas`` lists the shard's replica
    index files (relative to the manifest, like ``path``); WAL shipping
    keeps them a committed prefix of the primary and readers may be
    routed to any of them.
    """

    path: str | None
    objects: int
    replicas: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class ShardManifest:
    """The on-disk description of a sharded index (``<name>.shards.json``).

    Shard paths are stored relative to the manifest file and resolved on
    load, so a manifest directory can be moved or mounted wholesale.
    """

    policy: str
    n_shards: int
    sigma_rule: str
    shards: tuple[ShardInfo, ...]
    source_path: str | None = None  # where the manifest was loaded from
    #: Objects ever placed through this deployment (``None`` in
    #: manifests predating writable sharding; resolved via
    #: :attr:`effective_placement_epoch`). Round-robin write routing
    #: continues the position sequence from here.
    placement_epoch: int | None = None
    #: Which shard-file family is current. Re-sharding writes
    #: generation ``g+1`` files beside generation ``g`` and bumps this
    #: in one atomic manifest replace (the cutover point); old files
    #: stay on disk for sessions that opened before the cutover.
    generation: int = 0

    @property
    def total_objects(self) -> int:
        """Objects across all shards (sum of the recorded counts)."""
        return sum(s.objects for s in self.shards)

    @property
    def effective_placement_epoch(self) -> int:
        """The recorded placement epoch, defaulting to the object count
        for manifests written before writable sharding existed (correct
        for any manifest that never served deletes)."""
        return (
            self.placement_epoch
            if self.placement_epoch is not None
            else self.total_objects
        )

    def shard_paths(self) -> list[str | None]:
        """Absolute per-shard index paths (``None`` for empty shards)."""
        base = (
            os.path.dirname(os.path.abspath(self.source_path))
            if self.source_path
            else os.getcwd()
        )
        return [
            None if s.path is None else os.path.join(base, s.path)
            for s in self.shards
        ]

    def replica_paths(self) -> list[list[str]]:
        """Absolute replica index paths, one list per shard (possibly
        empty — a shard with no replicas has no failover targets)."""
        base = (
            os.path.dirname(os.path.abspath(self.source_path))
            if self.source_path
            else os.getcwd()
        )
        return [
            [os.path.join(base, r) for r in s.replicas] for s in self.shards
        ]

    def to_json(self) -> dict:
        """The manifest's JSON document (what :meth:`save` writes)."""
        return {
            "format": "gausstree-shards",
            "version": _MANIFEST_VERSION,
            "policy": self.policy,
            "n_shards": self.n_shards,
            "sigma_rule": self.sigma_rule,
            "placement_epoch": self.effective_placement_epoch,
            "generation": self.generation,
            "shards": [
                {
                    "path": s.path,
                    "objects": s.objects,
                    "replicas": list(s.replicas),
                }
                for s in self.shards
            ],
        }

    def save(self, path) -> str:
        """Write the manifest JSON to ``path``; returns the path.

        Atomic (write-to-sibling + rename): writable sharded sessions
        rewrite the manifest on *every* commit, so a crash mid-rewrite
        must never leave a torn manifest behind — the shard indexes
        would be intact but the deployment unopenable.
        """
        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        tmp_path = os.path.join(
            directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
        )
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                json.dump(self.to_json(), f, indent=2)
                f.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return path


def load_manifest(path) -> ShardManifest:
    """Parse and validate a ``.shards.json`` manifest.

    Raises :class:`~repro.cluster.backend.ClusterError` on anything that
    would otherwise surface later as a confusing failure: unparseable
    JSON, a different file format, or a shard count that does not match
    the shard list.
    """
    from repro.cluster.backend import ClusterError

    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        raise ClusterError(f"shard manifest not found: {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterError(
            f"cannot parse shard manifest {path}: {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != "gausstree-shards":
        raise ClusterError(
            f"{path} is not a gauss-tree shard manifest "
            "(missing format marker 'gausstree-shards')"
        )
    if data.get("version") not in _READABLE_VERSIONS:
        raise ClusterError(
            f"unsupported manifest version {data.get('version')!r} in {path} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    try:
        shards = tuple(
            ShardInfo(
                path=s["path"],
                objects=int(s["objects"]),
                replicas=tuple(str(r) for r in s.get("replicas", ())),
            )
            for s in data["shards"]
        )
        raw_epoch = data.get("placement_epoch")
        manifest = ShardManifest(
            policy=str(data["policy"]),
            n_shards=int(data["n_shards"]),
            sigma_rule=str(data["sigma_rule"]),
            shards=shards,
            source_path=path,
            placement_epoch=None if raw_epoch is None else int(raw_epoch),
            generation=int(data.get("generation", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(
            f"malformed shard manifest {path}: {exc!r}"
        ) from exc
    if manifest.n_shards != len(manifest.shards):
        raise ClusterError(
            f"manifest {path} declares n_shards={manifest.n_shards} but "
            f"lists {len(manifest.shards)} shards"
        )
    if manifest.policy not in PARTITION_POLICIES:
        raise ClusterError(
            f"manifest {path} uses unknown policy {manifest.policy!r}"
        )
    return manifest


def build_shards(
    db: PFVDatabase,
    n_shards: int,
    out_prefix,
    *,
    policy: str = "hash",
    page_size: int = 8192,
    replicas: int = 0,
) -> ShardManifest:
    """Partition ``db``, save one Gauss-tree index per shard and write
    the manifest ``<out_prefix>.shards.json``.

    Shard files are named ``<out_prefix>.shard-NN.gauss`` and live next
    to the manifest (recorded relative, so the set relocates together).
    With ``replicas=k`` each non-empty shard additionally gets ``k``
    replica clones (``<shard>.r1`` ...), recorded in the manifest for
    read routing and failover; WAL shipping keeps them current once the
    deployment takes writes. Returns the saved manifest (``source_path``
    set).
    """
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout
    from repro.storage.ship import create_replica, replica_path

    if replicas < 0:
        raise ValueError(f"replicas must be >= 0, got {replicas}")
    out_prefix = os.fspath(out_prefix)
    if out_prefix.endswith(MANIFEST_SUFFIX):
        out_prefix = out_prefix[: -len(MANIFEST_SUFFIX)]
    directory = os.path.dirname(os.path.abspath(out_prefix)) or os.getcwd()
    os.makedirs(directory, exist_ok=True)
    parts = partition_database(db, n_shards, policy)
    infos: list[ShardInfo] = []
    for i, part in enumerate(parts):
        if len(part) == 0:
            infos.append(ShardInfo(path=None, objects=0))
            continue
        shard_path = f"{out_prefix}.shard-{i:02d}.gauss"
        layout = PageLayout(dims=part.dims, page_size=page_size)
        tree = bulk_load(
            part.vectors, layout=layout, sigma_rule=part.sigma_rule
        )
        tree.save(shard_path)
        replica_names = tuple(
            os.path.basename(
                create_replica(shard_path, replica_path(shard_path, k))
            )
            for k in range(1, replicas + 1)
        )
        infos.append(
            ShardInfo(
                path=os.path.basename(shard_path),
                objects=len(part),
                replicas=replica_names,
            )
        )
    manifest = ShardManifest(
        policy=policy,
        n_shards=n_shards,
        sigma_rule=(
            db.sigma_rule.value
            if isinstance(db.sigma_rule, SigmaRule)
            else str(db.sigma_rule)
        ),
        shards=tuple(infos),
        source_path=None,
        placement_epoch=len(db),
    )
    manifest_path = out_prefix + MANIFEST_SUFFIX
    manifest.save(manifest_path)
    return dataclasses.replace(manifest, source_path=manifest_path)
