"""Online re-sharding: split or merge a deployment's shards live.

``reshard(manifest, new_n_shards)`` rebuilds a sharded deployment at a
different shard count while queries keep flowing:

1. **Materialize.** Every object is read back through a read-only
   sharded session over the current manifest — i.e. through the same
   recovery path queries use, so a shard whose writer crashed
   mid-batch contributes exactly its WAL-committed state, and replicas
   / the primary agree by the shipping invariant.
2. **Repartition & bulk-load.** The objects are re-placed under the
   (possibly new) policy and each new shard is STR bulk-loaded into a
   fresh index file of the *next generation* —
   ``<prefix>.g<G+1>.shard-NN.gauss`` — beside the old files, never
   touching them. Replica clones are created per new shard.
3. **Cut over atomically.** One ``os.replace`` of the manifest (with
   ``generation`` and the placement epoch bumped) publishes the new
   layout. A session opened before the cutover keeps its open file
   descriptors on the old generation and finishes its queries on a
   consistent snapshot; a session opened after it sees only the new
   one. There is no in-between: the manifest is the single switch.

Old-generation files are deliberately left on disk — deleting them
would yank pages from under pre-cutover sessions. :func:`reshard_gc`
removes them once no reader of the old generation remains (probed via
the per-index lock sidecars; see
:func:`repro.gausstree.persist.index_files_in_use`).
"""

from __future__ import annotations

import dataclasses
import glob
import os

from repro.core.database import PFVDatabase
from repro.cluster.backend import ClusterError
from repro.cluster.partition import (
    MANIFEST_SUFFIX,
    PARTITION_POLICIES,
    ShardInfo,
    ShardManifest,
    load_manifest,
    partition_database,
)

__all__ = ["reshard", "reshard_gc"]


def _generation_prefix(manifest_path: str, generation: int) -> str:
    """Shard-file prefix of one manifest generation (generation 0 keeps
    the original ``build_shards`` names, so resharding back and forth
    never collides with them)."""
    base = os.path.abspath(manifest_path)
    if base.endswith(MANIFEST_SUFFIX):
        base = base[: -len(MANIFEST_SUFFIX)]
    return base if generation == 0 else f"{base}.g{generation}"


def reshard(
    manifest_path,
    new_n_shards: int,
    *,
    policy: str | None = None,
    page_size: int = 8192,
    replicas: int | None = None,
) -> ShardManifest:
    """Re-shard a deployment to ``new_n_shards`` shards, cutting over
    atomically via the manifest.

    ``policy`` defaults to the deployment's current policy,
    ``replicas`` to its current per-shard replica count. Returns the
    new manifest (``source_path`` set). Safe under concurrent readers:
    they either see the old generation or the new one, never a mix.
    """
    from repro.engine.backends import create_backend
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout
    from repro.storage.ship import create_replica, replica_path

    if new_n_shards < 1:
        raise ValueError(f"new_n_shards must be >= 1, got {new_n_shards}")
    manifest_path = os.fspath(manifest_path)
    old = load_manifest(manifest_path)
    new_policy = policy if policy is not None else old.policy
    if new_policy not in PARTITION_POLICIES:
        raise ValueError(
            f"unknown partition policy {new_policy!r}; "
            f"choose from {PARTITION_POLICIES}"
        )
    if replicas is None:
        replicas = max((len(s.replicas) for s in old.shards), default=0)

    # 1. Materialize through a read-only sharded session: recovery and
    # replica routing included, exactly what queries would answer from.
    backend = create_backend("sharded", manifest_path, options={})
    try:
        db: PFVDatabase = backend.database()
    finally:
        backend.close()
    if old.total_objects and len(db) != old.total_objects:
        raise ClusterError(
            f"reshard materialized {len(db)} objects but the manifest "
            f"records {old.total_objects} — refusing to cut over"
        )

    # 2. Build the next generation beside the old files.
    generation = old.generation + 1
    prefix = _generation_prefix(manifest_path, generation)
    parts = partition_database(db, new_n_shards, new_policy)
    infos: list[ShardInfo] = []
    for i, part in enumerate(parts):
        if len(part) == 0:
            infos.append(ShardInfo(path=None, objects=0))
            continue
        shard_file = f"{prefix}.shard-{i:02d}.gauss"
        layout = PageLayout(dims=part.dims, page_size=page_size)
        tree = bulk_load(
            part.vectors, layout=layout, sigma_rule=part.sigma_rule
        )
        tree.save(shard_file)
        replica_names = tuple(
            os.path.basename(
                create_replica(shard_file, replica_path(shard_file, k))
            )
            for k in range(1, replicas + 1)
        )
        infos.append(
            ShardInfo(
                path=os.path.basename(shard_file),
                objects=len(part),
                replicas=replica_names,
            )
        )

    # 3. Atomic cutover: one manifest replace flips every future open.
    new_manifest = ShardManifest(
        policy=new_policy,
        n_shards=new_n_shards,
        sigma_rule=old.sigma_rule,
        shards=tuple(infos),
        source_path=None,
        placement_epoch=len(db),
        generation=generation,
    )
    new_manifest.save(manifest_path)
    return dataclasses.replace(new_manifest, source_path=manifest_path)


#: Lock/WAL sidecar suffixes that ride along with a shard index file.
_SIDECAR_SUFFIXES = (".wal", ".lock", ".readers.lock")


def reshard_gc(manifest_path, *, dry_run: bool = False) -> dict:
    """Garbage-collect shard files of superseded manifest generations.

    For every generation older than the manifest's current one, finds
    the leftover ``*.shard-NN.gauss`` files (and their replicas) that
    the cutover left on disk, probes each for live readers/writers via
    its flock sidecars (:func:`~repro.gausstree.persist.index_files_in_use`)
    and deletes the unreferenced, unused ones together with their WAL
    and lock sidecars. Files still held open by a pre-cutover session —
    or indistinguishable from held on a platform without ``fcntl`` —
    are reported as busy and left alone; re-run once those sessions
    close. ``dry_run=True`` only lists.

    Returns a report dict: ``generation`` (the current, surviving one),
    ``deleted`` and ``busy`` (sorted path lists), ``reclaimed_bytes``
    (size of the deleted index files plus sidecars, or of the
    candidates on a dry run) and ``dry_run``.
    """
    from repro.gausstree.persist import index_files_in_use

    manifest_path = os.path.abspath(os.fspath(manifest_path))
    manifest = load_manifest(manifest_path)
    live: set[str] = set()
    for p in manifest.shard_paths():
        if p is not None:
            live.add(os.path.realpath(p))
    for replicas in manifest.replica_paths():
        live.update(os.path.realpath(p) for p in replicas)

    deleted: list[str] = []
    busy: list[str] = []
    reclaimed = 0
    for generation in range(manifest.generation):
        prefix = _generation_prefix(manifest_path, generation)
        pattern = glob.escape(prefix) + ".shard-*.gauss*"
        for candidate in sorted(glob.glob(pattern)):
            if candidate.endswith(_SIDECAR_SUFFIXES):
                continue  # sidecars go with their index file
            if os.path.realpath(candidate) in live:
                continue  # still referenced (e.g. unchanged replicas)
            if index_files_in_use(candidate):
                busy.append(candidate)
                continue
            doomed = [candidate] + [
                candidate + suffix
                for suffix in _SIDECAR_SUFFIXES
                if os.path.exists(candidate + suffix)
            ]
            for path in doomed:
                try:
                    reclaimed += os.path.getsize(path)
                except OSError:
                    pass
                if not dry_run:
                    try:
                        os.unlink(path)
                    except FileNotFoundError:
                        pass
            deleted.append(candidate)
    return {
        "generation": manifest.generation,
        "deleted": deleted,
        "busy": busy,
        "reclaimed_bytes": reclaimed,
        "dry_run": dry_run,
    }
