"""``repro serve`` — a concurrent JSON query server over a session pool.

A stdlib-only :class:`http.server.ThreadingHTTPServer` exposing one
*primary* session — plus optional interchangeable replicas — to network
clients:

``POST /query``
    Body ``{"queries": [spec, ...]}`` (or one bare spec object) in the
    wire format of :mod:`repro.cluster.wire`; answers with per-query
    match lists, the merged stats and — for sharded sessions — the
    per-shard provenance breakdown. Read specs only (write specs are
    routed through ``POST /insert`` so they serialize on the writer).
``POST /insert``
    Body ``{"vectors": [{"mu": .., "sigma": .., "key": ..}, ...]}``;
    applies the batch through the primary session's ``insert_many``
    (group commit / placement routing) and answers ``{"inserted": n,
    "objects": total}``. Requires the primary session to be writable
    (403 otherwise). Writes always serialize on the primary slot.
``POST /delete``
    Body ``{"vectors": [pfv, ...]}`` (same shape as insert); deletes
    each vector through the primary session and answers ``{"deleted":
    n_found, "requested": n, "objects": total}``. A vector absent from
    the index is a clean miss — it lowers ``deleted``, never errors.
    Requires a writable primary (403 otherwise).
``GET /healthz``
    Liveness: backend name, object count, uptime.
``GET /stats``
    Cumulative serving counters (batches, queries per kind, inserts,
    pages, refinements) plus the per-session-pool utilisation snapshot
    (see :class:`SessionPool`) since startup.
``GET /metrics``
    Prometheus text exposition: the server's private registry plus the
    process-global storage/cluster series (``docs/observability.md``).

Concurrency model: handler threads always overlapped on network IO;
since the session pool replaced the old single execution lock, query
*execution* overlaps too — each request checks a free session out of
the pool and runs on it without any global lock. Sessions of a pool
must be interchangeable views of the same data (``repro serve
--sessions N`` opens N sessions over the same index/manifest). With a
writable primary, every accepted insert flushes the primary (shipping
replicas / publishing a checkpoint generation) and bumps the pool's
data version; a replica slot acquired afterwards notices it is stale
and is reopened through the session factory before serving — so reads
through any slot are read-your-writes consistent. Checkpoints publish
new index generations by atomic rename, so a replica mid-query keeps
its snapshot while the writer flushes (reader snapshot isolation).
See ``docs/wire-protocol.md``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.cluster.wire import (
    WireError,
    pfv_from_json,
    result_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.engine.session import Session
from repro.engine.spec import is_write_spec
from repro.obs.metrics import (
    CONTENT_TYPE,
    MetricsRegistry,
    get_global_registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs import trace as obs_trace

__all__ = ["QueryServer", "SessionPool", "serve"]

#: Refuse request bodies above this size (64 MiB) — a malformed client
#: should get a 413, not an allocation storm.
MAX_BODY_BYTES = 64 * 1024 * 1024


class SessionPool:
    """A fixed set of interchangeable sessions handlers check out.

    Slot 0 is the **primary** (the session the server was built with);
    writes always acquire it, so the single-writer discipline of the
    underlying index holds no matter how many read replicas serve
    queries concurrently. Reads acquire any free slot (lowest free slot
    first, keeping the primary's caches hot), blocking while all slots
    are busy.

    The pool keeps its own utilisation counters — acquires, waits
    (acquires that had to block), in-use high-water mark and per-slot
    batch counts — surfaced by ``GET /stats`` under
    ``"session_pool"``.
    """

    def __init__(self, sessions: list[Session]) -> None:
        if not sessions:
            raise ValueError("a session pool needs at least one session")
        self._sessions = list(sessions)
        self._free = set(range(len(self._sessions)))
        self._cond = threading.Condition()
        self.acquires = 0
        self.waits = 0
        self.peak_in_use = 0
        self._per_slot_batches = [0] * len(self._sessions)
        #: Data version: bumped after every accepted write. A replica
        #: slot whose recorded version lags is *stale* — it still reads
        #: its pre-write snapshot (checkpoints/shipping publish new file
        #: generations; open descriptors keep the old one) and must be
        #: reopened before it serves again.
        self._version = 0
        self._slot_versions = [0] * len(self._sessions)

    def __len__(self) -> int:
        """Number of sessions in the pool."""
        return len(self._sessions)

    @property
    def primary(self) -> Session:
        """Slot 0 — the session writes serialize on."""
        return self._sessions[0]

    def acquire(self, slot: int | None = None) -> tuple[int, Session]:
        """Check out a free session (a specific slot if given), blocking
        until one frees up; returns ``(slot, session)``."""
        with self._cond:
            self.acquires += 1

            def available() -> bool:
                return (slot in self._free) if slot is not None else bool(
                    self._free
                )

            if not available():
                self.waits += 1
                while not available():
                    self._cond.wait()
            taken = slot if slot is not None else min(self._free)
            self._free.discard(taken)
            in_use = len(self._sessions) - len(self._free)
            self.peak_in_use = max(self.peak_in_use, in_use)
            self._per_slot_batches[taken] += 1
            return taken, self._sessions[taken]

    def release(self, slot: int) -> None:
        """Return a checked-out session to the pool."""
        with self._cond:
            self._free.add(slot)
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """Utilisation counters for ``GET /stats``."""
        with self._cond:
            return {
                "size": len(self._sessions),
                "in_use": len(self._sessions) - len(self._free),
                "peak_in_use": self.peak_in_use,
                "acquires": self.acquires,
                "waits": self.waits,
                "batches_per_session": list(self._per_slot_batches),
            }

    def bump_version(self) -> None:
        """Record that the data changed (called after a write lands).

        The primary took the write, so its slot is current by
        definition; every other slot becomes stale until refreshed.
        """
        with self._cond:
            self._version += 1
            self._slot_versions[0] = self._version

    def stale(self, slot: int) -> bool:
        """Whether a (checked-out) slot predates the latest write."""
        with self._cond:
            return self._slot_versions[slot] < self._version

    def refresh(self, slot: int, factory: Callable[[], Session]) -> Session:
        """Reopen a stale checked-out slot through ``factory``.

        On success the old session is closed and the fresh one (which
        sees the shipped/checkpointed state) takes the slot, marked
        current. If the factory fails — a replica file mid-resync, say —
        the slot keeps its old session and stays marked stale, so the
        next acquire retries: serving a slightly stale answer beats
        failing the request.
        """
        try:
            session = factory()
        except Exception:
            return self._sessions[slot]
        with self._cond:
            old, self._sessions[slot] = self._sessions[slot], session
            self._slot_versions[slot] = self._version
        old.close()
        return session

    def close_replicas(self) -> None:
        """Close every pooled session except the primary (which the
        caller owns and closes itself)."""
        for session in self._sessions[1:]:
            session.close()


class ServingStats:
    """Cumulative counters behind ``GET /stats`` (lock-protected).

    Shared with the asyncio serving tier (:mod:`repro.serve`), which
    extends the same snapshot with admission/coalescing counters — one
    ``/stats`` vocabulary across both servers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.batches = 0
        self.queries = 0
        self.by_kind: dict[str, int] = {}
        self.errors = 0
        self.inserts = 0
        self.insert_batches = 0
        self.deletes = 0
        self.delete_batches = 0
        self.pages_accessed = 0
        self.objects_refined = 0
        self.execute_seconds = 0.0

    def record(self, specs, stats, elapsed: float) -> None:
        with self._lock:
            self.batches += 1
            self.queries += len(specs)
            for spec in specs:
                self.by_kind[spec.kind] = self.by_kind.get(spec.kind, 0) + 1
            self.pages_accessed += stats.pages_accessed
            self.objects_refined += stats.objects_refined
            self.execute_seconds += elapsed

    def record_inserts(self, count: int, elapsed: float) -> None:
        with self._lock:
            self.insert_batches += 1
            self.inserts += count
            self.execute_seconds += elapsed

    def record_deletes(self, count: int, elapsed: float) -> None:
        with self._lock:
            self.delete_batches += 1
            self.deletes += count
            self.execute_seconds += elapsed

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "batches": self.batches,
                "queries": self.queries,
                "queries_by_kind": dict(self.by_kind),
                "errors": self.errors,
                "inserts": self.inserts,
                "insert_batches": self.insert_batches,
                "deletes": self.deletes,
                "delete_batches": self.delete_batches,
                "pages_accessed": self.pages_accessed,
                "objects_refined": self.objects_refined,
                "execute_seconds": round(self.execute_seconds, 4),
            }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # Populated per server class in QueryServer.start().
    query_server: "QueryServer"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.query_server.verbose:
            super().log_message(format, *args)

    # -- helpers -------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self.query_server.stats.record_error()
        self._send_json(status, {"error": message})

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        qs = self.query_server
        if self.path == "/metrics":
            self._send_text(200, qs.metrics_text(), CONTENT_TYPE)
        elif self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "backend": qs.session.backend_name,
                    "objects": len(qs.session),
                    "uptime_seconds": round(
                        time.time() - qs.stats.started_at, 3
                    ),
                },
            )
        elif self.path == "/stats":
            payload = qs.stats.snapshot()
            payload["backend"] = qs.session.backend_name
            payload["objects"] = len(qs.session)
            payload["session_pool"] = qs.pool.snapshot()
            self._send_json(200, payload)
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def _read_json_body(self):
        """Read and parse the request body; sends the error response and
        returns ``None`` on anything malformed."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # Rejecting without reading the declared body would leave it
            # on the keep-alive connection, where it would be parsed as
            # the *next* request line — so drop the connection instead.
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length")
            return None
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "empty request body")
            return None
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
            return None
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"request body is not JSON: {exc}")
            return None

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/query":
            self._do_query()
        elif self.path == "/insert":
            self._do_insert()
        elif self.path == "/delete":
            self._do_delete()
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def _do_query(self) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            if isinstance(data, dict) and "queries" in data:
                raw = data["queries"]
                if not isinstance(raw, list):
                    raise WireError('"queries" must be a list of specs')
                specs = [spec_from_json(item) for item in raw]
            else:
                specs = [spec_from_json(data)]
        except WireError as exc:
            self._send_error_json(400, str(exc))
            return
        if not specs:
            self._send_error_json(400, "no queries in request")
            return
        if any(is_write_spec(spec) for spec in specs):
            self._send_error_json(
                400,
                "write specs are not served by /query; POST the vectors "
                "to /insert or /delete (writes serialize on the primary "
                "session)",
            )
            return
        qs = self.query_server
        req_trace = self._request_trace(data)
        slot = None
        plan = None
        try:
            started = time.perf_counter()
            slot, session = qs.pool.acquire()
            # A replica slot that predates the last write still reads
            # its pre-write snapshot; reopen it so every slot is
            # read-your-writes consistent.
            if (
                slot != 0
                and qs.session_factory is not None
                and qs.pool.stale(slot)
            ):
                session = qs.pool.refresh(slot, qs.session_factory)
            with obs_trace.tracing(req_trace):
                with obs_trace.span("request", count=len(specs)):
                    rs = session.execute_many(specs)
            elapsed = time.perf_counter() - started
            if (
                qs.slow_log is not None
                and elapsed >= qs.slow_log.threshold_seconds
            ):
                # Price the plan while still holding the slot so the
                # log entry compares estimates against observed stats.
                try:
                    plan = session.explain(specs).describe()
                except Exception:
                    plan = None
        except Exception as exc:  # surface, don't kill the handler thread
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        finally:
            if slot is not None:
                qs.pool.release(slot)
        qs.stats.record(specs, rs.stats, elapsed)
        qs.m_execute.observe(elapsed)
        payload = result_to_json(rs)
        payload["execute_seconds"] = round(elapsed, 6)
        if req_trace is not None:
            # Re-render after the request span closed (the ResultSet
            # captured the tree while it was still open).
            payload["trace"] = req_trace.to_dict()
        if qs.slow_log is not None:
            qs.slow_log.maybe_log(
                elapsed,
                queries=[spec_to_json(s) for s in specs],
                trace=payload.get("trace"),
                plan=plan,
                stats=payload["stats"],
                source="serve",
            )
        self._send_json(200, payload)

    def _request_trace(self, data) -> "obs_trace.Trace | None":
        """The request's Trace when asked for — a truthy ``trace`` body
        field (a string supplies the ID) or an ``X-Repro-Trace`` header."""
        req = data.get("trace") if isinstance(data, dict) else None
        if not req:
            req = self.headers.get("X-Repro-Trace")
        if not req:
            return None
        return obs_trace.Trace(req if isinstance(req, str) else None)

    def _do_insert(self) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            if not isinstance(data, dict) or "vectors" not in data:
                raise WireError(
                    'insert body must be {"vectors": [pfv, ...]}'
                )
            raw = data["vectors"]
            if not isinstance(raw, list):
                raise WireError('"vectors" must be a list of pfv objects')
            vectors = [pfv_from_json(item) for item in raw]
        except WireError as exc:
            self._send_error_json(400, str(exc))
            return
        if not vectors:
            self._send_error_json(400, "no vectors in request")
            return
        qs = self.query_server
        req_trace = self._request_trace(data)
        # Writes always serialize on the primary slot: single-writer
        # discipline, whatever the pool size.
        slot = None
        try:
            started = time.perf_counter()
            slot, session = qs.pool.acquire(slot=0)
            if not session.writable:
                self._send_error_json(
                    403,
                    "server session is read-only; restart `repro serve` "
                    "with --writable to accept inserts",
                )
                return
            with obs_trace.tracing(req_trace):
                with obs_trace.span("request", count=len(vectors)):
                    inserted = session.insert_many(vectors)
                    if len(qs.pool) > 1:
                        # Publish for the replica slots: flush ships
                        # replica files / checkpoints a new index
                        # generation, and the version bump makes stale
                        # slots reopen onto it before they serve again
                        # (read-your-writes through any slot).
                        session.flush()
                        qs.pool.bump_version()
            objects = len(session)
            elapsed = time.perf_counter() - started
        except Exception as exc:  # surface, don't kill the handler thread
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        finally:
            if slot is not None:
                qs.pool.release(slot)
        qs.stats.record_inserts(inserted, elapsed)
        qs.m_execute.observe(elapsed)
        payload = {
            "inserted": inserted,
            "objects": objects,
            "execute_seconds": round(elapsed, 6),
        }
        if req_trace is not None:
            payload["trace"] = req_trace.to_dict()
        self._send_json(200, payload)

    def _do_delete(self) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            if not isinstance(data, dict) or "vectors" not in data:
                raise WireError(
                    'delete body must be {"vectors": [pfv, ...]}'
                )
            raw = data["vectors"]
            if not isinstance(raw, list):
                raise WireError('"vectors" must be a list of pfv objects')
            vectors = [pfv_from_json(item) for item in raw]
        except WireError as exc:
            self._send_error_json(400, str(exc))
            return
        if not vectors:
            self._send_error_json(400, "no vectors in request")
            return
        qs = self.query_server
        req_trace = self._request_trace(data)
        # Deletes serialize on the primary like inserts; a vector
        # absent from the index is a clean miss (False, no WAL commit),
        # so stale client state lowers "deleted" instead of erroring.
        slot = None
        try:
            started = time.perf_counter()
            slot, session = qs.pool.acquire(slot=0)
            if not session.writable:
                self._send_error_json(
                    403,
                    "server session is read-only; restart `repro serve` "
                    "with --writable to accept writes",
                )
                return
            with obs_trace.tracing(req_trace):
                with obs_trace.span("request", count=len(vectors)):
                    deleted = sum(
                        1 for v in vectors if session.delete(v)
                    )
                    if len(qs.pool) > 1 and deleted:
                        session.flush()
                        qs.pool.bump_version()
            objects = len(session)
            elapsed = time.perf_counter() - started
        except Exception as exc:  # surface, don't kill the handler thread
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        finally:
            if slot is not None:
                qs.pool.release(slot)
        qs.stats.record_deletes(deleted, elapsed)
        qs.m_execute.observe(elapsed)
        payload = {
            "deleted": deleted,
            "requested": len(vectors),
            "objects": objects,
            "execute_seconds": round(elapsed, 6),
        }
        if req_trace is not None:
            payload["trace"] = req_trace.to_dict()
        self._send_json(200, payload)


class QueryServer:
    """A running (or startable) HTTP serving endpoint over a session pool.

    ``port=0`` binds an ephemeral port (tests, examples); the bound
    address is available as :attr:`address` after :meth:`start`.

    Parameters
    ----------
    session:
        The primary session (pool slot 0). Writes — ``POST /insert`` —
        always serialize on it.
    session_factory:
        Zero-argument callable returning one more session over the same
        data; called ``pool_size - 1`` times at :meth:`start` to fill
        the pool with read replicas. Required when ``pool_size > 1``.
    pool_size:
        Total sessions serving queries concurrently (default 1 — the
        primary alone, equivalent to the old single-lock behaviour).
    registry:
        The server's private :class:`~repro.obs.metrics.MetricsRegistry`
        behind ``GET /metrics`` (a fresh one by default; pass a
        :class:`~repro.obs.metrics.NullRegistry` to disable the
        serving-tier series).
    slow_query_log:
        A path or an open :class:`~repro.obs.slowlog.SlowQueryLog`;
        requests slower than ``slow_query_ms`` are appended with their
        specs, span tree and ``explain()`` plan.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 8631,
        *,
        verbose: bool = False,
        session_factory: Callable[[], Session] | None = None,
        pool_size: int = 1,
        registry: MetricsRegistry | None = None,
        slow_query_log: SlowQueryLog | str | None = None,
        slow_query_ms: float = 250.0,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if pool_size > 1 and session_factory is None:
            raise ValueError(
                "pool_size > 1 needs a session_factory to open the "
                "replica sessions"
            )
        self.session = session
        self.host = host
        self.port = port
        self.verbose = verbose
        self.session_factory = session_factory
        self.pool_size = pool_size
        self.stats = ServingStats()
        self.registry = registry if registry is not None else MetricsRegistry()
        if isinstance(slow_query_log, SlowQueryLog):
            self.slow_log: SlowQueryLog | None = slow_query_log
            self._owns_slow_log = False
        elif slow_query_log is not None:
            self.slow_log = SlowQueryLog(
                slow_query_log, threshold_ms=slow_query_ms
            )
            self._owns_slow_log = True
        else:
            self.slow_log = None
            self._owns_slow_log = False
        #: Filled at :meth:`start` (replicas are opened there, not in
        #: the constructor, so a never-started server opens nothing).
        self.pool = SessionPool([session])
        self._register_metrics()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._serving = False

    def _register_metrics(self) -> None:
        """Install the serving-tier series: callback-backed counters
        over :class:`ServingStats` and the session pool (the single
        sources of truth), one directly-observed latency histogram."""
        m = self.registry
        self.m_execute = m.histogram(
            "repro_serve_execute_seconds",
            "Engine wall time per request.",
        )
        m.counter(
            "repro_serve_queries_total",
            "Query specs executed (batch members counted singly).",
            callback=lambda: self.stats.queries,
        )
        m.counter(
            "repro_serve_inserts_total",
            "Vectors inserted.",
            callback=lambda: self.stats.inserts,
        )
        m.counter(
            "repro_serve_deletes_total",
            "Vectors deleted (found-and-removed, misses excluded).",
            callback=lambda: self.stats.deletes,
        )
        m.counter(
            "repro_serve_errors_total",
            "Requests answered with an error status.",
            callback=lambda: self.stats.errors,
        )
        m.gauge(
            "repro_serve_pool_size",
            "Pool sessions.",
            callback=lambda: len(self.pool),
        )
        m.gauge(
            "repro_serve_pool_in_use",
            "Pool sessions currently checked out.",
            callback=lambda: self.pool.snapshot()["in_use"],
        )
        m.counter(
            "repro_serve_pool_acquires_total",
            "Pool slot acquisitions.",
            callback=lambda: self.pool.acquires,
        )
        m.counter(
            "repro_serve_pool_waits_total",
            "Slot acquisitions that had to wait for a busy pool.",
            callback=lambda: self.pool.waits,
        )

    def metrics_text(self) -> str:
        """The Prometheus exposition behind ``GET /metrics``: this
        server's registry concatenated with the process-global one
        (WAL, cluster and buffer series)."""
        return self.registry.render() + get_global_registry().render()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (call :meth:`start` first)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """The endpoint's base URL (call :meth:`start` first)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "QueryServer":
        """Bind the listening socket and fill the session pool (daemon
        threads serve requests)."""
        if self._httpd is not None:
            raise RuntimeError("server is already started")
        if len(self.pool) < self.pool_size:
            sessions = [self.session] + [
                self.session_factory() for _ in range(self.pool_size - 1)
            ]
            self.pool = SessionPool(sessions)
        handler = type(
            "_BoundHandler", (_Handler,), {"query_server": self}
        )
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), handler
        )
        self._httpd.daemon_threads = True
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; `repro serve` mode)."""
        if self._httpd is None:
            self.start()
        self._serving = True
        self._httpd.serve_forever()

    def serve_in_background(self) -> "QueryServer":
        """Serve from a daemon thread (tests, examples, embedding)."""
        if self._httpd is None:
            self.start()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket. Replica sessions the
        server opened are closed; the caller's primary stays open."""
        if self._httpd is not None:
            # BaseServer.shutdown() waits for a serve_forever() loop to
            # acknowledge; if none ever ran, it would wait forever —
            # just close the listening socket in that case.
            if self._serving:
                self._httpd.shutdown()
            self._serving = False
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.pool.close_replicas()
        # A restarted server must not hand queries to the replicas just
        # closed: shrink the pool back to the primary so the next
        # start() opens fresh replicas through the factory.
        self.pool = SessionPool([self.session])
        if self._owns_slow_log and self.slow_log is not None:
            self.slow_log.close()

    def __enter__(self) -> "QueryServer":
        if self._httpd is None:
            self.serve_in_background()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


def serve(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 8631,
    *,
    verbose: bool = False,
    session_factory: Callable[[], Session] | None = None,
    pool_size: int = 1,
    registry: MetricsRegistry | None = None,
    slow_query_log: SlowQueryLog | str | None = None,
    slow_query_ms: float = 250.0,
) -> QueryServer:
    """Start serving ``session`` in background threads; returns the
    running :class:`QueryServer` (use as a context manager to stop).
    ``session_factory`` + ``pool_size`` open extra read-replica
    sessions so concurrent requests execute in parallel."""
    return QueryServer(
        session,
        host,
        port,
        verbose=verbose,
        session_factory=session_factory,
        pool_size=pool_size,
        registry=registry,
        slow_query_log=slow_query_log,
        slow_query_ms=slow_query_ms,
    ).serve_in_background()
