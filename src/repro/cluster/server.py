"""``repro serve`` — a concurrent JSON query server over any Session.

A stdlib-only :class:`http.server.ThreadingHTTPServer` exposing one
session (single-backend or sharded) to network clients:

``POST /query``
    Body ``{"queries": [spec, ...]}`` (or one bare spec object) in the
    wire format of :mod:`repro.cluster.wire`; answers with per-query
    match lists, the merged stats and — for sharded sessions — the
    per-shard provenance breakdown.
``GET /healthz``
    Liveness: backend name, object count, uptime.
``GET /stats``
    Cumulative serving counters (batches, queries per kind, pages,
    refinements) since startup.

Handler threads give concurrent clients overlapped network IO; query
*execution* is serialised through one lock because backends share
mutable page-buffer state. That lock is held only around
``execute_many``, and a sharded session spends its time fanned out in
pool workers — so with a process pool, shard work from one request
overlaps the HTTP plumbing of the next. True multi-request execution
concurrency is the async/group-commit work the ROADMAP tracks.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cluster.wire import (
    WireError,
    result_to_json,
    spec_from_json,
)
from repro.engine.session import Session

__all__ = ["QueryServer", "serve"]

#: Refuse request bodies above this size (64 MiB) — a malformed client
#: should get a 413, not an allocation storm.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServingStats:
    """Cumulative counters behind ``GET /stats`` (lock-protected)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.batches = 0
        self.queries = 0
        self.by_kind: dict[str, int] = {}
        self.errors = 0
        self.pages_accessed = 0
        self.objects_refined = 0
        self.execute_seconds = 0.0

    def record(self, specs, stats, elapsed: float) -> None:
        with self._lock:
            self.batches += 1
            self.queries += len(specs)
            for spec in specs:
                self.by_kind[spec.kind] = self.by_kind.get(spec.kind, 0) + 1
            self.pages_accessed += stats.pages_accessed
            self.objects_refined += stats.objects_refined
            self.execute_seconds += elapsed

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "batches": self.batches,
                "queries": self.queries,
                "queries_by_kind": dict(self.by_kind),
                "errors": self.errors,
                "pages_accessed": self.pages_accessed,
                "objects_refined": self.objects_refined,
                "execute_seconds": round(self.execute_seconds, 4),
            }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # Populated per server class in QueryServer.start().
    query_server: "QueryServer"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.query_server.verbose:
            super().log_message(format, *args)

    # -- helpers -------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self.query_server.stats.record_error()
        self._send_json(status, {"error": message})

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        qs = self.query_server
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "backend": qs.session.backend_name,
                    "objects": len(qs.session),
                    "uptime_seconds": round(
                        time.time() - qs.stats.started_at, 3
                    ),
                },
            )
        elif self.path == "/stats":
            payload = qs.stats.snapshot()
            payload["backend"] = qs.session.backend_name
            payload["objects"] = len(qs.session)
            self._send_json(200, payload)
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/query":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # Rejecting without reading the declared body would leave it
            # on the keep-alive connection, where it would be parsed as
            # the *next* request line — so drop the connection instead.
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length")
            return
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "empty request body")
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
            return
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"request body is not JSON: {exc}")
            return
        try:
            if isinstance(data, dict) and "queries" in data:
                raw = data["queries"]
                if not isinstance(raw, list):
                    raise WireError('"queries" must be a list of specs')
                specs = [spec_from_json(item) for item in raw]
            else:
                specs = [spec_from_json(data)]
        except WireError as exc:
            self._send_error_json(400, str(exc))
            return
        if not specs:
            self._send_error_json(400, "no queries in request")
            return
        qs = self.query_server
        try:
            started = time.perf_counter()
            with qs.execute_lock:
                rs = qs.session.execute_many(specs)
            elapsed = time.perf_counter() - started
        except Exception as exc:  # surface, don't kill the handler thread
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        qs.stats.record(specs, rs.stats, elapsed)
        payload = result_to_json(rs)
        payload["execute_seconds"] = round(elapsed, 6)
        self._send_json(200, payload)


class QueryServer:
    """A running (or startable) HTTP serving endpoint over one session.

    ``port=0`` binds an ephemeral port (tests, examples); the bound
    address is available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 8631,
        *,
        verbose: bool = False,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.verbose = verbose
        self.stats = _ServingStats()
        self.execute_lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (call :meth:`start` first)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "QueryServer":
        """Bind the listening socket (daemon threads serve requests)."""
        if self._httpd is not None:
            raise RuntimeError("server is already started")
        handler = type(
            "_BoundHandler", (_Handler,), {"query_server": self}
        )
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), handler
        )
        self._httpd.daemon_threads = True
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; `repro serve` mode)."""
        if self._httpd is None:
            self.start()
        self._serving = True
        self._httpd.serve_forever()

    def serve_in_background(self) -> "QueryServer":
        """Serve from a daemon thread (tests, examples, embedding)."""
        if self._httpd is None:
            self.start()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket (session stays open)."""
        if self._httpd is not None:
            # BaseServer.shutdown() waits for a serve_forever() loop to
            # acknowledge; if none ever ran, it would wait forever —
            # just close the listening socket in that case.
            if self._serving:
                self._httpd.shutdown()
            self._serving = False
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        if self._httpd is None:
            self.serve_in_background()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


def serve(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 8631,
    *,
    verbose: bool = False,
) -> QueryServer:
    """Start serving ``session`` in background threads; returns the
    running :class:`QueryServer` (use as a context manager to stop)."""
    return QueryServer(
        session, host, port, verbose=verbose
    ).serve_in_background()
