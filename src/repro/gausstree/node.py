"""Gauss-tree nodes (Definition 4).

Two node kinds, both occupying one simulated disk page:

* :class:`LeafNode` stores between ``M`` and ``2 M`` probabilistic feature
  vectors (the root may hold fewer while the tree is small);
* :class:`InnerNode` stores between ``ceil(M/2)`` and ``M`` child entries,
  each a :class:`~repro.gausstree.bounds.ParameterRect` plus the child
  pointer and — for the sum approximation of Section 5.2 — the child's
  subtree cardinality.

Leaves are **columnar first**: a leaf can hold its payload as
struct-of-arrays columns — read-only ``mu``/``sigma`` stacks of shape
``(count, d)`` plus a key list — so exact refinement (Lemma 1 over every
stored pfv) and candidate selection run as single numpy kernels over the
whole page. The legacy object API (``entries``) stays available: the
:class:`~repro.core.pfv.PFV` views are materialized lazily from the
columns on first access. Leaves built one pfv at a time (repeated
insertion) hold a plain object list instead and keep a lazily-built numpy
cache of the stacks; any mutation of a columnar leaf de-columnarizes it
(the object list becomes the source of truth) so the write path is
identical for both representations.

Nodes of a disk-opened tree (:mod:`repro.gausstree.persist`) start out as
*stubs*: the page id, MBR and subtree cardinality are known (they live in
the parent's page), but the payload — a leaf's entries, an inner node's
child list — is materialized from page bytes only on first access through
a loader callback. ``entries`` and ``children`` are therefore properties;
in-memory trees simply never set a loader and pay one ``None`` check.

Stubs are not read-only: on a writable disk-opened tree every mutator
(``add``, ``remove_at``, ``add_child``, ``remove_child``, the split-time
``replace_*``) goes through the same materializing properties, so a stub
transparently loads, mutates, and is then marked dirty by the tree's
write path (:meth:`repro.gausstree.tree.GaussTree._mark_dirty`) for the
next WAL commit.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect

__all__ = ["Node", "LeafNode", "InnerNode"]


class Node:
    """Common state of leaf and inner nodes."""

    __slots__ = ("rect", "parent", "page_id", "_loader")

    def __init__(self, page_id: int) -> None:
        self.rect: Optional[ParameterRect] = None
        self.parent: Optional["InnerNode"] = None
        self.page_id = page_id
        # Deferred materialization callback of a disk-backed stub; called
        # once with the node, then cleared. None for in-memory nodes.
        self._loader: Optional[Callable[["Node"], None]] = None

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Number of pfv stored in this subtree."""
        raise NotImplementedError

    @property
    def is_materialized(self) -> bool:
        """Whether the payload is in memory (stubs load on first access)."""
        return self._loader is None

    def _materialize(self) -> None:
        loader = self._loader
        if loader is not None:
            self._loader = None
            loader(self)

    def refresh_rect(self) -> None:
        """Recompute the tight MBR from the node's contents."""
        raise NotImplementedError


class LeafNode(Node):
    """A data page holding pfv entries, columnar or as an object list."""

    __slots__ = (
        "_entries",
        "_mu_cache",
        "_sigma_cache",
        "_stub_count",
        "_col_mu",
        "_col_sigma",
        "_col_keys",
    )

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self._entries: list[PFV] = []
        self._mu_cache: Optional[np.ndarray] = None
        self._sigma_cache: Optional[np.ndarray] = None
        self._stub_count = 0
        # Columnar payload: (n, d) float64 stacks plus the key list.
        # None on object-list leaves; mutations clear it (the object
        # list then becomes the source of truth again).
        self._col_mu: Optional[np.ndarray] = None
        self._col_sigma: Optional[np.ndarray] = None
        self._col_keys: Optional[list] = None

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def is_columnar(self) -> bool:
        """Whether the payload currently lives in column arrays.

        Columnar leaves come from :meth:`set_columns` (bulk loading, the
        format-v3 page loader); the vectorized query kernels take their
        fast path on them. False for unmaterialized stubs — callers on
        the query path call :meth:`arrays` first, which materializes.
        """
        return self._col_keys is not None

    @property
    def count(self) -> int:
        if self._loader is not None:
            return self._stub_count  # known from the parent page
        if self._col_keys is not None:
            return len(self._col_keys)
        return len(self._entries)

    @property
    def entries(self) -> list[PFV]:
        """The stored pfv as objects; materializes a disk stub on first
        access and builds the object views of a columnar leaf lazily."""
        if self._loader is not None:
            self._materialize()
        if self._col_keys is not None and len(self._entries) != len(
            self._col_keys
        ):
            mu, sigma = self._col_mu, self._col_sigma
            self._entries = [
                PFV(mu[i], sigma[i], key)
                for i, key in enumerate(self._col_keys)
            ]
        return self._entries

    def entry_at(self, index: int) -> PFV:
        """One stored pfv by position — without materializing the whole
        object list of a columnar leaf (the query kernels defer object
        construction to the final result assembly)."""
        if self._loader is not None:
            self._materialize()
        if self._col_keys is not None and len(self._entries) != len(
            self._col_keys
        ):
            return PFV(
                self._col_mu[index],
                self._col_sigma[index],
                self._col_keys[index],
            )
        return self._entries[index]

    def keys(self) -> list:
        """The application keys in entry order (no object materialization
        for columnar leaves — the save path encodes straight from this)."""
        if self._loader is not None:
            self._materialize()
        if self._col_keys is not None and len(self._entries) != len(
            self._col_keys
        ):
            return list(self._col_keys)
        return [v.key for v in self._entries]

    def set_loader(
        self, loader: Callable[["LeafNode"], None], count: int
    ) -> None:
        """Turn this node into a stub: ``loader`` fills the entries later."""
        self._loader = loader  # type: ignore[assignment]
        self._stub_count = count

    def set_columns(
        self, mu: np.ndarray, sigma: np.ndarray, keys: list
    ) -> None:
        """Adopt a columnar payload: ``(n, d)`` mu/sigma stacks plus the
        ``n`` application keys; recomputes the MBR from the columns.

        The arrays are kept as-is (read-only views of page bytes are
        fine) — callers must not mutate them afterwards.
        """
        mu = np.asarray(mu, dtype=np.float64)
        sigma = np.asarray(sigma, dtype=np.float64)
        if mu.ndim != 2 or mu.shape != sigma.shape:
            raise ValueError(
                f"columns must both be (n, d), got {mu.shape} and "
                f"{sigma.shape}"
            )
        if mu.shape[0] != len(keys):
            raise ValueError(
                f"{mu.shape[0]} rows but {len(keys)} keys"
            )
        self._loader = None
        self._entries = []
        self._col_mu = mu
        self._col_sigma = sigma
        self._col_keys = list(keys)
        self.refresh_rect()
        self._mu_cache = None
        self._sigma_cache = None

    def _decolumnarize(self) -> list[PFV]:
        """Make the object list the source of truth before a mutation;
        returns it (materializing a stub and/or the column views)."""
        entries = self.entries
        self._col_mu = None
        self._col_sigma = None
        self._col_keys = None
        return entries

    def add(self, v: PFV) -> None:
        """Append a pfv, growing the MBR in place."""
        self._decolumnarize().append(v)
        if self.rect is None:
            self.rect = ParameterRect.of_vector(v)
        else:
            self.rect.extend_vector(v)
        self._invalidate()

    def remove_at(self, index: int) -> PFV:
        """Remove and return the entry at ``index``; tightens the MBR."""
        v = self._decolumnarize().pop(index)
        self.refresh_rect()
        self._invalidate()
        return v

    def replace_entries(self, entries: list[PFV]) -> None:
        """Swap in a new entry list (used by splits); recomputes the MBR."""
        self._loader = None
        self._col_mu = None
        self._col_sigma = None
        self._col_keys = None
        self._entries = entries
        self.refresh_rect()
        self._invalidate()

    def refresh_rect(self) -> None:
        if self._col_keys is not None and len(self._entries) != len(
            self._col_keys
        ):
            self.rect = (
                ParameterRect.of_arrays(self._col_mu, self._col_sigma)
                if self._col_keys
                else None
            )
            return
        self.rect = (
            ParameterRect.of_vectors(self._entries) if self._entries else None
        )

    def _invalidate(self) -> None:
        self._mu_cache = None
        self._sigma_cache = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(mu, sigma)`` stacks of shape ``(count, d)`` for vectorised
        refinement; the columns themselves on a columnar leaf, else a
        cache rebuilt after each mutation."""
        if self._loader is not None:
            self._materialize()
        if self._col_mu is not None:
            return self._col_mu, self._col_sigma
        if self._mu_cache is None:
            self._mu_cache = np.vstack([v.mu for v in self.entries])
            self._sigma_cache = np.vstack([v.sigma for v in self.entries])
        return self._mu_cache, self._sigma_cache

    def __iter__(self) -> Iterator[PFV]:
        return iter(self.entries)

    def __repr__(self) -> str:
        if self._loader is not None:
            return f"LeafNode(page={self.page_id}, stub, count={self._stub_count})"
        if self._col_keys is not None:
            return (
                f"LeafNode(page={self.page_id}, columnar, "
                f"count={len(self._col_keys)})"
            )
        return f"LeafNode(page={self.page_id}, entries={len(self._entries)})"


class InnerNode(Node):
    """A directory page holding child nodes with their parameter MBRs."""

    __slots__ = ("_children", "_count_cache", "_bounds_cache")

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self._children: list[Node] = []
        self._count_cache: Optional[int] = None
        self._bounds_cache: Optional[tuple[np.ndarray, ...]] = None

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def children(self) -> list[Node]:
        """The child nodes; materializes a disk stub on first access."""
        if self._loader is not None:
            self._materialize()
        return self._children

    def set_loader(
        self, loader: Callable[["InnerNode"], None], count: int
    ) -> None:
        """Turn this node into a stub: ``loader`` fills the child list."""
        self._loader = loader  # type: ignore[assignment]
        self._count_cache = count

    @property
    def count(self) -> int:
        if self._count_cache is None:
            self._count_cache = sum(c.count for c in self.children)
        return self._count_cache

    def invalidate_count(self) -> None:
        """Drop the cached subtree cardinality (on any subtree mutation)."""
        node: Optional[InnerNode] = self
        while node is not None:
            node._count_cache = None
            node._bounds_cache = None
            node = node.parent

    def stacked_child_bounds(self) -> tuple[np.ndarray, ...]:
        """``(mu_lo, mu_hi, sigma_lo, sigma_hi)``, each ``(k, d)``, stacked
        over the children — lets queries bound all children in one numpy
        call. Cached until the next mutation below this node."""
        if self._bounds_cache is None:
            rects = [c.rect for c in self.children]
            self._bounds_cache = (
                np.vstack([r.mu_lo for r in rects]),
                np.vstack([r.mu_hi for r in rects]),
                np.vstack([r.sigma_lo for r in rects]),
                np.vstack([r.sigma_hi for r in rects]),
            )
        return self._bounds_cache

    def add_child(self, child: Node) -> None:
        if child.rect is None:
            raise ValueError("cannot attach a child without an MBR")
        self.children.append(child)
        child.parent = self
        if self.rect is None:
            self.rect = child.rect.copy()
        else:
            self.rect.extend_rect(child.rect)
        self.invalidate_count()

    def remove_child(self, child: Node) -> None:
        self.children.remove(child)
        child.parent = None
        self.refresh_rect()
        self.invalidate_count()

    def replace_children(self, children: list[Node]) -> None:
        """Swap in a new child list (used by splits); reparents and
        recomputes the MBR."""
        self._loader = None
        self._children = children
        for c in children:
            c.parent = self
        self.refresh_rect()
        self.invalidate_count()

    def refresh_rect(self) -> None:
        rects = [c.rect for c in self.children if c.rect is not None]
        self.rect = ParameterRect.of_rects(rects) if rects else None

    def __iter__(self) -> Iterator[Node]:
        return iter(self.children)

    def __repr__(self) -> str:
        if self._loader is not None:
            return f"InnerNode(page={self.page_id}, stub, count={self._count_cache})"
        return f"InnerNode(page={self.page_id}, children={len(self._children)})"
