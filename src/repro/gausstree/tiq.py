"""Threshold identification queries on the Gauss-tree (Section 5.2.3).

Follows the paper's Figure 5: the traversal maintains, next to the
priority queue, a candidate set of refined objects and the running bounds
of the Bayes denominator. A candidate is *rejected* as soon as its best
possible posterior (density over the denominator's lower bound) falls
below the threshold; it is *accepted* once its worst possible posterior
(density over the denominator's upper bound) reaches the threshold. The
traversal stops when no unexplored subtree can still contain a qualifying
object and every candidate is decided.

Both denominator bounds are monotone (the lower bound only grows, the
upper only shrinks as nodes are expanded), so reject/accept decisions are
final and the algorithm terminates — at the latest when the queue is
drained, at which point the denominator is exact. With the default
``tolerance = 0.0`` the result set is therefore *identical* to the
sequential scan's, which the property tests assert.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

from repro.core.pfv import PFV
from repro.core.queries import Match, QueryStats, ThresholdQuery
from repro.gausstree.search import SearchState

__all__ = ["gausstree_tiq"]


def gausstree_tiq(
    tree,
    query: ThresholdQuery,
    tolerance: float = 0.0,
    probability_tolerance: float | None = None,
    state: SearchState | None = None,
) -> tuple[list[Match], QueryStats]:
    """Answer a TIQ on a Gauss-tree.

    ``tolerance`` is the paper's optional accuracy specification for the
    *decision*: a candidate whose posterior interval straddles the
    threshold but is narrower than ``tolerance`` is classified by the
    interval midpoint instead of forcing further page reads. ``0.0``
    gives the exact answer set.

    ``probability_tolerance`` additionally bounds the width of every
    *reported* posterior (the paper's "report the actual probabilities
    ... at a specified accuracy", Section 5.2.3 last paragraph); ``None``
    reports best-effort interval midpoints without extra page reads.

    ``state`` lets the batch API pass a pre-built
    :class:`~repro.gausstree.search.SearchState` sharing a
    :class:`~repro.gausstree.batch.BatchRefiner`.
    """
    store = tree.store
    store.begin_query()
    started = time.perf_counter()
    if state is None:
        state = SearchState(tree, query.q)
    p_theta = query.p_theta

    # Min-heap by log density: rejections always happen at the low end
    # because the denominator lower bound grows monotonically. Items are
    # (log_density, tiebreak, vector) or — for columnar leaves, which
    # defer pfv construction to the final classification —
    # (log_density, tiebreak, leaf, index); tiebreaks are unique, so
    # heap comparisons never reach element 2.
    candidates: list[tuple] = []
    # Max-heap (negated) of candidates not yet decided-accept — the
    # undecidedness test needs the *largest* straddling candidate
    # (widest posterior interval), which the min-heap cannot expose.
    # Accept decisions are final (the denominator upper bound only
    # shrinks), so accepted candidates are popped permanently, mirroring
    # the reject pops above.
    undecided_heap: list[float] = []
    tiebreak = itertools.count()
    max_candidate_log = -math.inf

    while state.has_active_nodes:
        denom_low = state.denominator_low
        denom_high = state.denominator_high
        # Drop candidates whose best possible posterior is already below
        # the threshold (Figure 5's "delete unnecessary candidates").
        while candidates and _upper(state, candidates[0][0], denom_low) < p_theta:
            heapq.heappop(candidates)
        undecided = _any_undecided(
            state, undecided_heap, denom_low, denom_high, p_theta, tolerance
        )
        top_can_qualify = (
            _upper(state, state.top_log_upper, denom_low) >= p_theta
        )
        needs_probability = (
            probability_tolerance is not None
            and bool(candidates)
            and _upper(state, max_candidate_log, denom_low)
            - _lower(state, max_candidate_log, denom_high)
            > probability_tolerance
        )
        if not top_can_qualify and not undecided and not needs_probability:
            break
        expanded = state.pop_and_expand()
        if expanded is None:
            continue
        leaf, log_dens, best, columnar = expanded
        # Unlike MLIQ, every entry stays a candidate until the
        # denominator bounds decide it, so there is nothing to
        # prefilter — the vectorized win is skipping per-entry pfv
        # construction (and ndarray scalar boxing) for columnar leaves.
        if columnar:
            lds = log_dens.tolist()
            for i, ld in enumerate(lds):
                heapq.heappush(candidates, (ld, next(tiebreak), leaf, i))
                heapq.heappush(undecided_heap, -ld)
            if lds and best > max_candidate_log:
                max_candidate_log = best
        else:
            for vector, ld in zip(leaf.entries, log_dens):
                heapq.heappush(candidates, (float(ld), next(tiebreak), vector))
                heapq.heappush(undecided_heap, -float(ld))
                if float(ld) > max_candidate_log:
                    max_candidate_log = float(ld)

    matches = _classify(state, candidates, p_theta, tolerance)
    cost = store.cost_model
    vectorized = state.objects_refined_vectorized
    stats = QueryStats(
        pages_accessed=store.log.pages_accessed,
        page_faults=store.log.page_faults,
        objects_refined=state.objects_refined,
        nodes_expanded=state.nodes_expanded,
        cpu_seconds=time.perf_counter() - started,
        io_seconds=store.log.io_seconds,
        # Columnar-leaf refinements are priced at the vectorized rate,
        # the rest (interleaved or mutated pages) at the scalar rate.
        modeled_cpu_seconds=cost.modeled_cpu_seconds(
            state.objects_refined - vectorized, store.log.pages_accessed
        )
        + cost.modeled_cpu_seconds(vectorized, 0, vectorized=True),
        buffer_evictions=store.log.evictions,
    )
    return matches, stats


def _upper(state: SearchState, log_density: float, denom_low: float) -> float:
    """Best possible posterior of a density given the denominator bounds."""
    if log_density == -math.inf:
        return 0.0
    if denom_low <= 0.0:
        return 1.0
    return state.scaled_density(log_density) / denom_low


def _lower(state: SearchState, log_density: float, denom_high: float) -> float:
    """Worst possible posterior of a density."""
    if denom_high <= 0.0:
        return 0.0
    return state.scaled_density(log_density) / denom_high


def _any_undecided(
    state: SearchState,
    undecided_heap: list[float],
    denom_low: float,
    denom_high: float,
    p_theta: float,
    tolerance: float,
) -> bool:
    """Does any candidate still straddle the threshold undecidedly?

    A candidate is decided once its posterior interval lies entirely on
    one side of ``p_theta`` (accept/reject) or, with a positive
    ``tolerance``, once the interval is narrower than ``tolerance``
    (classified by midpoint). Because the posterior bounds and the
    interval width ``w * (1/denom_low - 1/denom_high)`` are all monotone
    *increasing* in the candidate's density ``w``, the candidates sort
    into three bands — rejected below, straddling in the middle, accepted
    above — and the *widest* straddling interval belongs to the largest
    straddling candidate. Testing the smallest candidate (as an earlier
    revision did) lets the traversal stop while large candidates still
    straddle with intervals far wider than ``tolerance``.

    ``undecided_heap`` holds negated log densities (a max-heap).
    Accept decisions are final — the denominator upper bound only
    shrinks, so posterior lower bounds only grow — which makes the
    accepted pops below permanent, keeping the whole bookkeeping
    O(n log n) over a query.
    """
    while undecided_heap:
        top = -undecided_heap[0]  # largest not-yet-accepted candidate
        if _lower(state, top, denom_high) >= p_theta:
            heapq.heappop(undecided_heap)  # decided-accept, final
            continue
        hi = _upper(state, top, denom_low)
        if hi < p_theta:
            return False  # it (and everything below) is decided-reject
        if tolerance > 0.0:
            width = hi - _lower(state, top, denom_high)
            if width <= tolerance:
                return False  # widest straddler classifiable by midpoint
        return True
    return False  # no candidates, or every candidate decided-accept


def _vector_of(item: tuple) -> PFV:
    """The pfv of a heap item, materializing deferred columnar entries."""
    if len(item) == 3:
        return item[2]
    return item[2].entry_at(item[3])


def _classify(
    state: SearchState,
    candidates: list[tuple],
    p_theta: float,
    tolerance: float,
) -> list[Match]:
    denom_low = state.denominator_low
    denom_high = state.denominator_high
    denom_mid = state.denominator_mid
    n = max(1, len(state.tree))
    matches: list[Match] = []
    for item in candidates:
        log_density = item[0]
        if denom_mid > 0.0:
            lo = _lower(state, log_density, denom_high)
            hi = _upper(state, log_density, denom_low)
            mid = min(1.0, state.scaled_density(log_density) / denom_mid)
        else:
            lo = hi = mid = 1.0 / n  # all densities underflowed: uniform
        if lo >= p_theta:
            accepted = True
        elif hi < p_theta:
            accepted = False
        else:
            # Interval straddles the threshold; only reachable when a
            # positive tolerance allowed the traversal to stop early.
            accepted = tolerance > 0.0 and mid >= p_theta
        if accepted:
            matches.append(Match(_vector_of(item), log_density, mid))
    matches.sort(key=lambda m: -m.probability)
    return matches
