"""Threshold identification queries on the Gauss-tree (Section 5.2.3).

Follows the paper's Figure 5: the traversal maintains, next to the
priority queue, a candidate set of refined objects and the running bounds
of the Bayes denominator. A candidate is *rejected* as soon as its best
possible posterior (density over the denominator's lower bound) falls
below the threshold; it is *accepted* once its worst possible posterior
(density over the denominator's upper bound) reaches the threshold. The
traversal stops when no unexplored subtree can still contain a qualifying
object and every candidate is decided.

Both denominator bounds are monotone (the lower bound only grows, the
upper only shrinks as nodes are expanded), so reject/accept decisions are
final and the algorithm terminates — at the latest when the queue is
drained, at which point the denominator is exact. With the default
``tolerance = 0.0`` the result set is therefore *identical* to the
sequential scan's, which the property tests assert.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

from repro.core.pfv import PFV
from repro.core.queries import Match, QueryStats, ThresholdQuery
from repro.gausstree.search import SearchState

__all__ = ["gausstree_tiq"]


def gausstree_tiq(
    tree,
    query: ThresholdQuery,
    tolerance: float = 0.0,
    probability_tolerance: float | None = None,
) -> tuple[list[Match], QueryStats]:
    """Answer a TIQ on a Gauss-tree.

    ``tolerance`` is the paper's optional accuracy specification for the
    *decision*: a candidate whose posterior interval straddles the
    threshold but is narrower than ``tolerance`` is classified by the
    interval midpoint instead of forcing further page reads. ``0.0``
    gives the exact answer set.

    ``probability_tolerance`` additionally bounds the width of every
    *reported* posterior (the paper's "report the actual probabilities
    ... at a specified accuracy", Section 5.2.3 last paragraph); ``None``
    reports best-effort interval midpoints without extra page reads.
    """
    store = tree.store
    store.begin_query()
    started = time.perf_counter()
    state = SearchState(tree, query.q)
    p_theta = query.p_theta

    # Min-heap by log density: rejections always happen at the low end
    # because the denominator lower bound grows monotonically.
    candidates: list[tuple[float, int, PFV]] = []
    tiebreak = itertools.count()
    max_candidate_log = -math.inf

    while state.has_active_nodes:
        denom_low = state.denominator_low
        denom_high = state.denominator_high
        # Drop candidates whose best possible posterior is already below
        # the threshold (Figure 5's "delete unnecessary candidates").
        while candidates and _upper(state, candidates[0][0], denom_low) < p_theta:
            heapq.heappop(candidates)
        undecided = bool(candidates) and not _decided_accept(
            state, candidates[0][0], denom_high, p_theta, tolerance, denom_low
        )
        top_can_qualify = (
            _upper(state, state.top_log_upper, denom_low) >= p_theta
        )
        needs_probability = (
            probability_tolerance is not None
            and bool(candidates)
            and _upper(state, max_candidate_log, denom_low)
            - _lower(state, max_candidate_log, denom_high)
            > probability_tolerance
        )
        if not top_can_qualify and not undecided and not needs_probability:
            break
        expanded = state.pop_and_expand()
        if expanded is None:
            continue
        leaf, log_dens = expanded
        for vector, ld in zip(leaf.entries, log_dens):
            heapq.heappush(candidates, (float(ld), next(tiebreak), vector))
            if float(ld) > max_candidate_log:
                max_candidate_log = float(ld)

    matches = _classify(state, candidates, p_theta, tolerance)
    stats = QueryStats(
        pages_accessed=store.log.pages_accessed,
        page_faults=store.log.page_faults,
        objects_refined=state.objects_refined,
        nodes_expanded=state.nodes_expanded,
        cpu_seconds=time.perf_counter() - started,
        io_seconds=store.log.io_seconds,
        modeled_cpu_seconds=store.cost_model.modeled_cpu_seconds(
            state.objects_refined, store.log.pages_accessed
        ),
    )
    return matches, stats


def _upper(state: SearchState, log_density: float, denom_low: float) -> float:
    """Best possible posterior of a density given the denominator bounds."""
    if log_density == -math.inf:
        return 0.0
    if denom_low <= 0.0:
        return 1.0
    return state.scaled_density(log_density) / denom_low


def _lower(state: SearchState, log_density: float, denom_high: float) -> float:
    """Worst possible posterior of a density."""
    if denom_high <= 0.0:
        return 0.0
    return state.scaled_density(log_density) / denom_high


def _decided_accept(
    state: SearchState,
    log_density: float,
    denom_high: float,
    p_theta: float,
    tolerance: float,
    denom_low: float,
) -> bool:
    """Is the *smallest* surviving candidate definitely in the answer?

    Posterior lower bounds are monotone in the density, so if the smallest
    candidate is decided-accept, every candidate is.
    """
    lo = _lower(state, log_density, denom_high)
    if lo >= p_theta:
        return True
    if tolerance > 0.0:
        hi = _upper(state, log_density, denom_low)
        if hi - lo <= tolerance:
            return True  # classified by midpoint in _classify
    return False


def _classify(
    state: SearchState,
    candidates: list[tuple[float, int, PFV]],
    p_theta: float,
    tolerance: float,
) -> list[Match]:
    denom_low = state.denominator_low
    denom_high = state.denominator_high
    denom_mid = state.denominator_mid
    n = max(1, len(state.tree))
    matches: list[Match] = []
    for log_density, _, vector in candidates:
        if denom_mid > 0.0:
            lo = _lower(state, log_density, denom_high)
            hi = _upper(state, log_density, denom_low)
            mid = min(1.0, state.scaled_density(log_density) / denom_mid)
        else:
            lo = hi = mid = 1.0 / n  # all densities underflowed: uniform
        if lo >= p_theta:
            accepted = True
        elif hi < p_theta:
            accepted = False
        else:
            # Interval straddles the threshold; only reachable when a
            # positive tolerance allowed the traversal to stop early.
            accepted = tolerance > 0.0 and mid >= p_theta
        if accepted:
            matches.append(Match(vector, log_density, mid))
    matches.sort(key=lambda m: -m.probability)
    return matches
