"""The Gauss-tree (Section 5): structure, insertion, split, deletion.

A balanced R-tree-family index over the *parameter space* of the stored
Gaussians. Definition 4 fixes the structure for a degree ``M``:

* leaves hold between ``M`` and ``2 M`` pfv (the root may hold fewer);
* inner nodes hold between ``ceil(M/2)`` and ``M`` children
  (the root at least 2 once it is an inner node);
* all leaves are on the same level.

Insertion follows Section 5.3's path-selection rules verbatim:

1. if the new pfv fits into exactly one child MBR, follow it;
2. if it fits into none, follow the child needing the least volume
   enlargement (margin as tie-breaker for degenerate boxes);
3. if it fits into several, follow *all* fitting paths and use the leaf
   where it fits exactly, or failing that the reachable leaf with the
   least enlargement.

Overflowing nodes are split by the hull-integral-minimising median split of
:mod:`repro.gausstree.split`. Deletion (not described in the paper, added
for library completeness) uses the classic R-tree condense: underfull nodes
are dissolved and their entries reinserted.

Query processing lives in :mod:`repro.gausstree.mliq` and
:mod:`repro.gausstree.tiq`; :class:`GaussTree` exposes them as methods.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Optional

from repro.core.joint import SigmaRule
from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.integral import log_split_quality
from repro.gausstree.node import InnerNode, LeafNode, Node
from repro.gausstree.split import split_children, split_entries
from repro.storage.layout import PageLayout
from repro.storage.pagestore import PageStore

__all__ = ["GaussTree"]


class GaussTree:
    """A Gauss-tree of degree ``M`` over ``d``-dimensional pfv.

    Parameters
    ----------
    dims:
        Dimensionality ``d`` of the stored pfv.
    degree:
        The degree ``M`` of Definition 4. If omitted it is derived from
        ``layout`` (or a default 8 KiB page layout).
    layout:
        Page layout that ties capacities to a simulated page size.
    page_store:
        Storage accounting backend; a private one is created if omitted.
    sigma_rule:
        How query and object uncertainties combine (see
        :class:`~repro.core.joint.SigmaRule`); must match the rule used by
        any sequential scan the results are compared against.
    split_quality:
        Log access-probability score minimised by splits; the default is
        the paper's hull integral, the ablation benchmark passes the naive
        volume score instead.
    """

    def __init__(
        self,
        dims: int,
        degree: int | None = None,
        layout: PageLayout | None = None,
        page_store: PageStore | None = None,
        sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
        split_quality: Callable[[ParameterRect], float] = log_split_quality,
    ) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if layout is None:
            layout = PageLayout(dims=dims)
        elif layout.dims != dims:
            raise ValueError(
                f"layout is for d={layout.dims}, tree is d={dims}"
            )
        if degree is None:
            degree = min(layout.leaf_capacity // 2, layout.inner_capacity)
        if degree < 2:
            raise ValueError(f"degree M must be >= 2, got {degree}")
        self.dims = dims
        self.degree = degree
        self.layout = layout
        self.store = page_store if page_store is not None else PageStore()
        self.sigma_rule = sigma_rule
        self.split_quality = split_quality
        self.root: Node = LeafNode(self.store.allocate())
        #: Planner hint set by bulk loading and by :meth:`open` on
        #: format-v3 files: leaves are columnar, so ``explain()`` prices
        #: refinement at the cost model's vectorized rate. Individual
        #: leaves still answer for themselves at query time
        #: (``LeafNode.is_columnar``) — a mutated leaf decolumnarizes
        #: without touching this flag.
        self.vectorized_leaves = False
        #: Set by :meth:`open` for format-v1 files, which have no free
        #: list and therefore no write path.
        self.read_only = False
        #: Attached by :meth:`open` with ``writable=True``: commits every
        #: mutation through the write-ahead log (see
        #: :class:`~repro.gausstree.persist.TreeWriter`).
        self._writer = None
        # Nodes whose pages the current mutation dirtied; None when no
        # writer is attached (in-memory trees pay one `is None` check).
        self._dirty_nodes: set[Node] | None = None
        # Reader-presence mark held by read-only opens so
        # `repro reshard-gc` can see live readers; set by open_tree,
        # released in close().
        self._reader_lock = None

    # -- capacities (Definition 4) ------------------------------------------

    @property
    def leaf_min(self) -> int:
        return self.degree

    @property
    def leaf_max(self) -> int:
        return 2 * self.degree

    @property
    def inner_min(self) -> int:
        # Definition 4: inner nodes hold between M/2 and M children (for
        # M=2 that legitimately allows single-child inner nodes).
        return max(1, math.ceil(self.degree / 2))

    @property
    def inner_max(self) -> int:
        return self.degree

    # -- bookkeeping ----------------------------------------------------------

    def __len__(self) -> int:
        return self.root.count

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone root leaf)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            h += 1
        return h

    def nodes(self) -> Iterator[Node]:
        """All nodes, pre-order."""
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[attr-defined]

    def leaves(self) -> Iterator[LeafNode]:
        for node in self.nodes():
            if node.is_leaf:
                yield node  # type: ignore[misc]

    def __iter__(self) -> Iterator[PFV]:
        """All stored pfv (no particular order)."""
        for leaf in self.leaves():
            yield from leaf.entries

    # -- write-path bookkeeping ----------------------------------------------

    def attach_writer(self, writer) -> None:
        """Wire a :class:`~repro.gausstree.persist.TreeWriter` in: every
        mutation marks the nodes whose pages it touched and commits them
        as one WAL transaction when the operation completes."""
        self._writer = writer
        self._dirty_nodes = set()
        self.read_only = False

    def _mark_dirty(self, *nodes: Node) -> None:
        if self._dirty_nodes is not None:
            self._dirty_nodes.update(nodes)

    def _commit_mutation(self) -> None:
        if self._writer is not None:
            # Cleared only after the commit lands: if it raises (ENOSPC,
            # injected crash) the marks survive, so a caller that keeps
            # the tree re-logs these pages with its next operation
            # instead of silently never persisting them.
            self._writer.commit(self._dirty_nodes)
            self._dirty_nodes = set()
            # After the marks are cleared, so a WAL-size-triggered
            # checkpoint never re-commits the operation it just sealed.
            self._writer.maybe_auto_checkpoint()

    # -- insertion -------------------------------------------------------------

    def insert(self, v: PFV) -> None:
        """Insert one pfv (Section 5.3 path selection + median split).

        On a writable disk-opened tree the operation is committed to the
        write-ahead log before returning (durable once ``insert``
        returns, under the tree's fsync setting)."""
        self._check_writable()
        if self._writer is not None:
            # Fail unsupported key types *before* mutating anything, so a
            # bad key cannot wedge every later commit.
            from repro.gausstree.persist import _encode_key

            _encode_key(v.key)
        self._insert_impl(v)
        self._commit_mutation()

    def _insert_impl(self, v: PFV) -> None:
        if v.dims != self.dims:
            raise ValueError(f"vector is {v.dims}-d, tree is {self.dims}-d")
        leaf = self._choose_leaf(v)
        leaf.add(v)
        self._mark_dirty(leaf)
        node: Optional[InnerNode] = leaf.parent
        while node is not None:
            assert node.rect is not None
            node.rect.extend_vector(v)
            node.invalidate_count()
            self._mark_dirty(node)
            node = node.parent
        if len(leaf.entries) > self.leaf_max:
            self._handle_overflow(leaf)

    def extend(self, vectors: Iterable[PFV]) -> None:
        """Insert vectors one by one (each durable per operation on a
        writable disk tree; use :meth:`insert_many` for group commit)."""
        for v in vectors:
            self.insert(v)

    def insert_many(self, vectors: Iterable[PFV]) -> int:
        """Insert a batch of pfv as **one group-commit transaction**.

        On a writable disk-opened tree the whole batch is sealed by a
        single WAL ``COMMIT`` and a single fsync, and every page the
        batch dirtied is logged once (latest image) instead of once per
        insert — amortising the full-page-image cost that makes per-op
        :meth:`insert` ~30 KB of WAL per call. Durability is
        all-or-nothing: after a crash either every insert of the batch
        is recovered or none is (never a partial batch), which the
        crash-injection harness asserts. On an in-memory tree this is
        simply a loop. Returns the number of vectors inserted.
        """
        self._check_writable()
        batch = list(vectors)
        for v in batch:  # fail fast *before* mutating anything
            if v.dims != self.dims:
                raise ValueError(
                    f"vector is {v.dims}-d, tree is {self.dims}-d"
                )
        if self._writer is not None:
            from repro.gausstree.persist import _encode_key

            for v in batch:
                _encode_key(v.key)
        for v in batch:
            self._insert_impl(v)
        # One commit for the whole batch: the dirty-node union reaches
        # the WAL as a single transaction (see TreeWriter.commit).
        self._commit_mutation()
        return len(batch)

    def _choose_leaf(self, v: PFV) -> LeafNode:
        leaf, _fits, _cost = self._descend(self.root, v)
        return leaf

    def _descend(
        self, node: Node, v: PFV
    ) -> tuple[LeafNode, bool, tuple[float, float]]:
        """Return ``(leaf, fits_exactly, enlargement_cost)`` below ``node``."""
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            if leaf.rect is None:
                return leaf, True, (-math.inf, 0.0)
            if leaf.rect.contains_vector(v):
                return leaf, True, (-math.inf, 0.0)
            return leaf, False, leaf.rect.enlargement_for_vector(v)
        inner: InnerNode = node  # type: ignore[assignment]
        containing = [
            c
            for c in inner.children
            if c.rect is not None and c.rect.contains_vector(v)
        ]
        if containing:
            # Rule 3: follow all fitting paths, prefer an exactly fitting
            # leaf; among equals, the leaf with the fewest entries.
            best_key: tuple | None = None
            best: tuple[LeafNode, bool, tuple[float, float]] | None = None
            for child in containing:
                leaf, fits, cost = self._descend(child, v)
                key = (not fits, cost, len(leaf.entries))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (leaf, fits, cost)
            assert best is not None
            return best
        # Rule 2: no child fits — greedy least enlargement (log-space
        # volume, then margin for degenerate boxes, then the smaller box).
        def child_cost(c: Node) -> tuple[float, float, float]:
            assert c.rect is not None
            d_log_vol, d_margin = c.rect.enlargement_for_vector(v)
            return (d_log_vol, d_margin, c.rect.log_volume())

        best_child = min(inner.children, key=child_cost)
        return self._descend(best_child, v)

    # -- overflow / split --------------------------------------------------------

    def _handle_overflow(self, node: Node) -> None:
        while True:
            if node.is_leaf:
                if node.count <= self.leaf_max:
                    return
                new_node: Node = self._split_leaf(node)  # type: ignore[arg-type]
            else:
                if len(node.children) <= self.inner_max:  # type: ignore[attr-defined]
                    return
                new_node = self._split_inner(node)  # type: ignore[arg-type]
            self._mark_dirty(node, new_node)
            parent = node.parent
            if parent is None:
                new_root = InnerNode(self.store.allocate())
                new_root.add_child(node)
                new_root.add_child(new_node)
                self.root = new_root
                self._mark_dirty(new_root)
                return
            parent.refresh_rect()
            parent.add_child(new_node)
            self._mark_dirty(parent)
            node = parent

    def _split_leaf(self, leaf: LeafNode) -> LeafNode:
        left, right, _score = split_entries(
            leaf.entries, self.leaf_min, self.split_quality
        )
        leaf.replace_entries(left)
        sibling = LeafNode(self.store.allocate())
        sibling.replace_entries(right)
        self.store.buffer.invalidate(leaf.page_id)
        return sibling

    def _split_inner(self, inner: InnerNode) -> InnerNode:
        left, right, _score = split_children(
            inner.children, self.inner_min, self.split_quality
        )
        inner.replace_children(left)
        sibling = InnerNode(self.store.allocate())
        sibling.replace_children(right)
        self.store.buffer.invalidate(inner.page_id)
        return sibling

    # -- deletion ---------------------------------------------------------------

    def delete(self, v: PFV) -> bool:
        """Remove one pfv equal to ``v``; returns whether it was found.

        Not part of the paper; uses R-tree condense semantics (underfull
        nodes dissolve, entries reinsert) so all Definition-4 invariants
        keep holding — the property tests insert and delete randomly and
        re-validate.
        """
        self._check_writable()
        found = self._find_entry(self.root, v)
        if found is None:
            return False
        leaf, index = found
        leaf.remove_at(index)
        self._mark_dirty(leaf)
        if leaf.parent is not None:
            leaf.parent.invalidate_count()
        self._condense(leaf)
        self._commit_mutation()
        return True

    def _find_entry(
        self, node: Node, v: PFV
    ) -> tuple[LeafNode, int] | None:
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            for i, e in enumerate(leaf.entries):
                if e == v:
                    return leaf, i
            return None
        inner: InnerNode = node  # type: ignore[assignment]
        for child in inner.children:
            if child.rect is not None and child.rect.contains_vector(v):
                hit = self._find_entry(child, v)
                if hit is not None:
                    return hit
        return None

    def _collect_entries(self, node: Node, out: list[PFV]) -> None:
        if node.is_leaf:
            out.extend(node.entries)  # type: ignore[attr-defined]
            self.store.free(node.page_id)
            return
        for child in node.children:  # type: ignore[attr-defined]
            self._collect_entries(child, out)
        self.store.free(node.page_id)

    def _condense(self, leaf: LeafNode) -> None:
        orphans: list[PFV] = []
        node: Node = leaf
        while node.parent is not None:
            parent = node.parent
            if node.is_leaf:
                underfull = node.count < self.leaf_min
            else:
                underfull = len(node.children) < self.inner_min  # type: ignore[attr-defined]
            if underfull:
                parent.remove_child(node)
                self._collect_entries(node, orphans)
            else:
                node.refresh_rect()
                parent.invalidate_count()  # child rect tightened: stale caches
            # Either way the parent's page changed: a child entry left,
            # or the child's stored MBR/cardinality moved.
            self._mark_dirty(parent)
            node = parent
        node.refresh_rect()  # tighten the root
        # Collapse a degenerate inner root.
        while (
            not self.root.is_leaf
            and len(self.root.children) == 1  # type: ignore[attr-defined]
        ):
            child = self.root.children[0]  # type: ignore[attr-defined]
            child.parent = None
            self.store.free(self.root.page_id)
            self.root = child
        if not self.root.is_leaf and not self.root.children:  # type: ignore[attr-defined]
            self.store.free(self.root.page_id)
            self.root = LeafNode(self.store.allocate())
            self._mark_dirty(self.root)
        # Reinserts ride inside the same logical operation (and the same
        # WAL transaction): _insert_impl, not insert.
        for orphan in orphans:
            self._insert_impl(orphan)

    def _check_writable(self) -> None:
        if self.read_only:
            raise RuntimeError(
                "this Gauss-tree was opened from disk and is read-only; "
                "open it with writable=True (formats v2/v3) to change "
                "its contents"
            )

    # -- persistence ---------------------------------------------------------------

    def save(self, path, *, version: int | None = None) -> None:
        """Write the tree to ``path`` as a self-describing index file.

        The file holds the same byte-faithful pages the simulated
        accounting assumes (see :mod:`repro.storage.serializer`) plus a
        header and a key table; :meth:`open` maps it back. Page ids are
        re-assigned densely on save, so a save/open round trip is also a
        compaction.

        ``version`` picks the disk format: 3 writes columnar leaf pages,
        2 the interleaved v2 encoding for older readers; both give
        identical query answers and page accounting. The default
        (``None``) writes the current format — except for a writable
        disk-opened tree, which keeps its own file's format (pass
        ``version=3`` explicitly to upgrade a v2 file).

        A tree with an attached writable store flushes its write-ahead
        log first: committed-but-unbuffered state must reach the main
        file and the WAL must empty *before* the target is replaced,
        otherwise reopening would replay stale page images over the
        freshly saved file. Saving a writable tree over its own file
        additionally rebinds the in-memory nodes to the compacted page
        ids, so the tree stays writable afterwards.
        """
        import os as _os

        from repro.gausstree.persist import FORMAT_VERSION, save_tree

        if self._writer is not None:
            self.flush()
        if version is None:
            version = (
                self._writer.format_version
                if self._writer is not None
                else FORMAT_VERSION
            )
        saved = save_tree(
            self,
            path,
            version=version,
            _writer_lock=(
                self._writer._lock if self._writer is not None else None
            ),
        )
        # realpath, not abspath: saving through a symlink to the backing
        # file still replaces the inode under the store and must rebind.
        if self._writer is not None and _os.path.realpath(
            _os.fspath(path)
        ) == _os.path.realpath(self.store.path):
            self._writer.rebind_after_save(saved)

    @classmethod
    def open(
        cls,
        path,
        buffer=None,
        cost_model=None,
        *,
        writable: bool = False,
        fsync: bool = True,
        auto_checkpoint_bytes: int | None = None,
        file_factory=open,
    ) -> "GaussTree":
        """Open an index file saved by :meth:`save`.

        Nodes materialize lazily from page bytes through a
        :class:`~repro.storage.filestore.FilePageStore`; queries on the
        opened tree read real pages through the buffer while reporting
        the same logical page-access counts as the in-memory tree.

        By default the returned tree is read-only. With
        ``writable=True`` (format v2/v3 files) ``insert``/``delete`` work
        and are durable per operation through the write-ahead log; call
        :meth:`flush` or :meth:`close` to checkpoint into the main file.
        A WAL left behind by a crashed writer is replayed on open.

        ``auto_checkpoint_bytes`` (writable only) bounds the sidecar
        WAL: whenever a committed operation leaves the WAL at or above
        this many bytes, the tree checkpoints immediately — so crash
        recovery never replays more than roughly this much log. Default
        ``None`` keeps the explicit flush()/close() discipline.
        """
        from repro.gausstree.persist import open_tree

        return open_tree(
            path,
            buffer=buffer,
            cost_model=cost_model,
            writable=writable,
            fsync=fsync,
            auto_checkpoint_bytes=auto_checkpoint_bytes,
            file_factory=file_factory,
        )

    def flush(self) -> None:
        """Checkpoint a writable disk-opened tree (no-op otherwise).

        Publishes every committed page image, the key table and the
        header as a new main-file generation (atomic rename — readers
        already open keep their pre-checkpoint snapshot), then empties
        the WAL.
        """
        if self._writer is not None:
            self._writer.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Release the backing file of a disk-opened tree (no-op otherwise).

        A writable tree checkpoints first unless ``checkpoint=False``
        (the committed state is still safe in the WAL and will be
        replayed on the next open — the crash-recovery path, which the
        recovery benchmark and tests exercise deliberately).
        """
        try:
            if self._writer is not None:
                self._writer.close(checkpoint=checkpoint)
        finally:
            try:
                close = getattr(self.store, "close", None)
                if close is not None:
                    close()
            finally:
                if self._reader_lock is not None:
                    self._reader_lock.release()
                    self._reader_lock = None

    # -- queries ------------------------------------------------------------------

    @staticmethod
    def _warn_deprecated(old: str, new: str) -> None:
        import warnings

        warnings.warn(
            f"GaussTree.{old} is deprecated; use "
            f"repro.connect(...).{new} through the session API instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def mliq(
        self, query: MLIQuery, tolerance: float = 1e-9
    ) -> tuple[list[Match], QueryStats]:
        """k-most-likely identification query (Sections 5.2.1-5.2.2).

        Deprecated entry point: connect the tree through
        ``repro.connect`` (or ``repro.engine.session_for(tree)``) and
        ``execute(MLIQ(q, k))`` instead.
        """
        from repro.gausstree.mliq import gausstree_mliq

        self._warn_deprecated("mliq", "execute(MLIQ(q, k))")
        return gausstree_mliq(self, query, tolerance=tolerance)

    def tiq(
        self,
        query: ThresholdQuery,
        tolerance: float = 0.0,
        probability_tolerance: float | None = None,
    ) -> tuple[list[Match], QueryStats]:
        """Threshold identification query (Section 5.2.3).

        Deprecated entry point: use the session API
        (``execute(TIQ(q, tau))``) instead.
        """
        from repro.gausstree.tiq import gausstree_tiq

        self._warn_deprecated("tiq", "execute(TIQ(q, tau))")
        return gausstree_tiq(
            self,
            query,
            tolerance=tolerance,
            probability_tolerance=probability_tolerance,
        )

    def mliq_many(
        self, queries: Iterable[MLIQuery], tolerance: float = 1e-9
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of k-MLIQs in one buffer-warm pass.

        Per-query results are identical to :meth:`mliq`; the batch shares
        the page cache and vectorizes per-node refinement across queries
        (see :mod:`repro.gausstree.batch`). Returns ``(per-query match
        lists, aggregate stats)``. Deprecated entry point: use the
        session API (``execute_many``) instead.
        """
        from repro.gausstree.batch import gausstree_mliq_many

        self._warn_deprecated("mliq_many", "execute_many([MLIQ(...), ...])")
        return gausstree_mliq_many(self, list(queries), tolerance=tolerance)

    def tiq_many(
        self,
        queries: Iterable[ThresholdQuery],
        tolerance: float = 0.0,
        probability_tolerance: float | None = None,
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of TIQs in one buffer-warm pass (see
        :meth:`mliq_many`). Deprecated entry point: use the session API
        (``execute_many``) instead."""
        from repro.gausstree.batch import gausstree_tiq_many

        self._warn_deprecated("tiq_many", "execute_many([TIQ(...), ...])")
        return gausstree_tiq_many(
            self,
            list(queries),
            tolerance=tolerance,
            probability_tolerance=probability_tolerance,
        )

    # -- validation ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every Definition-4 invariant; raises AssertionError.

        Checked: uniform leaf depth, fill bounds (root exempt), tight and
        containing MBRs, parent pointers, cached subtree counts.
        """
        leaf_depths: set[int] = set()
        self._check_node(self.root, depth=0, leaf_depths=leaf_depths)
        assert len(leaf_depths) <= 1, f"leaves at depths {sorted(leaf_depths)}"

    def _check_node(self, node: Node, depth: int, leaf_depths: set[int]) -> None:
        is_root = node is self.root
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            leaf_depths.add(depth)
            if not is_root:
                assert leaf.count >= self.leaf_min, (
                    f"leaf underfull: {leaf.count} < {self.leaf_min}"
                )
            assert leaf.count <= self.leaf_max, (
                f"leaf overfull: {leaf.count} > {self.leaf_max}"
            )
            if leaf.entries:
                tight = ParameterRect.of_vectors(leaf.entries)
                assert leaf.rect == tight, "leaf MBR is not tight"
            else:
                assert leaf.rect is None and is_root, "empty non-root leaf"
            return
        inner: InnerNode = node  # type: ignore[assignment]
        k = len(inner.children)
        if is_root:
            assert k >= 2, f"inner root with {k} children"
        else:
            assert k >= self.inner_min, f"inner underfull: {k} < {self.inner_min}"
        assert k <= self.inner_max, f"inner overfull: {k} > {self.inner_max}"
        tight = ParameterRect.of_rects(
            [c.rect for c in inner.children if c.rect is not None]
        )
        assert inner.rect == tight, "inner MBR is not tight"
        assert inner.count == sum(c.count for c in inner.children), (
            "cached subtree count is stale"
        )
        for child in inner.children:
            assert child.parent is inner, "broken parent pointer"
            assert child.rect is not None and inner.rect.contains_rect(child.rect)
            self._check_node(child, depth + 1, leaf_depths)

    def __repr__(self) -> str:
        return (
            f"GaussTree(d={self.dims}, M={self.degree}, n={len(self)}, "
            f"height={self.height})"
        )
