"""The Gauss-tree index (Section 5 of the paper).

Submodules
----------
``bounds``    — parameter-space MBRs over ``(mu, sigma)`` (Definition 4).
``hull``      — Lemma 2 upper hull and Lemma 3 lower bound.
``integral``  — hull integrals and the split-quality score (Section 5.3).
``node``      — leaf and inner node structures.
``split``     — median split minimising the hull integral (Section 5.3).
``tree``      — the GaussTree: insert / delete / invariants.
``bulkload``  — sort-based packing loader (extension).
``search``    — shared best-first traversal + denominator bounds.
``mliq``      — k-most-likely identification queries (Sections 5.2.1-2).
``tiq``       — threshold identification queries (Section 5.2.3).
``batch``     — batch query APIs amortizing traversal across queries.
``persist``   — save/open of a tree as a single paged index file;
                writable opens with WAL durability and crash recovery.
"""

from repro.gausstree.batch import (
    BatchRefiner,
    gausstree_mliq_many,
    gausstree_tiq_many,
)
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.hull import (
    hull_lower,
    hull_upper,
    log_hull_lower,
    log_hull_upper,
    node_log_bounds,
    node_log_upper,
)
from repro.gausstree.integral import hull_integral, hull_integral_total
from repro.gausstree.mliq import gausstree_mliq
from repro.gausstree.persist import open_tree, recover_index, save_tree
from repro.gausstree.tiq import gausstree_tiq
from repro.gausstree.tree import GaussTree

__all__ = [
    "GaussTree",
    "ParameterRect",
    "BatchRefiner",
    "bulk_load",
    "gausstree_mliq",
    "gausstree_tiq",
    "gausstree_mliq_many",
    "gausstree_tiq_many",
    "save_tree",
    "open_tree",
    "recover_index",
    "hull_lower",
    "hull_upper",
    "log_hull_lower",
    "log_hull_upper",
    "node_log_bounds",
    "node_log_upper",
    "hull_integral",
    "hull_integral_total",
]
