"""Conservative density bounds of a Gauss-tree node (Lemmas 2 and 3).

For query processing the Gauss-tree needs, per node, the *maximum* and
*minimum* density that any Gaussian whose parameters lie inside the node's
:class:`~repro.gausstree.bounds.ParameterRect` could contribute at a point:

* **Upper hull** ``N^(x) = max { N_{mu,sigma}(x) : mu in [mu_lo, mu_hi],
  sigma in [sigma_lo, sigma_hi] }`` — Lemma 2's seven-case piecewise
  closed form. The seven cases collapse to one expression: with
  ``t = dist(x, [mu_lo, mu_hi])`` (0 inside the mu interval), the
  maximising parameters are ``mu* = clamp(x)`` and
  ``sigma* = clamp(t, sigma_lo, sigma_hi)`` — the clamp reproduces exactly
  the paper's case split (I/VII: t > sigma_hi; II/VI: sigma_lo <= t <=
  sigma_hi where the hull is ``1/(sqrt(2 pi e) t)``; III/V: t < sigma_lo;
  IV: t = 0). The unit tests verify the collapsed form against a brute
  grid maximisation and against the seven literal cases.

* **Lower bound** ``N_(x)`` — Lemma 3: the minimum is attained at one of
  the four corners of the ``(mu, sigma)`` rectangle, because for fixed
  ``x`` the density has a single interior maximum in ``(mu, sigma)`` and
  no interior minimum.

For a *query pfv* ``q`` (uncertain itself), Section 5.2 notes that the
bounds are simply evaluated with the sigma interval shifted by the query's
uncertainty: combine ``sigma_q`` into both sigma bounds (via the database's
:class:`~repro.core.joint.SigmaRule` — both rules are monotone in
``sigma_v``, so interval endpoints map to interval endpoints) and evaluate
at ``mu_q``. Multivariate bounds multiply per dimension (independence),
i.e. *sum* in log space.
"""

from __future__ import annotations

import numpy as np

from repro.core.gaussian import LOG_SQRT_TWO_PI
from repro.core.joint import SigmaRule, combine_sigma
from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect

__all__ = [
    "log_hull_upper",
    "log_hull_lower",
    "hull_upper",
    "hull_lower",
    "node_log_bounds",
    "node_log_upper",
    "node_log_bounds_batch",
    "node_log_bounds_multi",
]


def _as_arrays(*vals: object) -> tuple[np.ndarray, ...]:
    return tuple(np.asarray(v, dtype=np.float64) for v in vals)


def log_hull_upper(
    x: np.ndarray | float,
    mu_lo: np.ndarray | float,
    mu_hi: np.ndarray | float,
    sigma_lo: np.ndarray | float,
    sigma_hi: np.ndarray | float,
) -> np.ndarray:
    """Log of Lemma 2's upper hull, elementwise over broadcast inputs."""
    x, mu_lo, mu_hi, sigma_lo, sigma_hi = _as_arrays(
        x, mu_lo, mu_hi, sigma_lo, sigma_hi
    )
    if np.any(sigma_lo <= 0.0):
        raise ValueError("sigma_lo must be strictly positive")
    # Distance of x to the mu interval; 0 when x lies inside it (case IV).
    t = np.maximum(np.maximum(mu_lo - x, x - mu_hi), 0.0)
    sigma_star = np.clip(t, sigma_lo, sigma_hi)
    z = t / sigma_star
    return -0.5 * z * z - np.log(sigma_star) - LOG_SQRT_TWO_PI


def hull_upper(
    x: np.ndarray | float,
    mu_lo: np.ndarray | float,
    mu_hi: np.ndarray | float,
    sigma_lo: np.ndarray | float,
    sigma_hi: np.ndarray | float,
) -> np.ndarray:
    """Linear-space Lemma 2 hull ``N^(x)``."""
    return np.exp(log_hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))


def log_hull_lower(
    x: np.ndarray | float,
    mu_lo: np.ndarray | float,
    mu_hi: np.ndarray | float,
    sigma_lo: np.ndarray | float,
    sigma_hi: np.ndarray | float,
) -> np.ndarray:
    """Log of Lemma 3's lower bound: min over the four (mu, sigma) corners."""
    x, mu_lo, mu_hi, sigma_lo, sigma_hi = _as_arrays(
        x, mu_lo, mu_hi, sigma_lo, sigma_hi
    )
    if np.any(sigma_lo <= 0.0):
        raise ValueError("sigma_lo must be strictly positive")
    # The farthest mu corner minimises the exponent for either sigma, so
    # only two of the four corners can attain the minimum (the "even easier
    # method" remarked below Lemma 3) — we still write it as a min over all
    # four for clarity; numpy fuses it anyway.
    result = None
    for mu_c in (mu_lo, mu_hi):
        z = (x - mu_c) / sigma_lo
        cand = -0.5 * z * z - np.log(sigma_lo) - LOG_SQRT_TWO_PI
        result = cand if result is None else np.minimum(result, cand)
        z = (x - mu_c) / sigma_hi
        cand = -0.5 * z * z - np.log(sigma_hi) - LOG_SQRT_TWO_PI
        result = np.minimum(result, cand)
    return result


def hull_lower(
    x: np.ndarray | float,
    mu_lo: np.ndarray | float,
    mu_hi: np.ndarray | float,
    sigma_lo: np.ndarray | float,
    sigma_hi: np.ndarray | float,
) -> np.ndarray:
    """Linear-space Lemma 3 lower bound ``N_(x)``."""
    return np.exp(log_hull_lower(x, mu_lo, mu_hi, sigma_lo, sigma_hi))


def node_log_upper(
    rect: ParameterRect, q: PFV, rule: SigmaRule = SigmaRule.CONVOLUTION
) -> float:
    """Log upper bound of ``p(q | v)`` over all pfv ``v`` inside ``rect``.

    This is the priority ``a.prio(q)`` of Section 5.2.1: the product over
    dimensions of the hull evaluated at ``mu_q`` with query-combined sigma
    bounds.
    """
    s_lo = combine_sigma(rect.sigma_lo, q.sigma, rule)
    s_hi = combine_sigma(rect.sigma_hi, q.sigma, rule)
    per_dim = log_hull_upper(q.mu, rect.mu_lo, rect.mu_hi, s_lo, s_hi)
    return float(np.sum(per_dim))


def node_log_bounds_batch(
    mu_lo: np.ndarray,
    mu_hi: np.ndarray,
    sigma_lo: np.ndarray,
    sigma_hi: np.ndarray,
    q: PFV,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`node_log_bounds` for ``k`` sibling rectangles.

    All four bound arrays have shape ``(k, d)``; returns ``(lower, upper)``
    arrays of shape ``(k,)``. This is the hot path of tree traversal: one
    numpy evaluation bounds every child of an expanded node at once.
    """
    s_lo = combine_sigma(sigma_lo, q.sigma[np.newaxis, :], rule)
    s_hi = combine_sigma(sigma_hi, q.sigma[np.newaxis, :], rule)
    x = q.mu[np.newaxis, :]
    upper = np.sum(log_hull_upper(x, mu_lo, mu_hi, s_lo, s_hi), axis=1)
    lower = np.sum(log_hull_lower(x, mu_lo, mu_hi, s_lo, s_hi), axis=1)
    return lower, upper


def node_log_bounds_multi(
    mu_lo: np.ndarray,
    mu_hi: np.ndarray,
    sigma_lo: np.ndarray,
    sigma_hi: np.ndarray,
    q_mu: np.ndarray,
    q_sigma: np.ndarray,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`node_log_bounds_batch` for a *batch of queries* at once.

    Rectangle bounds have shape ``(k, d)``, query stacks ``(m, d)``;
    returns ``(lower, upper)`` arrays of shape ``(m, k)`` — row ``i`` is
    the batch result for query ``i``. Shared by the batch query APIs so
    the children of an expanded node are bounded for every concurrent
    query in one numpy evaluation.
    """
    q_mu = np.asarray(q_mu, dtype=np.float64)
    q_sigma = np.asarray(q_sigma, dtype=np.float64)
    s_lo = combine_sigma(
        sigma_lo[np.newaxis, :, :], q_sigma[:, np.newaxis, :], rule
    )  # (m, k, d)
    s_hi = combine_sigma(
        sigma_hi[np.newaxis, :, :], q_sigma[:, np.newaxis, :], rule
    )
    x = q_mu[:, np.newaxis, :]
    box_mu_lo = mu_lo[np.newaxis, :, :]
    box_mu_hi = mu_hi[np.newaxis, :, :]
    upper = np.sum(log_hull_upper(x, box_mu_lo, box_mu_hi, s_lo, s_hi), axis=2)
    lower = np.sum(log_hull_lower(x, box_mu_lo, box_mu_hi, s_lo, s_hi), axis=2)
    return lower, upper


def node_log_bounds(
    rect: ParameterRect, q: PFV, rule: SigmaRule = SigmaRule.CONVOLUTION
) -> tuple[float, float]:
    """``(log N_, log N^)`` of ``p(q | v)`` over ``rect`` — both bounds.

    Used by the sum approximation of Section 5.2:
    ``n * N_ <= sum of stored densities <= n * N^``.
    """
    s_lo = combine_sigma(rect.sigma_lo, q.sigma, rule)
    s_hi = combine_sigma(rect.sigma_hi, q.sigma, rule)
    upper = float(np.sum(log_hull_upper(q.mu, rect.mu_lo, rect.mu_hi, s_lo, s_hi)))
    lower = float(np.sum(log_hull_lower(q.mu, rect.mu_lo, rect.mu_hi, s_lo, s_hi)))
    return lower, upper
