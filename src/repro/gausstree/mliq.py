"""k-most-likely identification queries on the Gauss-tree (Section 5.2.1-2).

Best-first traversal following the paper's Figure 4: a priority queue of
active nodes ordered by the hull upper bound, a candidate set of the k
densest pfv seen so far, and the stop rule "every candidate beats the top
of the queue". The extension of Section 5.2.2 then keeps popping nodes
until the denominator interval (sum approximation over the unexplored
subtrees) is tight enough to report the actual Bayes posteriors at the
requested accuracy.

Columnar leaves (bulk-loaded trees, format-v3 files) take a vectorized
candidate-selection path: the entries beating the current k-th density
are found with one numpy comparison over the whole page and pfv objects
are only materialized for the final result set. The selected candidates
— and hence matches, posteriors and stats — are identical to the
sequential per-entry loop, which the parity property tests assert.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np

from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats
from repro.gausstree.search import SearchState

__all__ = ["gausstree_mliq"]


def gausstree_mliq(
    tree,
    query: MLIQuery,
    tolerance: float = 1e-9,
    state: SearchState | None = None,
) -> tuple[list[Match], QueryStats]:
    """Answer a k-MLIQ on a Gauss-tree.

    Parameters
    ----------
    tree:
        A :class:`~repro.gausstree.tree.GaussTree`.
    query:
        The k-MLIQ specification.
    tolerance:
        Maximum acceptable width of any reported posterior's interval —
        the paper's "user's specification of exactness" (Section 5.2.2).
        ``0.0`` forces exact posteriors (drains the queue's contribution
        entirely; ranking alone never needs that).
    state:
        A pre-built :class:`~repro.gausstree.search.SearchState` (the
        batch API passes one wired to a shared
        :class:`~repro.gausstree.batch.BatchRefiner`).

    Returns
    -------
    ``(matches, stats)`` with matches ordered by descending posterior.
    Ranking is exact; posteriors are exact within ``tolerance``.
    """
    store = tree.store
    store.begin_query()
    started = time.perf_counter()
    if state is None:
        state = SearchState(tree, query.q)

    # Min-heap of the k best candidates. Items are either
    # (log_density, tiebreak, vector) or — for columnar leaves, which
    # defer pfv construction — (log_density, tiebreak, leaf, index);
    # tiebreaks are unique, so heap comparisons never reach element 2.
    candidates: list[tuple] = []
    tiebreak = itertools.count()
    # The densest candidate's scaled density, memoized across the drain
    # phase (it only moves when the heap or the scale shift changes).
    heap_rev = 0
    best_w = -1.0
    best_w_key: tuple | None = None

    k = query.k
    heap = state._heap  # the queue list itself: stable across pops
    while heap:
        if len(candidates) >= k:
            kth_log_density = candidates[0][0]
            if kth_log_density >= -heap[0][0]:
                # The k best are final (Figure 4's stop rule); now only the
                # denominator may still need tightening (Section 5.2.2):
                # every candidate shares the denominator interval, so the
                # widest posterior interval belongs to the densest
                # candidate, whose scaled density is memoized as best_w.
                key = (heap_rev, state.shift)
                if key != best_w_key:
                    best_w = max(
                        state.scaled_density(item[0]) for item in candidates
                    )
                    best_w_key = key
                denom_low = state.denominator_low
                if denom_low > 0.0:
                    width = (
                        best_w / denom_low - best_w / state.denominator_high
                    )
                    if width <= tolerance:
                        break
        expanded = state.pop_and_expand()
        if expanded is None:
            continue
        leaf, log_dens, best, columnar = expanded
        if columnar:
            if len(candidates) >= query.k and best <= candidates[0][0]:
                # The page's densest entry cannot beat the current k-th
                # (the replacement test below is strict), so no entry can
                # change the heap: skip the scan entirely. The page still
                # contributed its denominator mass inside pop_and_expand.
                continue
            lds = log_dens.tolist()
            i = 0
            while len(candidates) < query.k and i < len(lds):
                heapq.heappush(candidates, (lds[i], next(tiebreak), leaf, i))
                i += 1
            if i < len(lds):
                # One numpy comparison prefilters the page: only entries
                # beating the k-th density when the page was reached can
                # ever enter the heap (the k-th bound only grows and the
                # test below is strict), and each survivor is re-checked
                # against the live bound — so the heap evolves exactly
                # as under the per-entry loop.
                better = np.nonzero(log_dens[i:] > candidates[0][0])[0]
                for j in better:
                    ld = lds[i + j]
                    if ld > candidates[0][0]:
                        heapq.heapreplace(
                            candidates, (ld, next(tiebreak), leaf, int(i + j))
                        )
        else:
            for vector, ld in zip(leaf.entries, log_dens):
                item = (float(ld), next(tiebreak), vector)
                if len(candidates) < query.k:
                    heapq.heappush(candidates, item)
                elif item[0] > candidates[0][0]:
                    heapq.heapreplace(candidates, item)
        heap_rev += 1  # scanned leaves may have moved the candidate set

    matches = _assemble(state, candidates)
    stats = _stats(state, store, started)
    return matches, stats


def _vector_of(item: tuple) -> PFV:
    """The pfv of a heap item, materializing deferred columnar entries."""
    if len(item) == 3:
        return item[2]
    return item[2].entry_at(item[3])


def _assemble(
    state: SearchState, candidates: list[tuple]
) -> list[Match]:
    ordered = sorted(candidates, key=lambda item: (-item[0], item[1]))
    denom = state.denominator_mid
    if math.isinf(denom):
        # Unresolved capped bounds (possible with a large tolerance, e.g.
        # the rank-only mode): report best-effort posteriors against the
        # known lower denominator bound instead of 0/inf.
        denom = state.denominator_low
    matches = []
    for item in ordered:
        log_density = item[0]
        if denom > 0.0:
            probability = min(1.0, state.scaled_density(log_density) / denom)
        else:
            # Degenerate: every density underflowed — mirror the scan's
            # "maximally indifferent" uniform posterior (Property 3).
            probability = 1.0 / max(1, len(state.tree))
        matches.append(Match(_vector_of(item), log_density, probability))
    return matches


def _stats(state: SearchState, store, started: float) -> QueryStats:
    elapsed = time.perf_counter() - started
    cost = store.cost_model
    vectorized = state.objects_refined_vectorized
    return QueryStats(
        pages_accessed=store.log.pages_accessed,
        page_faults=store.log.page_faults,
        objects_refined=state.objects_refined,
        nodes_expanded=state.nodes_expanded,
        cpu_seconds=elapsed,
        io_seconds=store.log.io_seconds,
        # Columnar-leaf refinements are priced at the vectorized rate,
        # the rest (interleaved or mutated pages) at the scalar rate.
        modeled_cpu_seconds=cost.modeled_cpu_seconds(
            state.objects_refined - vectorized, store.log.pages_accessed
        )
        + cost.modeled_cpu_seconds(vectorized, 0, vectorized=True),
        buffer_evictions=store.log.evictions,
    )
