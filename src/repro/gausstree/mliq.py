"""k-most-likely identification queries on the Gauss-tree (Section 5.2.1-2).

Best-first traversal following the paper's Figure 4: a priority queue of
active nodes ordered by the hull upper bound, a candidate set of the k
densest pfv seen so far, and the stop rule "every candidate beats the top
of the queue". The extension of Section 5.2.2 then keeps popping nodes
until the denominator interval (sum approximation over the unexplored
subtrees) is tight enough to report the actual Bayes posteriors at the
requested accuracy.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats
from repro.gausstree.search import SearchState

__all__ = ["gausstree_mliq"]


def gausstree_mliq(
    tree,
    query: MLIQuery,
    tolerance: float = 1e-9,
    state: SearchState | None = None,
) -> tuple[list[Match], QueryStats]:
    """Answer a k-MLIQ on a Gauss-tree.

    Parameters
    ----------
    tree:
        A :class:`~repro.gausstree.tree.GaussTree`.
    query:
        The k-MLIQ specification.
    tolerance:
        Maximum acceptable width of any reported posterior's interval —
        the paper's "user's specification of exactness" (Section 5.2.2).
        ``0.0`` forces exact posteriors (drains the queue's contribution
        entirely; ranking alone never needs that).
    state:
        A pre-built :class:`~repro.gausstree.search.SearchState` (the
        batch API passes one wired to a shared
        :class:`~repro.gausstree.batch.BatchRefiner`).

    Returns
    -------
    ``(matches, stats)`` with matches ordered by descending posterior.
    Ranking is exact; posteriors are exact within ``tolerance``.
    """
    store = tree.store
    store.begin_query()
    started = time.perf_counter()
    if state is None:
        state = SearchState(tree, query.q)

    # Min-heap of the k best candidates: (log_density, tiebreak, vector).
    candidates: list[tuple[float, int, PFV]] = []
    tiebreak = itertools.count()

    while state.has_active_nodes:
        if len(candidates) >= query.k:
            kth_log_density = candidates[0][0]
            if kth_log_density >= state.top_log_upper:
                # The k best are final (Figure 4's stop rule); now only the
                # denominator may still need tightening (Section 5.2.2).
                if _posteriors_converged(state, candidates, tolerance):
                    break
        expanded = state.pop_and_expand()
        if expanded is None:
            continue
        leaf, log_dens = expanded
        for vector, ld in zip(leaf.entries, log_dens):
            item = (float(ld), next(tiebreak), vector)
            if len(candidates) < query.k:
                heapq.heappush(candidates, item)
            elif item[0] > candidates[0][0]:
                heapq.heapreplace(candidates, item)

    matches = _assemble(state, candidates)
    stats = _stats(state, store, started)
    return matches, stats


def _posteriors_converged(
    state: SearchState,
    candidates: list[tuple[float, int, PFV]],
    tolerance: float,
) -> bool:
    """Is every candidate's posterior interval narrower than ``tolerance``?

    All candidates share the denominator interval, so the widest posterior
    interval belongs to the candidate with the largest density.
    """
    if not state.has_active_nodes:
        return True
    denom_low = state.denominator_low
    denom_high = state.denominator_high
    if denom_low <= 0.0:
        return False
    best_w = max(state.scaled_density(ld) for ld, _, _ in candidates)
    width = best_w / denom_low - best_w / denom_high
    return width <= tolerance


def _assemble(
    state: SearchState, candidates: list[tuple[float, int, PFV]]
) -> list[Match]:
    ordered = sorted(candidates, key=lambda item: (-item[0], item[1]))
    denom = state.denominator_mid
    if math.isinf(denom):
        # Unresolved capped bounds (possible with a large tolerance, e.g.
        # the rank-only mode): report best-effort posteriors against the
        # known lower denominator bound instead of 0/inf.
        denom = state.denominator_low
    matches = []
    for log_density, _, vector in ordered:
        if denom > 0.0:
            probability = min(1.0, state.scaled_density(log_density) / denom)
        else:
            # Degenerate: every density underflowed — mirror the scan's
            # "maximally indifferent" uniform posterior (Property 3).
            probability = 1.0 / max(1, len(state.tree))
        matches.append(Match(vector, log_density, probability))
    return matches


def _stats(state: SearchState, store, started: float) -> QueryStats:
    elapsed = time.perf_counter() - started
    return QueryStats(
        pages_accessed=store.log.pages_accessed,
        page_faults=store.log.page_faults,
        objects_refined=state.objects_refined,
        nodes_expanded=state.nodes_expanded,
        cpu_seconds=elapsed,
        io_seconds=store.log.io_seconds,
        modeled_cpu_seconds=store.cost_model.modeled_cpu_seconds(
            state.objects_refined, store.log.pages_accessed
        ),
    )
