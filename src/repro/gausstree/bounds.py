"""Parameter-space minimum bounding rectangles (Definition 4).

A Gauss-tree inner entry bounds not the Gaussian *curves* but their
*parameters*: for each of the ``d`` probabilistic features it keeps an
interval ``[mu_lo, mu_hi]`` for the feature value and an interval
``[sigma_lo, sigma_hi]`` for the uncertainty — a rectangle of
dimensionality ``2 d``. :class:`ParameterRect` implements those rectangles
with numpy arrays plus the geometric operations tree construction needs
(containment, union, enlargement, volume/margin in the 2d-dimensional
parameter space).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.pfv import PFV

__all__ = ["ParameterRect"]


class ParameterRect:
    """An axis-parallel box over ``(mu_1..mu_d, sigma_1..sigma_d)``.

    Instances are mutable (tree construction extends them in place) but the
    bound arrays must only be modified through the provided methods so
    cached node state stays consistent.
    """

    __slots__ = ("mu_lo", "mu_hi", "sigma_lo", "sigma_hi")

    def __init__(
        self,
        mu_lo: np.ndarray,
        mu_hi: np.ndarray,
        sigma_lo: np.ndarray,
        sigma_hi: np.ndarray,
    ) -> None:
        self.mu_lo = np.asarray(mu_lo, dtype=np.float64).copy()
        self.mu_hi = np.asarray(mu_hi, dtype=np.float64).copy()
        self.sigma_lo = np.asarray(sigma_lo, dtype=np.float64).copy()
        self.sigma_hi = np.asarray(sigma_hi, dtype=np.float64).copy()
        shapes = {
            a.shape
            for a in (self.mu_lo, self.mu_hi, self.sigma_lo, self.sigma_hi)
        }
        if len(shapes) != 1 or self.mu_lo.ndim != 1:
            raise ValueError("all four bound arrays must be 1-d and equal length")
        if np.any(self.mu_lo > self.mu_hi) or np.any(self.sigma_lo > self.sigma_hi):
            raise ValueError("lower bounds must not exceed upper bounds")
        if np.any(self.sigma_lo <= 0.0):
            raise ValueError("sigma bounds must be strictly positive")

    # -- constructors --------------------------------------------------------

    @classmethod
    def of_vector(cls, v: PFV) -> "ParameterRect":
        """Degenerate rectangle of a single pfv (point in parameter space)."""
        return cls(v.mu, v.mu, v.sigma, v.sigma)

    @classmethod
    def of_vectors(cls, vectors: Iterable[PFV]) -> "ParameterRect":
        """Tight MBR of a non-empty collection of pfv."""
        vectors = list(vectors)
        if not vectors:
            raise ValueError("cannot bound an empty collection")
        mu = np.vstack([v.mu for v in vectors])
        sigma = np.vstack([v.sigma for v in vectors])
        return cls(mu.min(axis=0), mu.max(axis=0), sigma.min(axis=0), sigma.max(axis=0))

    @classmethod
    def of_arrays(cls, mu: np.ndarray, sigma: np.ndarray) -> "ParameterRect":
        """Tight MBR of columnar ``(n, d)`` mu/sigma stacks.

        The column-array twin of :meth:`of_vectors`, used by columnar
        leaves (bulk loading, the format-v3 page loader) so the rect
        refresh never has to materialize pfv objects. Bit-identical to
        ``of_vectors`` over the same rows.
        """
        mu = np.asarray(mu, dtype=np.float64)
        sigma = np.asarray(sigma, dtype=np.float64)
        if mu.ndim != 2 or mu.shape != sigma.shape:
            raise ValueError(
                f"mu and sigma must both be (n, d), got {mu.shape} and "
                f"{sigma.shape}"
            )
        if mu.shape[0] == 0:
            raise ValueError("cannot bound an empty collection")
        return cls(
            mu.min(axis=0), mu.max(axis=0), sigma.min(axis=0), sigma.max(axis=0)
        )

    @classmethod
    def of_rects(cls, rects: Iterable["ParameterRect"]) -> "ParameterRect":
        """Tight MBR of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("cannot bound an empty collection")
        return cls(
            np.min([r.mu_lo for r in rects], axis=0),
            np.max([r.mu_hi for r in rects], axis=0),
            np.min([r.sigma_lo for r in rects], axis=0),
            np.max([r.sigma_hi for r in rects], axis=0),
        )

    # -- basic properties ----------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of probabilistic features ``d`` (box is ``2 d``-dim)."""
        return int(self.mu_lo.shape[0])

    def copy(self) -> "ParameterRect":
        return ParameterRect(self.mu_lo, self.mu_hi, self.sigma_lo, self.sigma_hi)

    def as_flat_bounds(self) -> np.ndarray:
        """Serialisation order: ``[mu_lo | mu_hi | sigma_lo | sigma_hi]``."""
        return np.concatenate([self.mu_lo, self.mu_hi, self.sigma_lo, self.sigma_hi])

    @classmethod
    def from_flat_bounds(cls, flat: np.ndarray) -> "ParameterRect":
        flat = np.asarray(flat, dtype=np.float64)
        if flat.ndim != 1 or flat.size % 4 != 0:
            raise ValueError("flat bounds must be 1-d with length 4*d")
        d = flat.size // 4
        return cls(flat[:d], flat[d : 2 * d], flat[2 * d : 3 * d], flat[3 * d :])

    # -- geometry ------------------------------------------------------------

    def contains_vector(self, v: PFV) -> bool:
        """Does the box contain the pfv's parameter point?"""
        return bool(
            np.all(self.mu_lo <= v.mu)
            and np.all(v.mu <= self.mu_hi)
            and np.all(self.sigma_lo <= v.sigma)
            and np.all(v.sigma <= self.sigma_hi)
        )

    def contains_rect(self, other: "ParameterRect") -> bool:
        return bool(
            np.all(self.mu_lo <= other.mu_lo)
            and np.all(other.mu_hi <= self.mu_hi)
            and np.all(self.sigma_lo <= other.sigma_lo)
            and np.all(other.sigma_hi <= self.sigma_hi)
        )

    def extend_vector(self, v: PFV) -> None:
        """Grow in place to cover a pfv."""
        np.minimum(self.mu_lo, v.mu, out=self.mu_lo)
        np.maximum(self.mu_hi, v.mu, out=self.mu_hi)
        np.minimum(self.sigma_lo, v.sigma, out=self.sigma_lo)
        np.maximum(self.sigma_hi, v.sigma, out=self.sigma_hi)

    def extend_rect(self, other: "ParameterRect") -> None:
        """Grow in place to cover another rectangle."""
        np.minimum(self.mu_lo, other.mu_lo, out=self.mu_lo)
        np.maximum(self.mu_hi, other.mu_hi, out=self.mu_hi)
        np.minimum(self.sigma_lo, other.sigma_lo, out=self.sigma_lo)
        np.maximum(self.sigma_hi, other.sigma_hi, out=self.sigma_hi)

    def union_vector(self, v: PFV) -> "ParameterRect":
        """A new rectangle covering this one plus a pfv."""
        r = self.copy()
        r.extend_vector(v)
        return r

    def _extents(self) -> np.ndarray:
        """All ``2 d`` side lengths."""
        return np.concatenate(
            [self.mu_hi - self.mu_lo, self.sigma_hi - self.sigma_lo]
        )

    def margin(self) -> float:
        """Sum of side lengths — the tie-breaker when volumes degenerate.

        Freshly-built nodes are points in parameter space (volume 0), so
        pure volume comparison cannot steer insertion; the margin can.
        """
        return float(np.sum(self._extents()))

    def volume(self) -> float:
        """Product of the ``2 d`` side lengths (0 for degenerate boxes).

        Silently under/overflows for high-dimensional boxes (54 factors at
        d=27); comparisons should use :meth:`log_volume` instead.
        """
        return float(np.prod(self._extents()))

    def log_volume(self) -> float:
        """Log of the volume; ``-inf`` for degenerate boxes.

        A sum of 2d log side lengths neither underflows nor overflows
        where the plain product would, so volumes of realistic 27-d boxes
        stay comparable.
        """
        return self._log_volume_of_extents(self._extents())

    @staticmethod
    def _log_volume_of_extents(extents: np.ndarray) -> float:
        if np.any(extents == 0.0):
            return -math.inf
        return float(np.sum(np.log(extents)))

    def enlargement_for_vector(self, v: PFV) -> tuple[float, float]:
        """``(log volume increase, margin increase)`` if ``v`` were added.

        The first element is ``log(vol(new) - vol(old))`` computed purely
        in log-extent space (``-inf`` when the volume does not grow, e.g.
        the box already contains the vector). The log is monotone, so
        ordering candidates by it reproduces the paper's "least increase
        of volume" rule exactly — but it still discriminates where the
        linear-space product of ``2 d`` side lengths would underflow to
        0.0 (or overflow) and collapse the comparison onto the margin
        tie-breaker. The margin increase stays linear (sums don't
        under/overflow) and both are 0 / ``-inf`` for a contained vector.
        """
        new_mu_lo = np.minimum(self.mu_lo, v.mu)
        new_mu_hi = np.maximum(self.mu_hi, v.mu)
        new_sig_lo = np.minimum(self.sigma_lo, v.sigma)
        new_sig_hi = np.maximum(self.sigma_hi, v.sigma)
        new_extents = np.concatenate(
            [new_mu_hi - new_mu_lo, new_sig_hi - new_sig_lo]
        )
        old_extents = self._extents()
        d_margin = float(np.sum(new_extents) - np.sum(old_extents))
        log_new = self._log_volume_of_extents(new_extents)
        log_old = self._log_volume_of_extents(old_extents)
        if log_new == -math.inf:
            # Still degenerate after insertion: volume increase is 0.
            return -math.inf, d_margin
        if log_old == -math.inf:
            # From volume 0 to vol(new): the increase IS the new volume.
            return log_new, d_margin
        # log(new - old) = log_new + log(1 - old/new); old <= new always.
        ratio = log_old - log_new
        if ratio >= 0.0:  # old == new up to rounding: no growth
            return -math.inf, d_margin
        return log_new + math.log1p(-math.exp(ratio)), d_margin

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterRect):
            return NotImplemented
        return (
            np.array_equal(self.mu_lo, other.mu_lo)
            and np.array_equal(self.mu_hi, other.mu_hi)
            and np.array_equal(self.sigma_lo, other.sigma_lo)
            and np.array_equal(self.sigma_hi, other.sigma_hi)
        )

    def __repr__(self) -> str:
        return (
            f"ParameterRect(d={self.dims}, "
            f"mu=[{np.array2string(self.mu_lo, precision=3, threshold=4)}, "
            f"{np.array2string(self.mu_hi, precision=3, threshold=4)}], "
            f"sigma=[{np.array2string(self.sigma_lo, precision=3, threshold=4)}, "
            f"{np.array2string(self.sigma_hi, precision=3, threshold=4)}])"
        )
