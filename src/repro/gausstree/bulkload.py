"""Bulk loading for the Gauss-tree (extension; not part of the paper).

The paper builds its trees by repeated insertion with the hull-integral
split of Section 5.3. Repeated insertion is faithful but needlessly slow in
pure Python for the 100,000-object data set 2, so this module adds a
top-down packing loader that applies the *same optimisation criterion* as
the paper's splits:

1. recursively median-split the collection along the parameter axis
   (any ``mu_i`` or ``sigma_i``) that minimises the sum of the two halves'
   hull integrals — the access-probability score of Section 5.3 — until
   groups fit a leaf. Halving an overflowing group automatically lands
   every leaf inside Definition 4's ``[M, 2M]`` (~75% fill on average,
   about what repeated insertion converges to, keeping page-access
   comparisons fair). Axis selection subsamples large groups, so the whole
   build is a few numpy calls per recursion node;
2. build the inner levels by chunking the (recursion-ordered, hence
   parameter-space-coherent) leaf list with the ``[ceil(M/2), M]`` bounds
   until a single root remains.

A generic spread-based ordering (:func:`spatial_order`) is kept as the
baseline for the bulk-loading ablation benchmark — the quality-driven
build produces markedly tighter query bounds on heteroscedastic data —
and :func:`str_groups` adds the classic Sort-Tile-Recursive packer as a
second, cheaper baseline (sort by one parameter axis, slice into slabs,
recurse on the next axis).

Bulk-loaded leaves are **columnar** (:meth:`LeafNode.set_columns`): the
packer already holds the ``(n, d)`` mu/sigma stacks, so each leaf adopts
its row slice directly and the vectorized query kernels get their fast
path without ever materializing per-entry objects.

The resulting tree satisfies every invariant of
:meth:`repro.gausstree.tree.GaussTree.check_invariants`, which the test
suite asserts, and answers queries identically to an insertion-built tree
(both are exact); only page-access counts differ.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.gaussian import SQRT_TWO_PI, SQRT_TWO_PI_E
from repro.core.joint import SigmaRule
from repro.core.pfv import PFV
from repro.gausstree.node import InnerNode, LeafNode, Node
from repro.gausstree.tree import GaussTree

__all__ = [
    "bulk_load",
    "spatial_order",
    "quality_groups",
    "str_groups",
    "chunk_sizes",
]

#: Axis-choice evaluation subsamples groups larger than this.
_SAMPLE_CAP = 256


def spatial_order(coords: np.ndarray) -> np.ndarray:
    """Recursive binary tiling order of row vectors (baseline ordering).

    ``coords`` has shape ``(n, k)``; returns a permutation of ``0..n-1``.
    At each recursion level the axis with the largest *normalised* spread
    (local span over global span, so mu and sigma axes compete fairly) is
    split at its median. Used by the bulk-load ablation; the default
    loader uses :func:`quality_groups` instead.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2:
        raise ValueError(f"coords must be (n, k), got shape {coords.shape}")
    n = coords.shape[0]
    global_span = coords.max(axis=0) - coords.min(axis=0) if n else None
    result = np.empty(n, dtype=np.intp)
    cursor = 0
    stack: list[np.ndarray] = [np.arange(n, dtype=np.intp)]
    while stack:
        idx = stack.pop()
        if idx.size <= 1:
            if idx.size == 1:
                result[cursor] = idx[0]
                cursor += 1
            continue
        local = coords[idx]
        span = local.max(axis=0) - local.min(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            norm = np.where(global_span > 0, span / global_span, 0.0)
        axis = int(np.argmax(norm))
        if norm[axis] == 0.0:
            result[cursor : cursor + idx.size] = idx
            cursor += idx.size
            continue
        order = idx[np.argsort(local[:, axis], kind="stable")]
        mid = order.size // 2
        stack.append(order[mid:])
        stack.append(order[:mid])
    assert cursor == n
    return result


def _log_group_quality(parts: np.ndarray, d: int) -> np.ndarray:
    """Log hull integrals of ``(a, h, 2d)`` stacked candidate groups.

    ``parts[j]`` holds the ``h`` member coordinate rows of candidate group
    ``j`` (mu columns first, sigma columns after); returns the ``(a,)``
    log multivariate hull integrals (Section 5.3's access-probability
    score, cf. :func:`repro.gausstree.integral.log_split_quality`).
    """
    lo = parts.min(axis=1)
    hi = parts.max(axis=1)
    mu_lo, mu_hi = lo[:, :d], hi[:, :d]
    sg_lo, sg_hi = lo[:, d:], hi[:, d:]
    per_dim = (
        1.0
        + (mu_hi - mu_lo) / (SQRT_TWO_PI * sg_lo)
        + 2.0 * (np.log(sg_hi) - np.log(sg_lo)) / SQRT_TWO_PI_E
    )
    return np.sum(np.log(per_dim), axis=1)


def _best_split_axis(
    coords: np.ndarray, idx: np.ndarray, d: int, rng: np.random.Generator
) -> int:
    """Axis whose median split minimises the summed hull integrals.

    Evaluates every mu and sigma axis at once on (a subsample of) the
    group: one fancy-index gather arranges the sample sorted by each axis,
    then the two half-group MBRs and their quality scores are reduced in
    bulk.
    """
    if idx.size > _SAMPLE_CAP:
        sub = rng.choice(idx, _SAMPLE_CAP, replace=False)
    else:
        sub = idx
    c = coords[sub]  # (m, 2d)
    order = np.argsort(c, axis=0)  # column j sorts the sample by axis j
    arranged = c[order.T]  # (2d, m, 2d): rows sorted per candidate axis
    mid = c.shape[0] // 2
    score = np.logaddexp(
        _log_group_quality(arranged[:, :mid, :], d),
        _log_group_quality(arranged[:, mid:, :], d),
    )
    return int(np.argmin(score))


def quality_groups(
    mu: np.ndarray,
    sigma: np.ndarray,
    max_group: int,
    seed: int = 0,
) -> list[np.ndarray]:
    """Partition pfv rows into leaf groups by the Section-5.3 criterion.

    Returns index arrays in recursion (parameter-space) order; every group
    has between ``ceil(max_group/2)`` and ``max_group`` members unless the
    whole input fits one group.
    """
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape or mu.ndim != 2:
        raise ValueError("mu and sigma must both be (n, d)")
    if max_group < 2:
        raise ValueError(f"max_group must be >= 2, got {max_group}")
    d = mu.shape[1]
    coords = np.hstack([mu, sigma])
    rng = np.random.default_rng(seed)
    groups: list[np.ndarray] = []
    stack: list[np.ndarray] = [np.arange(mu.shape[0], dtype=np.intp)]
    while stack:
        idx = stack.pop()
        if idx.size <= max_group:
            groups.append(idx)
            continue
        axis = _best_split_axis(coords, idx, d, rng)
        order = idx[np.argsort(coords[idx, axis], kind="stable")]
        mid = order.size // 2
        stack.append(order[mid:])
        stack.append(order[:mid])
    # The DFS pushes the right half last-but-one, so reversing on pop keeps
    # left-to-right order: stack.pop() returns the left half first.
    return groups


def str_groups(
    mu: np.ndarray, sigma: np.ndarray, max_group: int
) -> list[np.ndarray]:
    """Sort-Tile-Recursive leaf grouping over the ``2 d`` parameter axes.

    The classic R-tree packer adapted to parameter space: sort by the
    first axis, slice into roughly ``P**(1/k)`` slabs (``P`` the number
    of leaves still to produce, ``k`` the remaining axes), recurse per
    slab on the next axis, and chunk the final axis into full groups.
    Same contract as :func:`quality_groups`: index arrays in tiling
    order, every group within ``[ceil(max_group/2), max_group]`` unless
    the whole input fits one group.
    """
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape or mu.ndim != 2:
        raise ValueError("mu and sigma must both be (n, d)")
    if max_group < 2:
        raise ValueError(f"max_group must be >= 2, got {max_group}")
    coords = np.hstack([mu, sigma])
    k = coords.shape[1]
    lo = -(-max_group // 2)
    groups: list[np.ndarray] = []

    def tile(idx: np.ndarray, axis: int) -> None:
        if idx.size <= max_group:
            groups.append(idx)
            return
        order = idx[np.argsort(coords[idx, axis], kind="stable")]
        leaves = -(-order.size // max_group)
        slabs = round(leaves ** (1.0 / (k - axis))) if axis < k - 1 else 1
        # Never slice a slab below the group minimum: an undersized slab
        # could not be chunked legally further down.
        slabs = min(max(slabs, 1), order.size // lo)
        if axis >= k - 1 or slabs <= 1:
            offset = 0
            for size in chunk_sizes(order.size, lo, max_group, max_group):
                groups.append(order[offset : offset + size])
                offset += size
            return
        base, extra = divmod(order.size, slabs)
        sizes = [base + 1] * extra + [base] * (slabs - extra)
        offset = 0
        for size in sizes:
            tile(order[offset : offset + size], axis + 1)
            offset += size

    tile(np.arange(mu.shape[0], dtype=np.intp), 0)
    return groups


def chunk_sizes(n: int, lo: int, hi: int, target: int) -> list[int]:
    """Partition ``n`` items into chunks of size within ``[lo, hi]``.

    Chunks are as even as possible around ``target``. When ``n < lo`` a
    single undersized chunk is returned (only legal for a root node —
    callers handle that case).
    """
    if n <= 0:
        return []
    if not lo <= target <= hi:
        raise ValueError(f"target {target} outside [{lo}, {hi}]")
    if n <= hi:
        return [n]
    groups = max(1, round(n / target))
    while groups * hi < n:
        groups += 1
    while groups > 1 and n // groups < lo:
        groups -= 1
    base, extra = divmod(n, groups)
    sizes = [base + 1] * extra + [base] * (groups - extra)
    assert sum(sizes) == n
    return sizes


def bulk_load(
    vectors: Sequence[PFV],
    *,
    degree: int | None = None,
    layout=None,
    page_store=None,
    sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
    split_quality=None,
    fill: float = 0.75,
    ordering: str = "quality",
    seed: int = 0,
) -> GaussTree:
    """Build a Gauss-tree over ``vectors`` by quality-driven packing.

    ``ordering`` selects the leaf grouping: ``"quality"`` (default) uses
    the paper's hull-integral criterion, ``"spread"`` the generic
    normalised-spread tiling and ``"str"`` the Sort-Tile-Recursive
    packer (both ablation baselines). ``fill`` controls the inner-level
    fill factor; leaf fill follows from the median recursion. Other
    keyword arguments are forwarded to
    :class:`~repro.gausstree.tree.GaussTree`.

    Leaves come out columnar: each adopts its ``(n, d)`` slice of the
    input stacks, so queries on the fresh tree take the vectorized page
    kernels and ``save(path)`` encodes format-v3 pages straight from the
    columns.
    """
    vectors = list(vectors)
    if not vectors:
        raise ValueError("cannot bulk load an empty collection")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    if ordering not in ("quality", "spread", "str"):
        raise ValueError(f"unknown ordering {ordering!r}")
    dims = vectors[0].dims
    kwargs = {}
    if split_quality is not None:
        kwargs["split_quality"] = split_quality
    tree = GaussTree(
        dims=dims,
        degree=degree,
        layout=layout,
        page_store=page_store,
        sigma_rule=sigma_rule,
        **kwargs,
    )
    if len(vectors) <= tree.leaf_max:
        for v in vectors:
            tree.root.add(v)  # type: ignore[attr-defined]
        return tree

    mu = np.vstack([v.mu for v in vectors])
    sigma = np.vstack([v.sigma for v in vectors])
    if ordering == "quality":
        groups = quality_groups(mu, sigma, tree.leaf_max, seed=seed)
    elif ordering == "str":
        groups = str_groups(mu, sigma, tree.leaf_max)
    else:
        order = spatial_order(np.hstack([mu, sigma]))
        sizes = chunk_sizes(
            len(vectors),
            tree.leaf_min,
            tree.leaf_max,
            min(tree.leaf_max, max(tree.leaf_min, round(fill * tree.leaf_max))),
        )
        groups = []
        offset = 0
        for size in sizes:
            groups.append(order[offset : offset + size])
            offset += size

    tree.store.free(tree.root.page_id)  # discard the placeholder root leaf
    tree.vectorized_leaves = True  # every packed leaf below is columnar
    nodes: list[Node] = []
    for group in groups:
        leaf = LeafNode(tree.store.allocate())
        leaf.set_columns(
            mu[group], sigma[group], [vectors[int(i)].key for i in group]
        )
        nodes.append(leaf)

    inner_target = min(
        tree.inner_max, max(tree.inner_min, round(fill * tree.inner_max))
    )
    while len(nodes) > 1:
        if len(nodes) <= tree.inner_max:
            sizes = [len(nodes)]
        else:
            sizes = chunk_sizes(
                len(nodes), tree.inner_min, tree.inner_max, inner_target
            )
        parents: list[Node] = []
        offset = 0
        for size in sizes:
            parent = InnerNode(tree.store.allocate())
            for child in nodes[offset : offset + size]:
                parent.add_child(child)
            parents.append(parent)
            offset += size
        nodes = parents
    tree.root = nodes[0]
    return tree
