"""Disk persistence for the Gauss-tree: one index file, real bytes.

The paper places the Gauss-tree "structurally in the R-tree family which
facilitates the integration into object-relational database management
systems" (Section 5.1) — i.e. the index is meant to live in pages on disk,
not in a Python object graph. This module provides that storage path on
top of the byte-faithful page codecs of :mod:`repro.storage.serializer`:

* :func:`save_tree` walks a built tree, assigns dense page ids ``1..n``
  (id 0 is the header slot), encodes every node onto a page and writes
  ``header | node pages | key table`` to a single file;
* :func:`open_tree` maps the file back into a queryable
  :class:`~repro.gausstree.tree.GaussTree` whose nodes are *stubs*:
  page id, MBR and subtree cardinality come from the parent's page, the
  payload is decoded from page bytes on first access through a
  :class:`~repro.storage.filestore.FilePageStore` — so queries on a
  freshly opened tree genuinely fetch and decode bytes, routed through
  the same :class:`~repro.storage.buffer.BufferManager` accounting the
  in-memory tree simulates. Logical page-access counts of a query are
  therefore identical on both representations, which the round-trip
  tests assert.

File layout (all little-endian)::

    offset 0            fixed header (magic, version, geometry, root id,
                        page count, object count, key-table pointer),
                        zero-padded to one page
    page_id * page_size node pages (ids 1..page_count), encoded by
                        repro.storage.serializer
    key_table_offset    JSON key table mapping the int64 key slots of
                        leaf pages back to application keys

Keys may be ``None``, bools, ints, floats, strings or (nested) tuples of
those; anything else fails the save with a ``TypeError``.

Opened trees are read-only: inserts and deletes would need a write-ahead
path the storage layer does not have yet (see ROADMAP).
"""

from __future__ import annotations

import json
import os
import struct
from typing import Hashable

from repro.core.joint import SigmaRule
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.node import InnerNode, LeafNode, Node
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.filestore import FilePageStore
from repro.storage.layout import PageLayout
from repro.storage.serializer import (
    INNER_KIND,
    LEAF_KIND,
    decode_inner_page,
    decode_leaf_page,
    encode_inner_page,
    encode_leaf_page,
)

__all__ = ["save_tree", "open_tree", "MAGIC", "FORMAT_VERSION"]

MAGIC = b"GAUSTREE"
FORMAT_VERSION = 1

# magic, version, page_size, dims, degree, sigma_rule, height, root_page,
# page_count, n_objects, key_table_offset, key_table_bytes
_HEADER = struct.Struct("<8sHIIIBHIIQQQ")

_SIGMA_RULE_CODES = {SigmaRule.CONVOLUTION: 0, SigmaRule.PAPER: 1}
_SIGMA_RULE_FROM_CODE = {v: k for k, v in _SIGMA_RULE_CODES.items()}


# -- key table ---------------------------------------------------------------


def _encode_key(key: Hashable) -> list:
    """Tagged JSON-safe encoding of an application key."""
    if key is None:
        return ["n"]
    if isinstance(key, bool):  # before int: bool is an int subclass
        return ["b", key]
    if isinstance(key, int):
        return ["i", key]
    if isinstance(key, float):
        return ["f", key]
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, tuple):
        return ["t", [_encode_key(k) for k in key]]
    raise TypeError(
        f"cannot persist key {key!r} of type {type(key).__name__}; "
        "supported: None, bool, int, float, str and tuples thereof"
    )


def _decode_key(entry: list) -> Hashable:
    tag = entry[0]
    if tag == "n":
        return None
    if tag in ("b", "i", "f", "s"):
        return entry[1]
    if tag == "t":
        return tuple(_decode_key(e) for e in entry[1])
    raise ValueError(f"unknown key tag {tag!r} in key table")


class _KeyTable:
    """Deduplicating key -> int64 slot assignment for the save path."""

    def __init__(self) -> None:
        self.keys: list[Hashable] = []
        # Keyed by the tagged JSON encoding, which distinguishes types
        # recursively — (1,), (True,) and (1.0,) hash equal as tuples but
        # encode differently, so each keeps its own slot.
        self._index: dict[str, int] = {}

    def slot(self, key: Hashable) -> int:
        probe = json.dumps(_encode_key(key))
        idx = self._index.get(probe)
        if idx is None:
            idx = len(self.keys)
            self.keys.append(key)
            self._index[probe] = idx
        return idx

    def dump(self) -> bytes:
        return json.dumps([_encode_key(k) for k in self.keys]).encode("utf-8")


# -- saving ------------------------------------------------------------------


def save_tree(tree, path: str | os.PathLike) -> None:
    """Write ``tree`` to ``path`` as a single self-describing index file."""
    layout: PageLayout = tree.layout
    if tree.leaf_max > layout.leaf_capacity:
        raise ValueError(
            f"degree M={tree.degree} allows {tree.leaf_max} leaf entries "
            f"but the {layout.page_size}-byte page encodes at most "
            f"{layout.leaf_capacity}; use a matching layout"
        )
    if tree.inner_max > layout.inner_capacity:
        raise ValueError(
            f"degree M={tree.degree} allows {tree.inner_max} children "
            f"but the {layout.page_size}-byte page encodes at most "
            f"{layout.inner_capacity}; use a matching layout"
        )
    # Dense pre-order page ids; the stored ids are independent of the ids
    # the in-memory PageStore allocated during construction.
    nodes: list[tuple[Node, int]] = []  # (node, level), leaves at level 0
    height = tree.height
    stack: list[tuple[Node, int]] = [(tree.root, height - 1)]
    while stack:
        node, level = stack.pop()
        nodes.append((node, level))
        if not node.is_leaf:
            stack.extend((c, level - 1) for c in node.children)
    page_of = {id(node): i + 1 for i, (node, _) in enumerate(nodes)}

    key_table = _KeyTable()
    page_size = layout.page_size
    # Write to a sibling temp file, then rename over the target: saving a
    # disk-opened tree back onto its own file must keep reading lazy leaf
    # pages from the original bytes while writing (truncating the target
    # first would destroy the pages the stubs still need), and a crashed
    # save never leaves a half-written index behind.
    directory = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(os.fspath(path))}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp_path, "w+b") as f:
            f.write(b"\x00" * page_size)  # header slot, rewritten below
            for (node, level) in nodes:
                pid = page_of[id(node)]
                if node.is_leaf:
                    leaf: LeafNode = node  # type: ignore[assignment]
                    page = encode_leaf_page(
                        layout,
                        pid,
                        leaf.entries,
                        [key_table.slot(v.key) for v in leaf.entries],
                    )
                else:
                    inner: InnerNode = node  # type: ignore[assignment]
                    page = encode_inner_page(
                        layout,
                        pid,
                        level,
                        [c.rect.as_flat_bounds() for c in inner.children],
                        [page_of[id(c)] for c in inner.children],
                        [c.count for c in inner.children],
                    )
                f.seek(pid * page_size)
                f.write(page)
            table = key_table.dump()
            key_table_offset = (len(nodes) + 1) * page_size
            f.seek(key_table_offset)
            f.write(table)
            header = _HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                page_size,
                layout.dims,
                tree.degree,
                _SIGMA_RULE_CODES[tree.sigma_rule],
                height,
                page_of[id(tree.root)],
                len(nodes),
                len(tree),
                key_table_offset,
                len(table),
            )
            f.seek(0)
            f.write(header)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


# -- opening -----------------------------------------------------------------


class _NodeLoader:
    """Materializes stub nodes from page bytes on first payload access."""

    def __init__(
        self, store: FilePageStore, layout: PageLayout, keys: list[Hashable]
    ) -> None:
        self.store = store
        self.layout = layout
        self.keys = keys

    def load_leaf(self, leaf: LeafNode) -> None:
        data = self.store.fetch_page(leaf.page_id)
        _, vectors, key_slots = decode_leaf_page(self.layout, data)
        leaf.replace_entries(
            [v.with_key(self.keys[slot]) for v, slot in zip(vectors, key_slots)]
        )

    def load_inner(self, inner: InnerNode) -> None:
        data = self.store.fetch_page(inner.page_id)
        header, bounds, children, cards = decode_inner_page(self.layout, data)
        inner.replace_children(
            [
                self.stub(pid, ParameterRect.from_flat_bounds(flat), card,
                          header.level - 1)
                for flat, pid, card in zip(bounds, children, cards)
            ]
        )

    def stub(
        self, page_id: int, rect: ParameterRect, count: int, level: int
    ) -> Node:
        node: Node
        if level == 0:
            node = LeafNode(page_id)
            node.set_loader(self.load_leaf, count)
        else:
            node = InnerNode(page_id)
            node.set_loader(self.load_inner, count)
        node.rect = rect
        return node


def read_header(path: str | os.PathLike) -> dict:
    """Parse and validate the fixed file header; returns its fields."""
    with open(path, "rb") as f:
        raw = f.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise ValueError(f"{os.fspath(path)!r} is not a Gauss-tree index file")
    (
        magic,
        version,
        page_size,
        dims,
        degree,
        rule_code,
        height,
        root_page,
        page_count,
        n_objects,
        kt_offset,
        kt_bytes,
    ) = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise ValueError(f"{os.fspath(path)!r} is not a Gauss-tree index file")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"index format version {version} not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if rule_code not in _SIGMA_RULE_FROM_CODE:
        raise ValueError(f"unknown sigma rule code {rule_code}")
    # Sanity-check the geometry against the actual file so a corrupt or
    # truncated header fails with a clear error instead of an absurd
    # allocation (page_count is a u32) or an opaque KeyError later.
    file_size = os.path.getsize(path)
    if (
        page_size < 256
        or page_count < 1
        or not 1 <= root_page <= page_count
        or kt_offset != (page_count + 1) * page_size
        or kt_offset + kt_bytes > file_size
    ):
        raise ValueError(
            f"{os.fspath(path)!r} has a corrupt index header "
            f"(page_size={page_size}, page_count={page_count}, "
            f"root_page={root_page}, key_table={kt_offset}+{kt_bytes}, "
            f"file_size={file_size})"
        )
    return {
        "page_size": page_size,
        "dims": dims,
        "degree": degree,
        "sigma_rule": _SIGMA_RULE_FROM_CODE[rule_code],
        "height": height,
        "root_page": root_page,
        "page_count": page_count,
        "n_objects": n_objects,
        "key_table_offset": kt_offset,
        "key_table_bytes": kt_bytes,
    }


def open_tree(
    path: str | os.PathLike,
    buffer: BufferManager | None = None,
    cost_model: DiskCostModel | None = None,
):
    """Open a saved index for querying; nodes materialize lazily.

    The returned tree is read-only (``insert``/``delete`` raise); pass a
    sized ``buffer`` to reproduce the paper's cache experiments against
    real bytes.
    """
    from repro.gausstree.tree import GaussTree

    meta = read_header(path)
    store = FilePageStore(
        path,
        meta["page_size"],
        allocated_pages=meta["page_count"],
        buffer=buffer,
        cost_model=cost_model,
    )
    table = json.loads(
        store.read_tail(
            meta["key_table_offset"], meta["key_table_bytes"]
        ).decode("utf-8")
    )
    keys = [_decode_key(e) for e in table]
    layout = PageLayout(dims=meta["dims"], page_size=meta["page_size"])
    tree = GaussTree(
        dims=meta["dims"],
        degree=meta["degree"],
        layout=layout,
        page_store=store,
        sigma_rule=meta["sigma_rule"],
    )
    store.free(tree.root.page_id)  # discard the constructor's placeholder

    loader = _NodeLoader(store, layout, keys)
    root_bytes = store.fetch_page(meta["root_page"])
    kind = root_bytes[4]  # header: page_id u32, then kind u8
    if kind == LEAF_KIND:
        root: Node = LeafNode(meta["root_page"])
        loader.load_leaf(root)  # type: ignore[arg-type]
    elif kind == INNER_KIND:
        root = InnerNode(meta["root_page"])
        loader.load_inner(root)  # type: ignore[arg-type]
    else:
        raise ValueError(f"root page has unknown kind {kind}")
    tree.root = root
    tree.read_only = True
    if len(tree) != meta["n_objects"]:
        raise ValueError(
            f"index corrupt: header says {meta['n_objects']} objects, "
            f"root subtree counts {len(tree)}"
        )
    return tree
