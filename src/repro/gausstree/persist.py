"""Disk persistence for the Gauss-tree: one index file, real bytes.

The paper places the Gauss-tree "structurally in the R-tree family which
facilitates the integration into object-relational database management
systems" (Section 5.1) — i.e. the index is meant to live in pages on disk,
not in a Python object graph. This module provides that storage path on
top of the byte-faithful page codecs of :mod:`repro.storage.serializer`:

* :func:`save_tree` walks a built tree, assigns dense page ids ``1..n``
  (id 0 is the header slot), encodes every node onto a page and writes
  ``header | node pages | key table`` to a single file;
* :func:`open_tree` maps the file back into a queryable
  :class:`~repro.gausstree.tree.GaussTree` whose nodes are *stubs*:
  page id, MBR and subtree cardinality come from the parent's page, the
  payload is decoded from page bytes on first access through a
  :class:`~repro.storage.filestore.FilePageStore` — so queries on a
  freshly opened tree genuinely fetch and decode bytes, routed through
  the same :class:`~repro.storage.buffer.BufferManager` accounting the
  in-memory tree simulates. Logical page-access counts of a query are
  therefore identical on both representations, which the round-trip
  tests assert.

File layout, format **v3** (all little-endian)::

    offset 0            fixed header (magic, version, geometry, root id,
                        page count, object count, key-table pointer,
                        free-page count) followed by the free-page list
                        (u32 each), zero-padded to one page
    page_id * page_size node pages (ids 1..page_count), encoded by
                        repro.storage.serializer
    key_table_offset    JSON key table mapping the int64 key slots of
                        leaf pages back to application keys

v3 stores leaf pages **columnar** (page kind 3: contiguous mu block,
sigma block, key-slot block) so a leaf decodes into ready-to-use
``(n, d)`` ndarrays and the query kernels refine whole pages in single
numpy calls. Format v2 (PR 2) used interleaved per-entry leaf pages
(kind 1) and is still fully supported — reading *and* writing: a v2
file opened writable keeps committing v2 pages, preserving its format.
Format v1 (PR 1) is v2 minus the free-page list; v1 files still open,
read-only. Readers dispatch per page on the kind byte, so the version
field only gates the header shape and the write path. Keys may be
``None``, bools, ints, floats, strings or (nested) tuples of those;
anything else fails the save with a ``TypeError``.

**Writable opens.** ``open_tree(path, writable=True)`` attaches a
:class:`TreeWriter` implementing a redo-only write-ahead protocol (see
:mod:`repro.storage.wal` for the fsync ordering and
:func:`recover_index` for the replay): every ``insert``/``delete``
commits one WAL transaction holding the dirtied page images, appended
keys and the new header — and ``GaussTree.insert_many`` coalesces a
whole batch into *one* such transaction (group commit: one fsync,
page images deduplicated, recovery all-or-nothing per batch); the main
file is republished (a new generation, swapped in by atomic rename so
already-open readers keep their pre-checkpoint snapshot) only at a
checkpoint (``tree.flush()`` / ``tree.close()``). Opening a file whose
WAL holds
committed transactions — a crashed writer — replays them first, so
readers and writers always see the last committed state. Free pages from
node deletes are reused by later splits via the header's free-page list
instead of growing the file forever.
"""

from __future__ import annotations

import json
import os
import struct
import time
from typing import Callable, Hashable

import numpy as np

from repro.core.joint import SigmaRule
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.node import InnerNode, LeafNode, Node
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.filestore import FilePageStore
from repro.storage.layout import PageLayout
from repro.storage.serializer import (
    COLUMNAR_LEAF_KIND,
    INNER_KIND,
    LEAF_KIND,
    decode_columnar_leaf_page,
    decode_inner_page,
    decode_leaf_page,
    encode_columnar_leaf_page,
    encode_inner_page,
    encode_leaf_page,
)
from repro.storage.wal import (
    REC_CKPT_BASE,
    REC_KEYS,
    REC_META,
    REC_PAGE,
    WALGroup,
    WriteAheadLog,
)

__all__ = [
    "save_tree",
    "open_tree",
    "recover_index",
    "TreeWriter",
    "MAGIC",
    "FORMAT_VERSION",
]

MAGIC = b"GAUSTREE"
FORMAT_VERSION = 3

# magic, version, page_size, dims, degree, sigma_rule, height, root_page,
# page_count, n_objects, key_table_offset, key_table_bytes
_HEADER_V1 = struct.Struct("<8sHIIIBHIIQQQ")
# v2 appends the free-page count; the free-page ids (u32 each) follow the
# fixed struct inside the header page. v3 keeps the exact v2 header shape —
# only the version field and the leaf page kind differ.
_HEADER_V2 = struct.Struct("<8sHIIIBHIIQQQI")
# Byte range of (key_table_offset, key_table_bytes) inside both structs —
# recovery patches these after rewriting the key table.
_KT_FIELDS_OFFSET = 8 + 2 + 4 + 4 + 4 + 1 + 2 + 4 + 4 + 8
_KT_FIELDS = struct.Struct("<QQ")

_SIGMA_RULE_CODES = {SigmaRule.CONVOLUTION: 0, SigmaRule.PAPER: 1}
_SIGMA_RULE_FROM_CODE = {v: k for k, v in _SIGMA_RULE_CODES.items()}


def wal_path_for(path: str | os.PathLike) -> str:
    """The sidecar WAL file of an index (``<index>.wal``)."""
    return os.fspath(path) + ".wal"


try:
    import fcntl as _fcntl
except ImportError:  # non-POSIX: locking degrades to best-effort no-op
    _fcntl = None

#: How long a writable open keeps retrying the index lock before
#: concluding a real writer holds it (rides out a concurrent reader's
#: WAL replay). Tests shrink this to fail fast.
_LOCK_RETRY_SECONDS = 5.0


class _IndexLock:
    """Advisory single-writer lock on ``<index>.lock``.

    A writable open holds it for the writer's lifetime; recovery takes
    it around its replay. This is what keeps a read-only open from
    truncating the WAL of a *live* writer in another process (the
    reader then reads the main file's last-checkpoint state instead).
    Checkpoints and recovery publish a *new* main-file generation via
    an atomic rename, so an already-open reader keeps its descriptor on
    the pre-checkpoint inode: reader snapshot isolation holds without
    the reader taking any lock. Without ``fcntl`` (non-POSIX) the lock
    degrades to a no-op.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        # realpath: opening/saving the same index through a symlink must
        # contend on the same lock file.
        self.path = os.path.realpath(os.fspath(path)) + ".lock"
        self._fd: int | None = None

    def acquire(self) -> bool:
        if _fcntl is None:
            return True
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is not None:
            _fcntl.flock(self._fd, _fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


def readers_lock_path_for(path: str | os.PathLike) -> str:
    """The reader-presence sidecar of an index
    (``<index>.readers.lock``, resolved through symlinks)."""
    return os.path.realpath(os.fspath(path)) + ".readers.lock"


class _ReaderLock:
    """Shared advisory mark "a reader has this index open".

    Every read-only :func:`open_tree` takes a *shared* flock on the
    sidecar ``<index>.readers.lock`` for the tree's lifetime (a separate
    file from the exclusive writer lock, so writable-open semantics are
    untouched). ``repro reshard-gc`` probes old-generation shard files
    with a non-blocking *exclusive* flock on the same sidecar: while any
    pre-cutover reader is alive the probe fails and the file survives.
    Best-effort by design — without ``fcntl``, or if the sidecar cannot
    be created (read-only media), the reader just goes unregistered:
    POSIX keeps an open descriptor valid after unlink, so a GC'd file
    under a live unmarked reader degrades to deferred space
    reclamation, never to a read error. The last reader out removes the
    sidecar again (read-only opens must leave no trace on disk — a
    PR-1 invariant the persist tests pin).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = readers_lock_path_for(path)
        self._fd: int | None = None

    def acquire(self) -> bool:
        if _fcntl is None:
            return False
        try:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return False
        try:
            _fcntl.flock(fd, _fcntl.LOCK_SH | _fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            try:
                # Sole holder? Then tidy up the sidecar. If another
                # reader still shares the lock the upgrade fails and
                # the file stays for them.
                _fcntl.flock(self._fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
            except OSError:
                pass
            else:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
            _fcntl.flock(self._fd, _fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None


def index_files_in_use(path: str | os.PathLike) -> bool:
    """Whether any process holds the index open (writer or reader).

    Probes both lock sidecars with non-blocking exclusive flocks: the
    writer lock (``<index>.lock``, held exclusively by a writable open)
    and the reader-presence lock (``<index>.readers.lock``, held shared
    by every read-only open). Conservative without ``fcntl``: answers
    ``True``, so GC never deletes on a platform where it cannot probe.
    """
    if _fcntl is None:
        return True
    real = os.path.realpath(os.fspath(path))
    for lock_path in (real + ".lock", real + ".readers.lock"):
        if not os.path.exists(lock_path):
            continue
        try:
            fd = os.open(lock_path, os.O_RDWR)
        except OSError:
            return True
        try:
            _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
            _fcntl.flock(fd, _fcntl.LOCK_UN)
        except OSError:
            return True
        finally:
            os.close(fd)
    return False


# -- key table ---------------------------------------------------------------


def _encode_key(key: Hashable) -> list:
    """Tagged JSON-safe encoding of an application key."""
    if key is None:
        return ["n"]
    if isinstance(key, bool):  # before int: bool is an int subclass
        return ["b", key]
    if isinstance(key, int):
        return ["i", key]
    if isinstance(key, float):
        return ["f", key]
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, tuple):
        return ["t", [_encode_key(k) for k in key]]
    raise TypeError(
        f"cannot persist key {key!r} of type {type(key).__name__}; "
        "supported: None, bool, int, float, str and tuples thereof"
    )


def _decode_key(entry: list) -> Hashable:
    tag = entry[0]
    if tag == "n":
        return None
    if tag in ("b", "i", "f", "s"):
        return entry[1]
    if tag == "t":
        return tuple(_decode_key(e) for e in entry[1])
    raise ValueError(f"unknown key tag {tag!r} in key table")


class _KeyTable:
    """Deduplicating key -> int64 slot assignment for the write path."""

    def __init__(self) -> None:
        self.keys: list[Hashable] = []
        # Keyed by the tagged JSON encoding, which distinguishes types
        # recursively — (1,), (True,) and (1.0,) hash equal as tuples but
        # encode differently, so each keeps its own slot.
        self._index: dict[str, int] = {}
        # len(self.dump()) maintained incrementally: the per-op commit
        # needs the serialized table size for the header (not the bytes),
        # and re-encoding the whole table would make inserts O(n^2).
        self._dump_len = 2  # "[]"

    @classmethod
    def from_keys(cls, keys: list[Hashable]) -> "_KeyTable":
        table = cls()
        for key in keys:
            table.slot(key)
        return table

    def slot(self, key: Hashable) -> int:
        probe = json.dumps(_encode_key(key))
        idx = self._index.get(probe)
        if idx is None:
            idx = len(self.keys)
            self.keys.append(key)
            self._index[probe] = idx
            # json.dumps(list) joins item encodings with ", " — probe is
            # exactly the item encoding, so the list length is additive.
            self._dump_len += len(probe) if idx == 0 else 2 + len(probe)
        return idx

    @property
    def encoded_length(self) -> int:
        """``len(self.dump())`` without serializing (ASCII-safe keys)."""
        return self._dump_len

    def dump(self) -> bytes:
        data = json.dumps([_encode_key(k) for k in self.keys]).encode("utf-8")
        assert len(data) == self._dump_len, "encoded-length bookkeeping bug"
        return data


# -- header ------------------------------------------------------------------


def _build_header_page(
    *,
    page_size: int,
    dims: int,
    degree: int,
    sigma_rule: SigmaRule,
    height: int,
    root_page: int,
    page_count: int,
    n_objects: int,
    key_table_bytes: int,
    free_pages: tuple[int, ...] = (),
    version: int = FORMAT_VERSION,
) -> bytes:
    """The complete page-0 image: fixed v2/v3 header plus the free-page list.

    ``version`` is the format stamped into the file — a writable v2 file
    keeps committing v2 headers so its format is preserved across
    sessions. The free list is capped by the header page's spare bytes;
    if node deletes ever free more pages than fit, the oldest ids are
    dropped (those pages leak until the next compacting ``save``).
    """
    capacity = (page_size - _HEADER_V2.size) // 4
    free = free_pages[-capacity:] if len(free_pages) > capacity else free_pages
    fixed = _HEADER_V2.pack(
        MAGIC,
        version,
        page_size,
        dims,
        degree,
        _SIGMA_RULE_CODES[sigma_rule],
        height,
        root_page,
        page_count,
        n_objects,
        (page_count + 1) * page_size,
        key_table_bytes,
        len(free),
    )
    body = fixed + struct.pack(f"<{len(free)}I", *free)
    return body + b"\x00" * (page_size - len(body))


def _parse_fixed_header(raw: bytes) -> dict:
    """Decode the version-independent fixed header fields from raw bytes.

    Shared by :func:`read_header` (reading the file) and
    :func:`recover_index` (reading a WAL ``META`` image), so the field
    layout is interpreted in exactly one place.
    """
    (
        magic,
        version,
        page_size,
        dims,
        degree,
        rule_code,
        height,
        root_page,
        page_count,
        n_objects,
        kt_offset,
        kt_bytes,
    ) = _HEADER_V1.unpack(raw[: _HEADER_V1.size])
    return {
        "magic": magic,
        "version": version,
        "page_size": page_size,
        "dims": dims,
        "degree": degree,
        "rule_code": rule_code,
        "height": height,
        "root_page": root_page,
        "page_count": page_count,
        "n_objects": n_objects,
        "key_table_offset": kt_offset,
        "key_table_bytes": kt_bytes,
    }


def read_header(path: str | os.PathLike) -> dict:
    """Parse and validate the fixed file header; returns its fields.

    Understands format v1 (PR 1, no free list), v2 (interleaved leaves)
    and v3 (columnar leaves); v2 and v3 share the header shape.
    """
    with open(path, "rb") as f:
        raw = f.read(_HEADER_V2.size)
        if len(raw) < _HEADER_V1.size:
            raise ValueError(
                f"{os.fspath(path)!r} is not a Gauss-tree index file"
            )
        fixed = _parse_fixed_header(raw)
        magic = fixed["magic"]
        version = fixed["version"]
        page_size = fixed["page_size"]
        dims = fixed["dims"]
        degree = fixed["degree"]
        rule_code = fixed["rule_code"]
        height = fixed["height"]
        root_page = fixed["root_page"]
        page_count = fixed["page_count"]
        n_objects = fixed["n_objects"]
        kt_offset = fixed["key_table_offset"]
        kt_bytes = fixed["key_table_bytes"]
        if magic != MAGIC:
            raise ValueError(
                f"{os.fspath(path)!r} is not a Gauss-tree index file"
            )
        if version not in (1, 2, 3):
            raise ValueError(
                f"index format version {version} not supported "
                f"(this build reads versions 1-{FORMAT_VERSION})"
            )
        free_pages: tuple[int, ...] = ()
        if version >= 2:
            if len(raw) < _HEADER_V2.size:
                raise ValueError(
                    f"{os.fspath(path)!r} has a truncated index header"
                )
            (free_count,) = struct.unpack_from("<I", raw, _HEADER_V2.size - 4)
            capacity = (page_size - _HEADER_V2.size) // 4 if page_size else 0
            if free_count > max(capacity, 0):
                raise ValueError(
                    f"{os.fspath(path)!r} has a corrupt index header "
                    f"(free_count={free_count} exceeds capacity {capacity})"
                )
            free_raw = f.read(4 * free_count)
            if len(free_raw) < 4 * free_count:
                raise ValueError(
                    f"{os.fspath(path)!r} has a truncated free-page list"
                )
            free_pages = struct.unpack(f"<{free_count}I", free_raw)
    if rule_code not in _SIGMA_RULE_FROM_CODE:
        raise ValueError(f"unknown sigma rule code {rule_code}")
    # Sanity-check the geometry against the actual file so a corrupt or
    # truncated header fails with a clear error instead of an absurd
    # allocation (page_count is a u32) or an opaque KeyError later.
    file_size = os.path.getsize(path)
    if (
        page_size < 256
        or page_count < 1
        or not 1 <= root_page <= page_count
        or kt_offset != (page_count + 1) * page_size
        or kt_offset + kt_bytes > file_size
        or any(not 1 <= p <= page_count for p in free_pages)
        or len(set(free_pages)) != len(free_pages)
        or root_page in free_pages
    ):
        raise ValueError(
            f"{os.fspath(path)!r} has a corrupt index header "
            f"(page_size={page_size}, page_count={page_count}, "
            f"root_page={root_page}, key_table={kt_offset}+{kt_bytes}, "
            f"free_pages={len(free_pages)}, file_size={file_size})"
        )
    return {
        "version": version,
        "page_size": page_size,
        "dims": dims,
        "degree": degree,
        "sigma_rule": _SIGMA_RULE_FROM_CODE[rule_code],
        "height": height,
        "root_page": root_page,
        "page_count": page_count,
        "n_objects": n_objects,
        "key_table_offset": kt_offset,
        "key_table_bytes": kt_bytes,
        "free_pages": free_pages,
    }


# -- saving ------------------------------------------------------------------


class SaveResult:
    """What :func:`save_tree` wrote — lets a writable tree rebind in place."""

    __slots__ = ("page_of", "key_table", "page_count", "height", "version")

    def __init__(
        self,
        page_of: dict[int, int],
        key_table: _KeyTable,
        page_count: int,
        height: int,
        version: int,
    ) -> None:
        self.page_of = page_of  # id(node) -> saved page id
        self.key_table = key_table
        self.page_count = page_count
        self.height = height
        self.version = version


def save_tree(
    tree,
    path: str | os.PathLike,
    *,
    version: int = FORMAT_VERSION,
    _writer_lock: _IndexLock | None = None,
) -> SaveResult:
    """Write ``tree`` to ``path`` as a single self-describing index file.

    ``version`` picks the write format: 3 (default) encodes leaves as
    columnar pages, 2 keeps the interleaved per-entry encoding for
    compatibility with older readers. Both round-trip through
    :func:`open_tree` with identical query answers and page accounting.

    Refuses to replace an index another live writer holds open: the
    save would silently truncate that writer's WAL and the writer's
    next checkpoint would clobber the fresh file. ``_writer_lock`` is
    the caller's own already-held lock (``GaussTree.save`` passes it),
    which legitimizes the in-place save of a writable tree.
    """
    if version not in (2, 3):
        raise ValueError(
            f"cannot write format version {version}; this build writes "
            "versions 2 (interleaved leaves) and 3 (columnar leaves)"
        )
    lock = _IndexLock(path)
    owns_lock = lock.acquire()
    if not owns_lock and not (
        _writer_lock is not None and _writer_lock.path == lock.path
    ):
        raise RuntimeError(
            f"cannot save over {os.fspath(path)!r}: another process holds "
            "it open writable (close that writer first)"
        )
    try:
        return _save_tree_locked(tree, path, version)
    finally:
        if owns_lock:
            lock.release()


def _encode_leaf(
    layout: PageLayout, pid: int, leaf: LeafNode, key_table: _KeyTable,
    version: int,
) -> bytes:
    """Encode one leaf in the requested format's page kind.

    The v3 path reads the leaf's column arrays directly (no pfv
    materialization when the leaf is already columnar); the v2 path
    keeps the interleaved per-entry codec byte-for-byte.
    """
    if version >= 3:
        if leaf.count:
            mu, sigma = leaf.arrays()
        else:  # empty tree: the root leaf encodes as a zero-entry page
            mu = np.zeros((0, layout.dims), dtype=np.float64)
            sigma = np.zeros((0, layout.dims), dtype=np.float64)
        return encode_columnar_leaf_page(
            layout,
            pid,
            mu,
            sigma,
            [key_table.slot(k) for k in leaf.keys()],
        )
    return encode_leaf_page(
        layout,
        pid,
        leaf.entries,
        [key_table.slot(v.key) for v in leaf.entries],
    )


def _save_tree_locked(
    tree, path: str | os.PathLike, version: int
) -> SaveResult:
    layout: PageLayout = tree.layout
    if tree.leaf_max > layout.leaf_capacity:
        raise ValueError(
            f"degree M={tree.degree} allows {tree.leaf_max} leaf entries "
            f"but the {layout.page_size}-byte page encodes at most "
            f"{layout.leaf_capacity}; use a matching layout"
        )
    if tree.inner_max > layout.inner_capacity:
        raise ValueError(
            f"degree M={tree.degree} allows {tree.inner_max} children "
            f"but the {layout.page_size}-byte page encodes at most "
            f"{layout.inner_capacity}; use a matching layout"
        )
    # Dense pre-order page ids; the stored ids are independent of the ids
    # the in-memory PageStore allocated during construction.
    nodes: list[tuple[Node, int]] = []  # (node, level), leaves at level 0
    height = tree.height
    stack: list[tuple[Node, int]] = [(tree.root, height - 1)]
    while stack:
        node, level = stack.pop()
        nodes.append((node, level))
        if not node.is_leaf:
            stack.extend((c, level - 1) for c in node.children)
    page_of = {id(node): i + 1 for i, (node, _) in enumerate(nodes)}

    key_table = _KeyTable()
    page_size = layout.page_size
    # Write to a sibling temp file, then rename over the target: saving a
    # disk-opened tree back onto its own file must keep reading lazy leaf
    # pages from the original bytes while writing (truncating the target
    # first would destroy the pages the stubs still need), and a crashed
    # save never leaves a half-written index behind.
    directory = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(os.fspath(path))}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp_path, "w+b") as f:
            f.write(b"\x00" * page_size)  # header slot, rewritten below
            for (node, level) in nodes:
                pid = page_of[id(node)]
                if node.is_leaf:
                    leaf: LeafNode = node  # type: ignore[assignment]
                    page = _encode_leaf(layout, pid, leaf, key_table, version)
                else:
                    inner: InnerNode = node  # type: ignore[assignment]
                    page = encode_inner_page(
                        layout,
                        pid,
                        level,
                        [c.rect.as_flat_bounds() for c in inner.children],
                        [page_of[id(c)] for c in inner.children],
                        [c.count for c in inner.children],
                    )
                f.seek(pid * page_size)
                f.write(page)
            table = key_table.dump()
            key_table_offset = (len(nodes) + 1) * page_size
            f.seek(key_table_offset)
            f.write(table)
            header = _build_header_page(
                page_size=page_size,
                dims=layout.dims,
                degree=tree.degree,
                sigma_rule=tree.sigma_rule,
                height=height,
                root_page=page_of[id(tree.root)],
                page_count=len(nodes),
                n_objects=len(tree),
                key_table_bytes=len(table),
                version=version,
            )
            f.seek(0)
            f.write(header)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    # A leftover sidecar WAL from an earlier writable session describes
    # the *replaced* file generation; replayed over the fresh save it
    # would corrupt the index. Clear it in place (truncate to the magic,
    # not unlink: a writer flushing right before an in-place save still
    # holds the file open at offset 8, which stays consistent).
    wal_path = wal_path_for(path)
    if os.path.exists(wal_path):
        wal = WriteAheadLog(wal_path)
        try:
            wal.reset()
        finally:
            wal.close()
    return SaveResult(page_of, key_table, len(nodes), height, version)


# -- recovery ----------------------------------------------------------------


def recover_index(
    path: str | os.PathLike,
    wal_path: str | os.PathLike | None = None,
    *,
    file_factory: Callable = open,
    _lock: _IndexLock | None = None,
) -> bool:
    """Redo-replay the committed WAL tail into the main index file.

    Idempotent: a crash *during* recovery leaves the WAL in place, so
    the next open simply replays again. Returns whether anything was
    applied. The procedure:

    1. scan the WAL, keeping the longest checksum-valid prefix of
       committed transactions (a torn tail is discarded — that is the
       not-yet-durable suffix of the workload);
    2. fold the transactions into the latest image per page, the key
       appends (re-based on a ``CKPT_BASE`` snapshot if a checkpoint was
       interrupted), and the final header image;
    3. build a *new generation* of the main file beside it (old bytes,
       folded pages, key table, patched header), fsync it, and publish
       it with an atomic rename, then truncate the WAL. Already-open
       readers of the previous generation keep their inode and are
       never touched — replica apply (``storage/ship.py``) relies on
       this to refresh a replica under live readers.
    """
    wal_path = wal_path_for(path) if wal_path is None else wal_path
    # Cheap read-only pre-checks before any filesystem write (creating
    # the lock file): a missing or committed-record-free WAL means there
    # is nothing to replay — the common read-only open (and any v1 file,
    # which never has a WAL) must work from read-only media unchanged.
    # has_committed streams record headers without slurping the file; a
    # rare false positive just means taking the lock and scanning fully.
    if not os.path.exists(wal_path):
        return False
    if not WriteAheadLog.has_committed(wal_path):
        return False
    if _lock is None:
        # A live writer in another process owns the WAL: replaying (and
        # truncating!) it under that writer would make its later fsynced
        # commits unrecoverable. Skip — the caller reads the consistent
        # last-checkpoint state from the main file instead.
        lock = _IndexLock(path)
        if not lock.acquire():
            return False
        try:
            return recover_index(
                path, wal_path, file_factory=file_factory, _lock=lock
            )
        finally:
            lock.release()
    # Re-scan under the lock, streaming: fold to latest-image-per-page
    # instead of materializing the whole log (a killed bulk insert can
    # leave a WAL of hundreds of MB; the fold is bounded by the number
    # of distinct pages).
    pages: dict[int, bytes] = {}
    base_entries: list | None = None
    appended: list = []
    header_image: bytes | None = None
    committed_end = None
    for txn, end in WriteAheadLog.iter_committed(wal_path):
        committed_end = end
        for rtype, payload in txn:
            if rtype == REC_PAGE:
                (pid,) = struct.unpack_from("<I", payload, 0)
                pages[pid] = payload[4:]
            elif rtype == REC_KEYS:
                appended.extend(json.loads(payload.decode("utf-8")))
            elif rtype == REC_CKPT_BASE:
                # Snapshot of the whole table at checkpoint start; it
                # subsumes every append logged before it.
                base_entries = json.loads(payload.decode("utf-8"))
                appended = []
            elif rtype == REC_META:
                header_image = payload
    if committed_end is None or header_image is None:
        return False  # no committed state transition to apply
    meta_fields = _parse_fixed_header(header_image)
    page_size = meta_fields["page_size"]
    page_count = meta_fields["page_count"]
    if base_entries is None:
        # No checkpoint was in flight, so the main file's key table is
        # exactly the last-checkpoint state and its header is intact.
        durable = read_header(path)
        with open(path, "rb") as f:
            f.seek(durable["key_table_offset"])
            raw = f.read(durable["key_table_bytes"])
        base_entries = json.loads(raw.decode("utf-8"))
        # Seal the *folded* table (base plus the WAL's appends) into the
        # WAL before the main file is touched: recovery itself may crash
        # mid-replay, clobbering the tail the lines above just read, and
        # the retry must then be as self-contained as an interrupted
        # checkpoint. The unsealed tail past the last COMMIT is
        # discarded first so this transaction is actually reachable by
        # the next scan.
        wal = WriteAheadLog(wal_path, file_factory=file_factory)
        try:
            wal.truncate_to(committed_end)
            wal.append(
                REC_CKPT_BASE,
                json.dumps(base_entries + appended).encode("utf-8"),
            )
            wal.append(REC_META, header_image)
            wal.commit()
        finally:
            wal.close()
    table = json.dumps(base_entries + appended).encode("utf-8")
    kt_offset = (page_count + 1) * page_size
    patched = bytearray(header_image)
    patched[_KT_FIELDS_OFFSET : _KT_FIELDS_OFFSET + _KT_FIELDS.size] = (
        _KT_FIELDS.pack(kt_offset, len(table))
    )
    # Apply into a fresh generation published by atomic rename:
    # already-open readers of the old file keep their inode untouched
    # (replica apply under live readers depends on this), and a crash
    # mid-apply leaves the old generation plus the sealed WAL intact.
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.rec.{os.getpid()}"
    )
    out = file_factory(tmp_path, "w+b")
    try:
        with open(path, "rb") as src:
            remaining = kt_offset
            while remaining > 0:
                chunk = src.read(min(1 << 20, remaining))
                if not chunk:
                    break
                out.write(chunk)
                remaining -= len(chunk)
        if remaining > 0:
            # Pages appended past the old EOF: zero-fill, the folded
            # images below cover every page written since the last
            # checkpoint.
            out.write(b"\x00" * remaining)
        for pid in sorted(pages):
            out.seek(pid * page_size)
            out.write(pages[pid])
        out.seek(kt_offset)
        out.write(table)
        out.truncate(kt_offset + len(table))
        out.seek(0)
        out.write(bytes(patched))
        out.flush()
        os.fsync(out.fileno())
        out.close()
        os.replace(tmp_path, path)
    except BaseException:
        try:
            out.close()
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        raise
    # The main file now holds everything; retire the WAL.
    wal = WriteAheadLog(wal_path, file_factory=file_factory)
    try:
        wal.reset()
    finally:
        wal.close()
    return True


# -- the write path ----------------------------------------------------------


class TreeWriter:
    """Per-operation WAL commits and checkpoints for a writable tree.

    Owned by a :class:`~repro.gausstree.tree.GaussTree` opened with
    ``writable=True``; the tree calls :meth:`commit` with the set of
    nodes an ``insert``/``delete`` dirtied, and :meth:`checkpoint` from
    ``flush``/``close``.
    """

    def __init__(
        self,
        tree,
        store: FilePageStore,
        wal: WriteAheadLog,
        keys: list[Hashable],
        height: int,
        lock: _IndexLock | None = None,
        auto_checkpoint_bytes: int | None = None,
        format_version: int = FORMAT_VERSION,
    ) -> None:
        if auto_checkpoint_bytes is not None and auto_checkpoint_bytes <= 0:
            raise ValueError(
                f"auto_checkpoint_bytes must be positive, got "
                f"{auto_checkpoint_bytes}"
            )
        self.tree = tree
        self.store = store
        self.wal = wal
        self._lock = lock
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        # The file's format is sticky: a v2 file opened writable keeps
        # committing v2 leaf pages and v2 headers.
        self.format_version = format_version
        self.key_table = _KeyTable.from_keys(keys)
        self._logged_keys = len(self.key_table.keys)
        self.height = height
        # Offset of a torn transaction whose rollback also failed (e.g.
        # ENOSPC on both): appending after those bytes would make every
        # later fsynced commit unreachable to the recovery scan, so the
        # tail must be re-truncated before the WAL accepts new records.
        self._pending_rollback: int | None = None

    # -- structure helpers ---------------------------------------------------

    def _attached(self, node: Node) -> bool:
        while node.parent is not None:
            node = node.parent
        return node is self.tree.root

    @staticmethod
    def _depth(node: Node) -> int:
        depth = 0
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def _encode(self, node: Node, level: int) -> bytes:
        layout = self.tree.layout
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            return _encode_leaf(
                layout, leaf.page_id, leaf, self.key_table,
                self.format_version,
            )
        inner: InnerNode = node  # type: ignore[assignment]
        return encode_inner_page(
            layout,
            inner.page_id,
            level,
            [c.rect.as_flat_bounds() for c in inner.children],
            [c.page_id for c in inner.children],
            [c.count for c in inner.children],
        )

    def header_page_image(self) -> bytes:
        tree = self.tree
        return _build_header_page(
            page_size=tree.layout.page_size,
            dims=tree.layout.dims,
            degree=tree.degree,
            sigma_rule=tree.sigma_rule,
            height=self.height,
            root_page=tree.root.page_id,
            page_count=self.store.page_count,
            n_objects=len(tree),
            key_table_bytes=self.key_table.encoded_length,
            free_pages=self.store.free_pages,
            version=self.format_version,
        )

    # -- commit --------------------------------------------------------------

    def commit(self, dirty: set[Node]) -> None:
        """Make one completed tree operation — or a whole batch of them
        sharing one dirty set — durable: a single WAL transaction of
        page images + appended keys + header meta (built through
        :class:`~repro.storage.wal.WALGroup`, so a batch pays one
        ``COMMIT`` and one fsync and each dirtied page is logged once),
        then install the images into the store (buffer-dirty,
        write-back tracked)."""
        live = [n for n in dirty if self._attached(n)]
        live_leaf = next((n for n in live if n.is_leaf), None)
        if live_leaf is not None:
            self.height = self._depth(live_leaf) + 1
        else:  # pure-structural op; rare, costs a leftmost-path walk
            self.height = self.tree.height
        images: list[tuple[int, bytes]] = []
        for node in live:
            level = 0 if node.is_leaf else self.height - 1 - self._depth(node)
            images.append((node.page_id, self._encode(node, level)))
        new_keys = self.key_table.keys[self._logged_keys :]
        group = WALGroup()
        for pid, image in images:
            group.add_page(pid, image)
        if new_keys:
            group.add_keys([_encode_key(k) for k in new_keys])
        group.set_meta(self.header_page_image())
        self._ensure_clean_tail()
        start = self.wal.tell()
        try:
            group.commit_to(self.wal)
        except BaseException:
            # A torn transaction must not be sealed by the *next* commit:
            # roll the WAL back to the transaction start. If the rollback
            # itself fails (disk full, injected crash), remember the
            # offset — _ensure_clean_tail retries before any later append
            # so a fsynced commit can never land behind torn bytes where
            # the recovery scan would discard it.
            try:
                self.wal.truncate_to(start)
            except Exception:
                self._pending_rollback = start
            raise
        self._logged_keys = len(self.key_table.keys)
        for pid, image in images:
            self.store.write(pid, image)

    def _ensure_clean_tail(self) -> None:
        """Retry a previously failed transaction rollback; raises (and
        keeps the WAL closed to new records) while the tail stays torn."""
        if self._pending_rollback is not None:
            self.wal.truncate_to(self._pending_rollback)
            self._pending_rollback = None

    def maybe_auto_checkpoint(self) -> None:
        """WAL-size-triggered checkpoint: flush once the log reaches the
        configured bound.

        Called by the tree after each committed mutation (with the dirty
        marks already cleared, so nothing is double-logged). A crash
        during the triggered checkpoint is no different from a crash
        during an explicit ``flush()`` — the CKPT_BASE protocol makes
        recovery self-contained either way, which the crash harness
        exercises.
        """
        if (
            self.auto_checkpoint_bytes is not None
            and self.wal.tell() >= self.auto_checkpoint_bytes
        ):
            self.checkpoint()

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(self) -> None:
        """Publish committed state as a new main-file generation; then
        empty the WAL.

        fsync ordering: WAL (with a ``CKPT_BASE`` key-table snapshot
        that makes replay independent of the main file) strictly before
        the new generation's bytes, those before the atomic rename that
        publishes them, the rename before the WAL truncate. The rename
        (via :meth:`FilePageStore.publish_checkpoint`) is what seals
        *reader snapshot isolation*: a read-only session that opened the
        index before this checkpoint keeps its file descriptor on the
        pre-checkpoint inode and never observes pages changing under it.
        A crash anywhere before the rename leaves the old generation
        plus a replayable WAL; after it, replay is idempotent.
        """
        store, wal = self.store, self.wal
        # Marks left behind by a commit that failed mid-WAL-append: the
        # mutation *is* in the live tree this checkpoint's header will
        # describe, so its pages must be committed first — otherwise the
        # header (n_objects, root) and the page images disagree and the
        # file no longer opens. If the commit fails again, the
        # checkpoint aborts here with the main file untouched.
        pending = self.tree._dirty_nodes
        if pending:
            self.commit(pending)
            self.tree._dirty_nodes = set()
        images = store.dirty_images()
        if not images and wal.is_empty:
            return
        self._ensure_clean_tail()
        table = self.key_table.dump()
        header_page = self.header_page_image()
        wal.append(REC_CKPT_BASE, table)
        wal.append(REC_META, header_page)
        wal.commit()
        if not wal.fsync:
            wal.sync()  # checkpoint ordering is non-negotiable
        store.publish_checkpoint(images, table, header_page)
        wal.reset()
        store.mark_all_clean()

    def rebind_after_save(self, saved: SaveResult) -> None:
        """Adopt the page ids of a compacting in-place ``save``.

        ``save_tree`` materialized every node, so the whole tree can be
        re-pointed at the freshly written (dense) page ids and the store
        reset onto the new file generation.
        """
        stack: list[Node] = [self.tree.root]
        while stack:
            node = stack.pop()
            node.page_id = saved.page_of[id(node)]
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[attr-defined]
        self.store.rebind(saved.page_count)
        self.key_table = saved.key_table
        self._logged_keys = len(saved.key_table.keys)
        self.height = saved.height
        self.format_version = saved.version

    def close(self, checkpoint: bool = True) -> None:
        try:
            if checkpoint:
                self.checkpoint()
        finally:
            self.wal.close()
            if self._lock is not None:
                self._lock.release()


# -- opening -----------------------------------------------------------------


class _NodeLoader:
    """Materializes stub nodes from page bytes on first payload access."""

    def __init__(
        self, store: FilePageStore, layout: PageLayout, keys: list[Hashable]
    ) -> None:
        self.store = store
        self.layout = layout
        self.keys = keys

    def load_leaf(self, leaf: LeafNode) -> None:
        data = self.store.fetch_page(leaf.page_id)
        if data[4] == COLUMNAR_LEAF_KIND:  # header: page_id u32, kind u8
            _, mu, sigma, key_slots = decode_columnar_leaf_page(
                self.layout, data
            )
            leaf.set_columns(
                mu, sigma, [self.keys[slot] for slot in key_slots]
            )
            return
        _, vectors, key_slots = decode_leaf_page(self.layout, data)
        leaf.replace_entries(
            [v.with_key(self.keys[slot]) for v, slot in zip(vectors, key_slots)]
        )

    def load_inner(self, inner: InnerNode) -> None:
        data = self.store.fetch_page(inner.page_id)
        header, bounds, children, cards = decode_inner_page(self.layout, data)
        inner.replace_children(
            [
                self.stub(pid, ParameterRect.from_flat_bounds(flat), card,
                          header.level - 1)
                for flat, pid, card in zip(bounds, children, cards)
            ]
        )

    def stub(
        self, page_id: int, rect: ParameterRect, count: int, level: int
    ) -> Node:
        node: Node
        if level == 0:
            node = LeafNode(page_id)
            node.set_loader(self.load_leaf, count)
        else:
            node = InnerNode(page_id)
            node.set_loader(self.load_inner, count)
        node.rect = rect
        return node


def open_tree(
    path: str | os.PathLike,
    buffer: BufferManager | None = None,
    cost_model: DiskCostModel | None = None,
    *,
    writable: bool = False,
    fsync: bool = True,
    auto_checkpoint_bytes: int | None = None,
    file_factory: Callable = open,
):
    """Open a saved index; nodes materialize lazily.

    With ``writable=True`` (formats v2/v3) the tree accepts
    ``insert``/``delete``, each committed through the write-ahead log;
    call ``flush()``/``close()`` to checkpoint. A WAL left behind by a
    crashed writer is replayed before anything is read, for read-only
    opens too — the committed tail supersedes the main file's bytes.
    ``fsync=False`` keeps the recovery guarantees but lets the newest
    commits ride in the OS cache (faster, bounded loss on power cut).
    """
    from repro.gausstree.tree import GaussTree

    if auto_checkpoint_bytes is not None and not writable:
        raise ValueError(
            "auto_checkpoint_bytes only applies to writable opens "
            "(a read-only tree never writes the WAL)"
        )
    lock: _IndexLock | None = None
    if writable:
        lock = _IndexLock(path)
        # Retry briefly: the holder may be a *reader* replaying a
        # crashed writer's WAL (bounded, seconds at most), which is not
        # the genuine writer conflict the error below describes.
        deadline = time.monotonic() + _LOCK_RETRY_SECONDS
        while not lock.acquire():
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"{os.fspath(path)!r} is already open writable in "
                    "another process (single-writer index)"
                )
            time.sleep(0.05)
    try:
        return _open_tree_locked(
            path,
            buffer,
            cost_model,
            writable=writable,
            fsync=fsync,
            auto_checkpoint_bytes=auto_checkpoint_bytes,
            file_factory=file_factory,
            lock=lock,
        )
    except BaseException:
        # On any failure the writer lock must not outlive this call —
        # a leaked in-process flock would block every later open.
        if lock is not None:
            lock.release()
        raise


def _open_tree_locked(
    path,
    buffer,
    cost_model,
    *,
    writable: bool,
    fsync: bool,
    auto_checkpoint_bytes: int | None,
    file_factory: Callable,
    lock,
):
    from repro.gausstree.tree import GaussTree

    recover_index(path, file_factory=file_factory, _lock=lock)
    meta = read_header(path)
    if writable and meta["version"] < 2:
        raise ValueError(
            f"{os.fspath(path)!r} is a format v1 index, which opens "
            "read-only; open it and save() to rewrite it in a current "
            "format first"
        )
    store = FilePageStore(
        path,
        meta["page_size"],
        allocated_pages=meta["page_count"],
        free_pages=meta["free_pages"],
        writable=writable,
        buffer=buffer,
        cost_model=cost_model,
        file_factory=file_factory,
    )
    table = json.loads(
        store.read_tail(
            meta["key_table_offset"], meta["key_table_bytes"]
        ).decode("utf-8")
    )
    keys = [_decode_key(e) for e in table]
    layout = PageLayout(dims=meta["dims"], page_size=meta["page_size"])
    tree = GaussTree(
        dims=meta["dims"],
        degree=meta["degree"],
        layout=layout,
        page_store=store,
        sigma_rule=meta["sigma_rule"],
    )
    store.free(tree.root.page_id)  # discard the constructor's placeholder

    loader = _NodeLoader(store, layout, keys)
    root_bytes = store.fetch_page(meta["root_page"])
    kind = root_bytes[4]  # header: page_id u32, then kind u8
    if kind in (LEAF_KIND, COLUMNAR_LEAF_KIND):
        root: Node = LeafNode(meta["root_page"])
        loader.load_leaf(root)  # type: ignore[arg-type]
    elif kind == INNER_KIND:
        root = InnerNode(meta["root_page"])
        loader.load_inner(root)  # type: ignore[arg-type]
    else:
        raise ValueError(f"root page has unknown kind {kind}")
    tree.root = root
    tree.vectorized_leaves = meta["version"] >= 3  # columnar leaf pages
    if len(tree) != meta["n_objects"]:
        raise ValueError(
            f"index corrupt: header says {meta['n_objects']} objects, "
            f"root subtree counts {len(tree)}"
        )
    if writable:
        # A fresh writer always starts from an empty WAL: recovery above
        # either replayed-and-truncated it or left only an unsealed tail.
        wal = WriteAheadLog(
            wal_path_for(path), fsync=fsync, file_factory=file_factory
        )
        wal.reset()
        tree.attach_writer(
            TreeWriter(
                tree,
                store,
                wal,
                keys,
                meta["height"],
                lock=lock,
                auto_checkpoint_bytes=auto_checkpoint_bytes,
                format_version=meta["version"],
            )
        )
    else:
        tree.read_only = True
        # Register reader presence for `repro reshard-gc` (best-effort;
        # released by tree.close()).
        reader_lock = _ReaderLock(path)
        if reader_lock.acquire():
            tree._reader_lock = reader_lock
    return tree
