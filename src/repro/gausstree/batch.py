"""Batch identification queries: amortize traversal work across queries.

*Scalable Probabilistic Similarity Ranking in Uncertain Databases*
(Bernecker et al., see PAPERS.md) frames the scalability story for
probabilistic similarity search as amortizing index traversal cost across
many concurrent queries. This module applies that idea to the Gauss-tree:

* the whole batch runs against one page store without cold starts, so a
  page faulted in by one query is a **buffer hit** for every later query
  (and, for a disk-opened tree, the decoded node is reused rather than
  re-materialized);
* per-node numeric work is **vectorized across the batch** by a shared
  :class:`BatchRefiner`: the first query to expand a node computes leaf
  Lemma-1 densities / child hull bounds for *all* queries in one numpy
  evaluation (an ``(m, n)`` kernel instead of ``m`` separate ``(n,)``
  calls), and later queries reaching the same node pay a dictionary
  lookup. Identification workloads cluster around the database objects,
  so batch members overwhelmingly revisit one another's nodes;
* for **columnar** leaves (bulk-loaded trees, format-v3 files) the
  refiner additionally precomputes, per page, every query's row maximum
  and scaled denominator mass — so expanding a columnar leaf costs a
  dictionary lookup and two float adds instead of four small-array numpy
  reductions. The per-query shifts are registered up front and the mass
  is recomputed exactly for the rare query that re-anchors its shift
  mid-traversal, keeping the accumulated sums bit-identical to the
  unbatched path.

Every query still owns its best-first traversal
(:class:`~repro.gausstree.search.SearchState`), so answer sets, posterior
guarantees and per-query logical page accounting are *identical* to the
one-at-a-time API — the tests assert match-for-match equality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.core.joint import log_joint_density_multi
from repro.gausstree.hull import node_log_bounds_multi
from repro.gausstree.node import InnerNode, LeafNode
from repro.gausstree.search import _CAP, _UNDERFLOW, SearchState

__all__ = ["BatchRefiner", "gausstree_mliq_many", "gausstree_tiq_many"]


class BatchRefiner:
    """Cross-query cache of per-node numeric work for one query batch.

    Caches are keyed by page id, which uniquely names a node within one
    tree; the batch APIs build a fresh refiner per call, so mutations
    between batches cannot leak stale numbers.
    """

    def __init__(self, tree, queries: Sequence) -> None:
        for q in queries:
            if q.dims != tree.dims:
                raise ValueError(
                    f"query is {q.dims}-d, tree is {tree.dims}-d"
                )
        self.tree = tree
        self.rule = tree.sigma_rule
        self.q_mu = np.vstack([q.mu for q in queries])
        self.q_sigma = np.vstack([q.sigma for q in queries])
        self._leaf_cache: dict[int, np.ndarray] = {}
        self._bounds_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Per-query scale shifts (registered by each SearchState at init)
        # plus, per columnar leaf page, the precomputed row maxima and
        # scaled denominator masses for every query in the batch.
        self._shifts: list[float] = [0.0] * len(queries)
        self._leaf_extras: dict[
            int, tuple[list[float], list[float], list[float]]
        ] = {}

    def register_shift(self, query_index: int, shift: float) -> None:
        """Record a query's scale shift so per-page denominator masses can
        be precomputed on its behalf; called by ``SearchState.__init__``."""
        self._shifts[query_index] = shift

    def leaf_log_densities(self, leaf: LeafNode) -> np.ndarray:
        """``(m, n)`` Lemma-1 log densities of the leaf's entries, one row
        per batch query; computed once per leaf per batch."""
        cached = self._leaf_cache.get(leaf.page_id)
        if cached is None:
            mu, sigma = leaf.arrays()
            cached = log_joint_density_multi(
                mu, sigma, self.q_mu, self.q_sigma, self.rule
            )
            self._leaf_cache[leaf.page_id] = cached
        return cached

    def leaf_extras(
        self, leaf: LeafNode
    ) -> tuple[list[np.ndarray], list[float], list[float], list[float]]:
        """Per-query expansion data for a columnar leaf, one list entry per
        batch query: ``(log_density_rows, row_maxima, scaled_masses,
        shifts_used)``.

        Computed for *all* queries in a handful of array operations the
        first time any query touches the page; ``SearchState`` indexes the
        lists directly on every later expansion. Each scaled mass is
        bit-identical to ``np.sum(np.exp(np.clip(row - shift, _UNDERFLOW,
        _CAP)))`` for the shift registered at state construction
        (elementwise ops are rowwise-independent and numpy's last-axis
        pairwise summation matches the 1-d case); the consumer must
        recompute the mass itself iff its current shift no longer equals
        its ``shifts_used`` entry (a query that re-anchored mid-traversal
        — rare by the 300-nat gap).
        """
        extras = self._leaf_extras.get(leaf.page_id)
        if extras is None:
            matrix = self.leaf_log_densities(leaf)
            scaled = matrix - np.asarray(self._shifts)[:, None]
            np.clip(scaled, _UNDERFLOW, _CAP, out=scaled)
            np.exp(scaled, out=scaled)
            extras = (
                list(matrix),  # row views, indexable without numpy dispatch
                matrix.max(axis=1).tolist(),
                scaled.sum(axis=1).tolist(),
                list(self._shifts),
            )
            self._leaf_extras[leaf.page_id] = extras
        return extras

    def child_log_bounds(
        self, inner: InnerNode
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` hull bounds of the node's children, each of
        shape ``(m, k)``; computed once per inner node per batch."""
        cached = self._bounds_cache.get(inner.page_id)
        if cached is None:
            mu_lo, mu_hi, sg_lo, sg_hi = inner.stacked_child_bounds()
            cached = node_log_bounds_multi(
                mu_lo, mu_hi, sg_lo, sg_hi, self.q_mu, self.q_sigma, self.rule
            )
            self._bounds_cache[inner.page_id] = cached
        return cached


def gausstree_mliq_many(
    tree, queries: Sequence[MLIQuery], tolerance: float = 1e-9
) -> tuple[list[list[Match]], QueryStats]:
    """Answer many k-MLIQs in one buffer-warm pass over the tree.

    Returns ``(per-query match lists, aggregate stats)``. Results are
    exactly what ``tree.mliq`` returns query by query; only the wall
    time changes (shared page cache, shared vectorized refinement).
    """
    from repro.gausstree.mliq import gausstree_mliq

    if not queries:
        return [], QueryStats()
    refiner = BatchRefiner(tree, [query.q for query in queries])
    # Build every state first: each registers its scale shift with the
    # refiner, so the first page any query expands precomputes masses
    # that are valid for the whole batch.
    states = [
        SearchState(tree, query.q, refiner=refiner, query_index=index)
        for index, query in enumerate(queries)
    ]
    results: list[list[Match]] = []
    total = QueryStats()
    for query, state in zip(queries, states):
        matches, stats = gausstree_mliq(tree, query, tolerance, state=state)
        results.append(matches)
        total.merge(stats)
    return results, total


def gausstree_tiq_many(
    tree,
    queries: Sequence[ThresholdQuery],
    tolerance: float = 0.0,
    probability_tolerance: float | None = None,
) -> tuple[list[list[Match]], QueryStats]:
    """Answer many TIQs in one buffer-warm pass over the tree.

    Returns ``(per-query match lists, aggregate stats)``; per-query
    semantics are identical to ``tree.tiq``.
    """
    from repro.gausstree.tiq import gausstree_tiq

    if not queries:
        return [], QueryStats()
    refiner = BatchRefiner(tree, [query.q for query in queries])
    states = [
        SearchState(tree, query.q, refiner=refiner, query_index=index)
        for index, query in enumerate(queries)
    ]
    results: list[list[Match]] = []
    total = QueryStats()
    for query, state in zip(queries, states):
        matches, stats = gausstree_tiq(
            tree,
            query,
            tolerance=tolerance,
            probability_tolerance=probability_tolerance,
            state=state,
        )
        results.append(matches)
        total.merge(stats)
    return results, total
