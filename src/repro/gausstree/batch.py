"""Batch identification queries: amortize traversal work across queries.

*Scalable Probabilistic Similarity Ranking in Uncertain Databases*
(Bernecker et al., see PAPERS.md) frames the scalability story for
probabilistic similarity search as amortizing index traversal cost across
many concurrent queries. This module applies that idea to the Gauss-tree:

* the whole batch runs against one page store without cold starts, so a
  page faulted in by one query is a **buffer hit** for every later query
  (and, for a disk-opened tree, the decoded node is reused rather than
  re-materialized);
* per-node numeric work is **vectorized across the batch** by a shared
  :class:`BatchRefiner`: the first query to expand a node computes leaf
  Lemma-1 densities / child hull bounds for *all* queries in one numpy
  evaluation (an ``(m, n)`` kernel instead of ``m`` separate ``(n,)``
  calls), and later queries reaching the same node pay a dictionary
  lookup. Identification workloads cluster around the database objects,
  so batch members overwhelmingly revisit one another's nodes.

Every query still owns its best-first traversal
(:class:`~repro.gausstree.search.SearchState`), so answer sets, posterior
guarantees and per-query logical page accounting are *identical* to the
one-at-a-time API — the tests assert match-for-match equality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.core.joint import log_joint_density_multi
from repro.gausstree.hull import node_log_bounds_multi
from repro.gausstree.node import InnerNode, LeafNode
from repro.gausstree.search import SearchState

__all__ = ["BatchRefiner", "gausstree_mliq_many", "gausstree_tiq_many"]


class BatchRefiner:
    """Cross-query cache of per-node numeric work for one query batch.

    Caches are keyed by page id, which uniquely names a node within one
    tree; the batch APIs build a fresh refiner per call, so mutations
    between batches cannot leak stale numbers.
    """

    def __init__(self, tree, queries: Sequence) -> None:
        for q in queries:
            if q.dims != tree.dims:
                raise ValueError(
                    f"query is {q.dims}-d, tree is {tree.dims}-d"
                )
        self.tree = tree
        self.rule = tree.sigma_rule
        self.q_mu = np.vstack([q.mu for q in queries])
        self.q_sigma = np.vstack([q.sigma for q in queries])
        self._leaf_cache: dict[int, np.ndarray] = {}
        self._bounds_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def leaf_log_densities(self, leaf: LeafNode) -> np.ndarray:
        """``(m, n)`` Lemma-1 log densities of the leaf's entries, one row
        per batch query; computed once per leaf per batch."""
        cached = self._leaf_cache.get(leaf.page_id)
        if cached is None:
            mu, sigma = leaf.arrays()
            cached = log_joint_density_multi(
                mu, sigma, self.q_mu, self.q_sigma, self.rule
            )
            self._leaf_cache[leaf.page_id] = cached
        return cached

    def child_log_bounds(
        self, inner: InnerNode
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` hull bounds of the node's children, each of
        shape ``(m, k)``; computed once per inner node per batch."""
        cached = self._bounds_cache.get(inner.page_id)
        if cached is None:
            mu_lo, mu_hi, sg_lo, sg_hi = inner.stacked_child_bounds()
            cached = node_log_bounds_multi(
                mu_lo, mu_hi, sg_lo, sg_hi, self.q_mu, self.q_sigma, self.rule
            )
            self._bounds_cache[inner.page_id] = cached
        return cached


def gausstree_mliq_many(
    tree, queries: Sequence[MLIQuery], tolerance: float = 1e-9
) -> tuple[list[list[Match]], QueryStats]:
    """Answer many k-MLIQs in one buffer-warm pass over the tree.

    Returns ``(per-query match lists, aggregate stats)``. Results are
    exactly what ``tree.mliq`` returns query by query; only the wall
    time changes (shared page cache, shared vectorized refinement).
    """
    from repro.gausstree.mliq import gausstree_mliq

    if not queries:
        return [], QueryStats()
    refiner = BatchRefiner(tree, [query.q for query in queries])
    results: list[list[Match]] = []
    total = QueryStats()
    for index, query in enumerate(queries):
        state = SearchState(tree, query.q, refiner=refiner, query_index=index)
        matches, stats = gausstree_mliq(tree, query, tolerance, state=state)
        results.append(matches)
        total.merge(stats)
    return results, total


def gausstree_tiq_many(
    tree,
    queries: Sequence[ThresholdQuery],
    tolerance: float = 0.0,
    probability_tolerance: float | None = None,
) -> tuple[list[list[Match]], QueryStats]:
    """Answer many TIQs in one buffer-warm pass over the tree.

    Returns ``(per-query match lists, aggregate stats)``; per-query
    semantics are identical to ``tree.tiq``.
    """
    from repro.gausstree.tiq import gausstree_tiq

    if not queries:
        return [], QueryStats()
    refiner = BatchRefiner(tree, [query.q for query in queries])
    results: list[list[Match]] = []
    total = QueryStats()
    for index, query in enumerate(queries):
        state = SearchState(tree, query.q, refiner=refiner, query_index=index)
        matches, stats = gausstree_tiq(
            tree,
            query,
            tolerance=tolerance,
            probability_tolerance=probability_tolerance,
            state=state,
        )
        results.append(matches)
        total.merge(stats)
    return results, total
