"""Integrals of the hull function (Section 5.3, split optimisation).

The probability that a node must be accessed by an arbitrary query is
proportional to the integral of its hull curve
``integral N^_{mu_lo, mu_hi, sigma_lo, sigma_hi}(x) dx``. Section 5.3
decomposes the integral over Lemma 2's seven cases:

* cases I, III, V, VII are Gaussian tail/body integrals (the paper
  integrates them with a "sigmoid approximation by a degree-5 polynomial" —
  we provide both that polynomial path and the exact erf path);
* case IV is a constant ``1/(sqrt(2 pi) sigma_lo)`` over ``[mu_lo, mu_hi]``;
* cases II and VI substitute ``sigma = mu_bound - x`` and integrate
  ``1 / (sqrt(2 pi e) (mu_bound - x))`` to
  ``(ln sigma_hi - ln sigma_lo) / sqrt(2 pi e)``.

Summing all seven pieces collapses to the closed form (derived here, and
verified against numerical quadrature in the tests):

``integral N^ dx = 1 + (mu_hi - mu_lo) / (sqrt(2 pi) sigma_lo)
                    + 2 (ln sigma_hi - ln sigma_lo) / sqrt(2 pi e)``

which makes the split heuristic quantitative: a small ``sigma_lo`` makes
mu-extent expensive (split in mu), a wide sigma band makes the log term
dominant (split in sigma) — exactly the intuition the paper develops.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core import gaussian
from repro.core.gaussian import SQRT_TWO_PI, SQRT_TWO_PI_E
from repro.gausstree.bounds import ParameterRect

__all__ = [
    "hull_integral_total",
    "hull_integral",
    "log_split_quality",
    "CDF_EXACT",
    "CDF_POLY5",
]

#: Exact normal CDF (erf based).
CDF_EXACT: Callable[[float], float] = lambda z: gaussian.cdf(z)
#: The paper's degree-5 polynomial sigmoid approximation.
CDF_POLY5: Callable[[float], float] = lambda z: gaussian.cdf_poly5(z)


def hull_integral_total(
    mu_lo: float, mu_hi: float, sigma_lo: float, sigma_hi: float
) -> float:
    """Closed-form ``integral_{-inf}^{inf} N^(x) dx`` of one dimension."""
    if sigma_lo <= 0.0 or sigma_hi < sigma_lo or mu_hi < mu_lo:
        raise ValueError("invalid bounds")
    return (
        1.0
        + (mu_hi - mu_lo) / (SQRT_TWO_PI * sigma_lo)
        + 2.0 * (math.log(sigma_hi) - math.log(sigma_lo)) / SQRT_TWO_PI_E
    )


def hull_integral(
    a: float,
    b: float,
    mu_lo: float,
    mu_hi: float,
    sigma_lo: float,
    sigma_hi: float,
    cdf: Callable[[float], float] = CDF_EXACT,
) -> float:
    """``integral_a^b N^(x) dx`` via the paper's piecewise case analysis.

    ``cdf`` selects the standard-normal CDF implementation — pass
    :data:`CDF_POLY5` for the paper's degree-5 polynomial device. This
    partial integral is what an implementation without the closed form
    would evaluate; we keep it both as a faithful artifact and because the
    tests validate it against quadrature and the total against
    :func:`hull_integral_total`.
    """
    if sigma_lo <= 0.0 or sigma_hi < sigma_lo or mu_hi < mu_lo:
        raise ValueError("invalid bounds")
    if b <= a:
        return 0.0

    def gauss_piece(lo: float, hi: float, mu: float, sigma: float) -> float:
        """Integral of N_{mu,sigma} over [lo, hi] via the chosen CDF."""
        return sigma * 0.0 + (cdf((hi - mu) / sigma) - cdf((lo - mu) / sigma))

    def reciprocal_piece(lo: float, hi: float, mu_edge: float) -> float:
        """Cases II/VI: integral of 1/(sqrt(2 pi e) |mu_edge - x|)."""
        d_lo = abs(mu_edge - lo)
        d_hi = abs(mu_edge - hi)
        near, far = min(d_lo, d_hi), max(d_lo, d_hi)
        if near <= 0.0:
            raise ValueError("reciprocal piece touches its singularity")
        return (math.log(far) - math.log(near)) / SQRT_TWO_PI_E

    # Breakpoints of the seven cases, left to right.
    b1 = mu_lo - sigma_hi
    b2 = mu_lo - sigma_lo
    b3 = mu_lo
    b4 = mu_hi
    b5 = mu_hi + sigma_lo
    b6 = mu_hi + sigma_hi

    total = 0.0
    # (I): Gaussian N_{mu_lo, sigma_hi} on (-inf, b1)
    lo, hi = a, min(b, b1)
    if hi > lo:
        total += gauss_piece(lo, hi, mu_lo, sigma_hi)
    # (II): reciprocal on [b1, b2)
    lo, hi = max(a, b1), min(b, b2)
    if hi > lo:
        total += reciprocal_piece(lo, hi, mu_lo)
    # (III): Gaussian N_{mu_lo, sigma_lo} on [b2, b3)
    lo, hi = max(a, b2), min(b, b3)
    if hi > lo:
        total += gauss_piece(lo, hi, mu_lo, sigma_lo)
    # (IV): constant peak 1/(sqrt(2 pi) sigma_lo) on [b3, b4)
    lo, hi = max(a, b3), min(b, b4)
    if hi > lo:
        total += (hi - lo) / (SQRT_TWO_PI * sigma_lo)
    # (V): Gaussian N_{mu_hi, sigma_lo} on [b4, b5)
    lo, hi = max(a, b4), min(b, b5)
    if hi > lo:
        total += gauss_piece(lo, hi, mu_hi, sigma_lo)
    # (VI): reciprocal on [b5, b6)
    lo, hi = max(a, b5), min(b, b6)
    if hi > lo:
        total += reciprocal_piece(lo, hi, mu_hi)
    # (VII): Gaussian N_{mu_hi, sigma_hi} on [b6, inf)
    lo, hi = max(a, b6), b
    if hi > lo:
        total += gauss_piece(lo, hi, mu_hi, sigma_hi)
    return total


def log_split_quality(rect: ParameterRect) -> float:
    """Log of the multivariate hull integral of a candidate node.

    Independence across dimensions makes the multivariate hull the product
    of per-dimension hulls, so its integral over the whole space is the
    product of the per-dimension integrals; in log space that is a sum.
    Smaller is better: the split strategy of Section 5.3 minimises the sum
    of the two resulting nodes' integrals.
    """
    per_dim = (
        1.0
        + (rect.mu_hi - rect.mu_lo) / (SQRT_TWO_PI * rect.sigma_lo)
        + 2.0 * (np.log(rect.sigma_hi) - np.log(rect.sigma_lo)) / SQRT_TWO_PI_E
    )
    return float(np.sum(np.log(per_dim)))
