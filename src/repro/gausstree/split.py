"""Node split strategy (Section 5.3).

On overflow the Gauss-tree tentatively performs a *median split* along each
of the ``2 d`` parameter axes (every mu dimension and every sigma
dimension), evaluates the hull integral
``integral N^(x) dx`` of the two tentative nodes, and keeps the split whose
integral sum is minimal. The integral is the node's access probability for
a random query, so the chosen split is the one that makes future queries
cheapest — this is what makes the tree prefer mu splits where sigma is
small and sigma splits where the sigma band is wide (the paper's
intuition, which the ablation benchmark quantifies against a naive
volume-minimising split).

The same machinery splits leaves (sorting pfv by ``mu_i`` / ``sigma_i``)
and inner nodes (sorting children by their MBR centre on the axis).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.integral import log_split_quality
from repro.gausstree.node import Node

__all__ = ["split_entries", "split_children", "SplitResult"]

T = TypeVar("T")

SplitResult = tuple[list[T], list[T], float]


def _log_add(a: float, b: float) -> float:
    """log(exp(a) + exp(b)) without leaving log space."""
    if a < b:
        a, b = b, a
    if a == -math.inf:
        return a
    return a + math.log1p(math.exp(b - a))


def _best_median_split(
    items: Sequence[T],
    axis_count: int,
    coordinate: Callable[[T, int], float],
    rect_of_group: Callable[[list[T]], ParameterRect],
    min_fill: int,
    quality: Callable[[ParameterRect], float],
) -> SplitResult:
    """Try a median split on every axis; keep the minimum-quality one.

    ``quality`` maps a group MBR to a log access-probability score; the
    split score is ``log(exp(q_left) + exp(q_right))``, i.e. the log of
    the sum of the two hull integrals the paper minimises.
    """
    n = len(items)
    if n < 2 * min_fill:
        raise ValueError(
            f"cannot split {n} items with a minimum fill of {min_fill}"
        )
    mid = n // 2
    if mid < min_fill or n - mid < min_fill:
        # A median split always satisfies the Definition-4 fill bounds for
        # legal overflow sizes; this guards misuse.
        mid = min_fill

    best: SplitResult | None = None
    for axis in range(axis_count):
        order = sorted(range(n), key=lambda i: coordinate(items[i], axis))
        left = [items[i] for i in order[:mid]]
        right = [items[i] for i in order[mid:]]
        score = _log_add(
            quality(rect_of_group(left)), quality(rect_of_group(right))
        )
        if best is None or score < best[2]:
            best = (left, right, score)
    assert best is not None
    return best


def _entry_coordinate(v: PFV, axis: int) -> float:
    """Axis order: mu_0..mu_{d-1}, sigma_0..sigma_{d-1}."""
    d = v.dims
    if axis < d:
        return float(v.mu[axis])
    return float(v.sigma[axis - d])


def _child_coordinate(node: Node, axis: int) -> float:
    """Inner entries sort by their MBR centre on the axis."""
    rect = node.rect
    assert rect is not None
    d = rect.dims
    if axis < d:
        return float(0.5 * (rect.mu_lo[axis] + rect.mu_hi[axis]))
    j = axis - d
    return float(0.5 * (rect.sigma_lo[j] + rect.sigma_hi[j]))


def split_entries(
    entries: Sequence[PFV],
    min_fill: int,
    quality: Callable[[ParameterRect], float] = log_split_quality,
) -> SplitResult:
    """Split an overflowing leaf's pfv into two groups (Section 5.3)."""
    d = entries[0].dims
    return _best_median_split(
        list(entries),
        axis_count=2 * d,
        coordinate=_entry_coordinate,
        rect_of_group=ParameterRect.of_vectors,
        min_fill=min_fill,
        quality=quality,
    )


def split_children(
    children: Sequence[Node],
    min_fill: int,
    quality: Callable[[ParameterRect], float] = log_split_quality,
) -> SplitResult:
    """Split an overflowing inner node's children into two groups."""
    rect = children[0].rect
    assert rect is not None
    d = rect.dims
    return _best_median_split(
        list(children),
        axis_count=2 * d,
        coordinate=_child_coordinate,
        rect_of_group=lambda group: ParameterRect.of_rects(
            [c.rect for c in group]
        ),
        min_fill=min_fill,
        quality=quality,
    )


def volume_split_quality(rect: ParameterRect) -> float:
    """Naive alternative split score: log parameter-space volume.

    Used by the ablation benchmark to quantify how much the paper's
    hull-integral criterion actually buys over a conventional
    R-tree-style volume minimisation. Degenerate (zero-extent) boxes fall
    back to the margin so the comparison stays total-ordered.
    """
    vol = rect.volume()
    if vol > 0.0:
        return math.log(vol)
    margin = rect.margin()
    return -1e9 + (math.log(margin) if margin > 0.0 else -1e9)
