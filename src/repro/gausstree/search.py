"""Shared machinery of the Gauss-tree query algorithms (Section 5.2).

Both k-MLIQ and TIQ run a best-first traversal over a priority queue of
"active nodes" ordered by the node's upper density bound for the query
(Lemma 2 hull with query-combined sigmas), and both need running bounds on
the Bayes denominator ``sum_{w in DB} p(q|w)``:

``exact_sum  +  min_remaining  <=  denominator  <=  exact_sum + max_remaining``

where ``exact_sum`` accumulates the exactly refined leaf entries and the
``*_remaining`` terms add ``count * N_`` / ``count * N^`` for every subtree
still sitting in the queue (the sum approximation of Section 5.2).

Numerical strategy
------------------
Densities of 27-dimensional pfv span hundreds of nats, so every per-object
and per-node quantity is carried as a *log*; the three sums are maintained
in linear space after subtracting a common ``shift``. The shift starts at
the root's hull bound (an upper bound on everything in the tree) and is
re-anchored to the best exact density seen whenever the two drift more
than 300 nats apart, replaying the stored leaf densities and the queue
entries so no mass is lost. Individual scaled terms that would still
overflow (a node bound astronomically above the current scale — possible
for loose hulls in empty regions) are tracked as *capped*: while any
capped term is in a sum, that sum reports ``inf``, which every consumer
treats conservatively (upper bounds become infinite, probability lower
bounds become 0) until the offending node is popped. Ratios are
scale-invariant, so the shift cancels in every reported probability.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappop, heappush
from math import exp as _exp

import numpy as np

from repro.core.joint import log_joint_density_batch
from repro.core.pfv import PFV
from repro.gausstree.hull import node_log_bounds, node_log_bounds_batch
from repro.gausstree.node import LeafNode, Node

__all__ = ["SearchState"]

# Re-anchor the shift when it drifts this many nats from the best density.
_RESCALE_GAP = 300.0
# Scaled terms above exp(_CAP) are tracked as capped rather than summed.
_CAP = 690.0
# Scaled terms below exp(_UNDERFLOW) are treated as zero. The floor sits
# inside the *normal* float64 range (exp(-700) ~ 1e-304): letting exponents
# run to the representable limit (-745) makes ``exp`` emit subnormals,
# which are ~100x slower on common FPUs and contribute nothing a 1e-12
# posterior tolerance could ever see.
_UNDERFLOW = -700.0
_NEG_INF = -math.inf


# Queue entries are flat tuples — ``(-log_upper, tiebreak, log_lower,
# node, count)`` — rather than objects: the traversal pushes and pops one
# per tree node per query, so the allocation and attribute-access savings
# are the single biggest term of the per-pop constant. The tiebreak is
# unique, so heap comparisons never reach the node. ``count`` is the
# node's count frozen at push time (no mutations mid-query).


class _BoundSum:
    """A non-negative sum of scaled terms, with overflow-capped entries.

    Terms are ``count * exp(log_value - shift)``. A term whose exponent
    exceeds the cap is counted instead of summed; while any such term is
    present :attr:`value` is ``inf`` — a valid (infinitely loose) upper
    bound. Add/remove must be called with the same shift for the same
    entry; the owning state guarantees that by rebuilding both sums on
    every shift change.

    Floating-point add/remove cycles leave an *absolute* residue of the
    order of one ulp of the largest partial sum per operation. That can
    dominate when the search descends many orders of magnitude (e.g. a
    loose root hull over 27-d data), so the sum tracks a conservative
    :attr:`drift` allowance; consumers widen their bounds by it and the
    owning state rebuilds the sums from the queue once the allowance
    becomes material.
    """

    __slots__ = ("finite", "capped", "drift")

    # One add/remove contributes at most a few ulps of the running peak.
    _ULP = 2.3e-16
    _SAFETY = 4.0

    def __init__(self) -> None:
        self.finite = 0.0
        self.capped = 0
        self.drift = 0.0

    # Precomputed _SAFETY * _ULP (exact: the factor is a power of two).
    _DRIFT_PER_OP = 4.0 * 2.3e-16

    def add(self, log_value: float, count: int, shift: float) -> None:
        delta = log_value - shift
        if delta > _CAP:
            self.capped += 1
        elif delta >= _UNDERFLOW:
            self.finite += count * _exp(delta)
            self.drift += self._DRIFT_PER_OP * abs(self.finite)

    def remove(self, log_value: float, count: int, shift: float) -> None:
        delta = log_value - shift
        if delta > _CAP:
            self.capped -= 1
        elif delta >= _UNDERFLOW:
            self.drift += self._DRIFT_PER_OP * abs(self.finite)
            self.finite -= count * _exp(delta)
            if self.finite < 0.0:  # float drift from add/remove cycles
                self.finite = 0.0

    def reset(self) -> None:
        self.finite = 0.0
        self.capped = 0
        self.drift = 0.0

    @property
    def lower_value(self) -> float:
        """A certainly-not-overestimating reading of the sum."""
        return max(0.0, self.finite - self.drift)

    @property
    def upper_value(self) -> float:
        """A certainly-not-underestimating reading of the sum."""
        return math.inf if self.capped > 0 else self.finite + self.drift


class SearchState:
    """Priority queue plus denominator bounds for one query.

    ``refiner`` (see :class:`repro.gausstree.batch.BatchRefiner`) lets a
    batch of concurrent queries share the numeric work of node expansion:
    when set, leaf densities and child bounds come from the refiner's
    cross-query cache (computed vectorised over every query in the batch
    the first time any of them expands the node) and ``query_index``
    selects this state's row. Traversal order, accounting and results are
    unchanged — the refiner only changes who computes the numbers.
    """

    def __init__(self, tree, q: PFV, refiner=None, query_index: int = 0) -> None:
        if q.dims != tree.dims:
            raise ValueError(f"query is {q.dims}-d, tree is {tree.dims}-d")
        self.tree = tree
        self.q = q
        self.refiner = refiner
        self.query_index = query_index
        # The refiner's per-page extras cache (a dict mutated in place,
        # never rebound), kept as an attribute for call-free lookups in
        # the leaf fast path.
        self._refiner_extras = (
            refiner._leaf_extras if refiner is not None else None
        )
        self.rule = tree.sigma_rule
        self._counter = itertools.count()
        self._heap: list[tuple[float, int, float, Node, int]] = []
        # Bound once: the store is fixed for the state's lifetime and
        # the per-pop access accounting sits on the hottest path.
        self._read = tree.store.read
        self.exact_sum = 0.0
        self._min_rem = _BoundSum()
        self._max_rem = _BoundSum()
        self.max_log_density = -math.inf
        self.nodes_expanded = 0
        self.objects_refined = 0
        # Of which: objects served by the columnar page kernel — the
        # stats layer prices these at the cost model's vectorized rate.
        self.objects_refined_vectorized = 0
        # Stored so that a shift change can rebuild exact_sum losslessly.
        self._leaf_log_densities: list[np.ndarray] = []
        root = tree.root
        if root.count == 0:
            self.shift = 0.0
            return
        log_lower, log_upper = node_log_bounds(root.rect, q, self.rule)
        self.shift = log_upper
        if refiner is not None:
            refiner.register_shift(query_index, log_upper)
        self._push(root, log_lower, log_upper)

    # -- scaling -------------------------------------------------------------

    def scaled_density(self, log_density: float) -> float:
        """An object's density on the current scale.

        Only called for refined objects, whose logs are within the rescale
        gap of the shift by construction, so the exponent is bounded.
        """
        delta = log_density - self.shift
        if delta < _UNDERFLOW:
            return 0.0
        return math.exp(min(delta, _CAP))

    def _maybe_rescale(self) -> None:
        if self.max_log_density == -math.inf:
            return
        if abs(self.shift - self.max_log_density) <= _RESCALE_GAP:
            return
        self.shift = self.max_log_density
        self.exact_sum = 0.0
        for arr in self._leaf_log_densities:
            self.exact_sum += float(
                np.sum(np.exp(np.clip(arr - self.shift, _UNDERFLOW, 0.0)))
            )
        self._min_rem.reset()
        self._max_rem.reset()
        for item in self._heap:
            n = item[4]
            self._min_rem.add(item[2], n, self.shift)
            self._max_rem.add(-item[0], n, self.shift)

    # -- queue ---------------------------------------------------------------

    def _push(self, node: Node, log_lower: float, log_upper: float) -> None:
        n = node.count
        heappush(
            self._heap,
            (-log_upper, next(self._counter), log_lower, node, n),
        )
        self._min_rem.add(log_lower, n, self.shift)
        self._max_rem.add(log_upper, n, self.shift)

    @property
    def has_active_nodes(self) -> bool:
        return bool(self._heap)

    @property
    def top_log_upper(self) -> float:
        """Upper density bound of the best unexplored subtree."""
        if not self._heap:
            return -math.inf
        return -self._heap[0][0]

    @property
    def denominator_low(self) -> float:
        """Scaled lower bound of the Bayes denominator.

        Widened by the drift allowance in the safe direction, so an
        acceptance/rejection decided against it stays correct despite
        float residue in the incremental sums.
        """
        self._maybe_rebuild_bounds()
        return self.exact_sum + self._min_rem.lower_value

    @property
    def denominator_high(self) -> float:
        """Scaled upper bound of the Bayes denominator (may be ``inf``)."""
        self._maybe_rebuild_bounds()
        return self.exact_sum + self._max_rem.upper_value

    @property
    def denominator_mid(self) -> float:
        if self._max_rem.capped > 0:
            return math.inf
        self._maybe_rebuild_bounds()
        return self.exact_sum + 0.5 * (
            self._min_rem.lower_value
            + (self._max_rem.finite + self._max_rem.drift)
        )

    def _maybe_rebuild_bounds(self) -> None:
        """Replay the queue when drift is material next to the sums.

        O(queue) per rebuild; triggered only when the allowance exceeds a
        millionth of the quantity it pads, which keeps the amortised cost
        negligible while making the reported bounds effectively exact.
        """
        threshold = 1e-6 * (self.exact_sum + self._min_rem.finite) + 1e-300
        if self._min_rem.drift <= threshold and self._max_rem.drift <= threshold:
            return
        self._min_rem.reset()
        self._max_rem.reset()
        for item in self._heap:
            n = item[4]
            self._min_rem.add(item[2], n, self.shift)
            self._max_rem.add(-item[0], n, self.shift)
        # A fresh replay's residue is one pass of additions, far below
        # the incremental allowance it replaces.
        self._min_rem.drift = _BoundSum._ULP * self._min_rem.finite * max(
            1, len(self._heap)
        )
        self._max_rem.drift = _BoundSum._ULP * self._max_rem.finite * max(
            1, len(self._heap)
        )

    # -- expansion -------------------------------------------------------------

    def pop_and_expand(
        self,
    ) -> tuple[LeafNode, np.ndarray, float, bool] | None:
        """Pop the top node; count one page access.

        Inner node: its children are pushed (their bounds tighten the
        denominator interval) and ``None`` is returned. Leaf: every stored
        pfv is refined exactly (vectorised Lemma 1) and
        ``(leaf, log_densities, max_log_density, columnar)`` is returned —
        the max lets callers skip pages that cannot improve their
        candidate set, the flag whether the page was refined by the
        columnar kernel (== ``leaf.is_columnar`` after refinement, saved
        here so callers skip the property re-check).
        """
        neg_upper, _, log_lower, node, n = heappop(self._heap)
        shift = self.shift
        self._min_rem.remove(log_lower, n, shift)
        self._max_rem.remove(-neg_upper, n, shift)
        self._read(node.page_id)
        self.nodes_expanded += 1
        if not node.is_leaf:
            if self.refiner is not None:
                lows, highs = self.refiner.child_log_bounds(node)
                lows = lows[self.query_index]
                highs = highs[self.query_index]
            else:
                lows, highs = node_log_bounds_batch(
                    *node.stacked_child_bounds(), self.q, self.rule  # type: ignore[attr-defined]
                )
            # Inline _push with everything pre-bound: a query pushes one
            # entry per tree node, so per-child lookups add up.
            heap = self._heap
            counter = self._counter
            min_add = self._min_rem.add
            max_add = self._max_rem.add
            for child, lo, hi in zip(node.children, lows.tolist(), highs.tolist()):  # type: ignore[attr-defined]
                cn = child.count
                heappush(heap, (-hi, next(counter), lo, child, cn))
                min_add(lo, cn, shift)
                max_add(hi, cn, shift)
            return None
        leaf: LeafNode = node  # type: ignore[assignment]
        mass = None
        used_shift = math.nan
        refiner = self.refiner
        if refiner is not None:
            if leaf.is_columnar:
                # Columnar fast path: densities, row max and scaled mass
                # were precomputed for the whole batch on first touch;
                # indexing the extras lists here keeps a leaf expansion
                # free of per-call numpy dispatch.
                extras = self._refiner_extras.get(leaf.page_id)
                if extras is None:
                    extras = refiner.leaf_extras(leaf)
                qi = self.query_index
                log_dens = extras[0][qi]
                best = extras[1][qi]
                mass = extras[2][qi]
                used_shift = extras[3][qi]
                columnar = True
            else:
                log_dens = refiner.leaf_log_densities(leaf)[self.query_index]
                best = float(np.max(log_dens))
                # Re-checked after the density computation, which
                # materializes disk stubs — a v3 page only reports
                # columnar once decoded.
                columnar = leaf.is_columnar
        else:
            mu, sigma = leaf.arrays()
            log_dens = log_joint_density_batch(mu, sigma, self.q, self.rule)
            best = float(np.max(log_dens))
            columnar = leaf.is_columnar
        self.objects_refined += n
        if columnar:
            self.objects_refined_vectorized += n
        max_ld = self.max_log_density
        if best > max_ld:
            max_ld = self.max_log_density = best
        # Rescale replays the arrays stored so far; append this leaf only
        # afterwards so its mass enters exact_sum exactly once. The gap
        # guard is inlined — _maybe_rescale would repeat it, and this is
        # once per leaf expansion.
        if max_ld != _NEG_INF and (
            shift - max_ld > _RESCALE_GAP or max_ld - shift > _RESCALE_GAP
        ):
            self._maybe_rescale()
            shift = self.shift
        self._leaf_log_densities.append(log_dens)
        if mass is None or used_shift != shift:
            mass = float(
                np.sum(np.exp(np.clip(log_dens - shift, _UNDERFLOW, _CAP)))
            )
        self.exact_sum += mass
        return leaf, log_dens, best, columnar
