"""Backend protocol, adapters and registry of the unified query engine.

Every access method in the repository — the in-memory Gauss-tree, the
disk-opened (read-only or writable) Gauss-tree, the paged sequential
scan and the X-tree filter+refine baseline — registers here behind one
capability-declaring :class:`Backend` surface. A
:class:`~repro.engine.session.Session` talks only to this surface; the
adapters translate to each method's internal entry points (never the
deprecated public shims, so engine traffic emits no warnings).

Capabilities are plain strings so third-party backends can extend the
vocabulary:

``"mliq"`` / ``"tiq"``
    answers that query kind (``RankQuery`` rides on ``"mliq"``);
``"batch"``
    has a native multi-query entry point sharing one pass/buffer —
    the executor then sends whole batches instead of looping;
``"exact"``
    answer sets provably equal the sequential-scan reference (the
    X-tree baseline lacks this: its quantile-rectangle filter allows
    false dismissals, which is the paper's own caveat);
``"writable"``
    accepts ``insert``/``delete`` through the session;
``"persistent"``
    backed by an index file on disk.

Use :func:`register_backend` to add a backend; factories receive the
coerced source (a :class:`~repro.core.database.PFVDatabase` or an index
path) plus the ``connect()`` keyword options they understand.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.engine.spec import MLIQ, TIQ

__all__ = [
    "Backend",
    "BackendAdapter",
    "PlanEstimate",
    "CapabilityError",
    "register_backend",
    "available_backends",
    "create_backend",
    "backend_for_index",
]


class CapabilityError(RuntimeError):
    """An operation the connected backend does not declare support for."""


class PlanEstimate:
    """Planner-facing cost guess: pages, modeled IO/CPU seconds, one note.

    Estimates are order-of-magnitude planning hints derived from the
    storage cost model (:mod:`repro.storage.costmodel`); the
    :class:`~repro.core.queries.QueryStats` of an actual execution are
    the ground truth. ``cpu_seconds`` prices the expected refinement work
    — backends whose leaves are columnar use the cost model's vectorized
    rate, so ``explain()`` reflects the format-v3 speedup.
    """

    __slots__ = ("pages", "io_seconds", "note", "cpu_seconds")

    def __init__(
        self,
        pages: int,
        io_seconds: float,
        note: str,
        cpu_seconds: float = 0.0,
    ) -> None:
        self.pages = pages
        self.io_seconds = io_seconds
        self.note = note
        self.cpu_seconds = cpu_seconds


@runtime_checkable
class Backend(Protocol):
    """What a registered access method must provide to the executor."""

    name: str
    capabilities: frozenset[str]

    def run_mliq(
        self, specs: Sequence[MLIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of MLIQ specs: per-spec match lists + stats."""
        ...

    def run_tiq(
        self, specs: Sequence[TIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of TIQ specs: per-spec match lists + stats."""
        ...

    def count(self) -> int:
        """Number of objects the backend serves."""
        ...

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        """Planner cost guess for one kind's sub-batch."""
        ...


class BackendAdapter:
    """Shared template for the built-in adapters.

    Implements the normalised edge-case semantics of
    :mod:`repro.engine.spec` once — ``k == 0`` and empty-backend specs
    short-circuit to the empty list here, so subclasses only translate
    well-posed legacy queries via ``_mliq_batch`` / ``_tiq_batch``.
    """

    name = "abstract"
    capabilities: frozenset[str] = frozenset()

    # -- template ------------------------------------------------------------

    def run_mliq(
        self, specs: Sequence[MLIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of MLIQ specs (normalised edge cases applied
        here; well-posed queries delegate to ``_mliq_batch``)."""
        self._require("mliq")
        results: list[list[Match]] = [[] for _ in specs]
        if self.count() == 0:
            return results, QueryStats()
        live = [(i, spec.lower()) for i, spec in enumerate(specs) if spec.k > 0]
        if not live:
            return results, QueryStats()
        answered, stats = self._mliq_batch([q for _, q in live])
        for (i, _), matches in zip(live, answered):
            results[i] = matches
        return results, stats

    def run_tiq(
        self, specs: Sequence[TIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of TIQ specs (normalised edge cases applied
        here; well-posed queries delegate to ``_tiq_batch``)."""
        self._require("tiq")
        if self.count() == 0 or not specs:
            return [[] for _ in specs], QueryStats()
        return self._tiq_batch(list(specs))

    def run_ranked(
        self, specs: Sequence
    ) -> tuple[list[list[Match]], QueryStats]:
        """Answer a batch of ``ConsensusTopK``/``ExpectedRank`` specs by
        MLIQ lowering plus exact rescoring of the returned prefix (see
        :mod:`repro.engine.semantics`). Any backend that answers MLIQ
        answers the ranked semantics; composite backends override to
        merge per-shard sufficient statistics instead."""
        from repro.engine.semantics import score_ranked

        answered, stats = self.run_mliq([s.lower() for s in specs])
        return (
            [
                score_ranked(spec, matches)
                for spec, matches in zip(specs, answered)
            ],
            stats,
        )

    def _require(self, capability: str) -> None:
        if capability not in self.capabilities:
            raise CapabilityError(
                f"backend {self.name!r} does not support {capability!r} "
                f"(capabilities: {sorted(self.capabilities)})"
            )

    # -- to be provided by subclasses ---------------------------------------

    def _mliq_batch(
        self, queries: list[MLIQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        raise NotImplementedError

    def _tiq_batch(
        self, specs: list[TIQ]
    ) -> tuple[list[list[Match]], QueryStats]:
        raise NotImplementedError

    def count(self) -> int:
        """Number of objects the backend serves."""
        raise NotImplementedError

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        """Planner cost guess for one kind's sub-batch."""
        raise NotImplementedError

    # -- optional write surface ----------------------------------------------

    def insert(self, v: PFV) -> None:
        """Insert one pfv (writable backends override)."""
        raise CapabilityError(f"backend {self.name!r} is not writable")

    def insert_many(self, vectors: Iterable[PFV]) -> int:
        """Insert a batch; default loops :meth:`insert` (backends with a
        native group-commit path override). Returns the number
        inserted."""
        count = 0
        for v in vectors:
            self.insert(v)
            count += 1
        return count

    def delete(self, v: PFV) -> bool:
        """Delete one pfv, reporting whether it was found (writable
        backends override)."""
        raise CapabilityError(f"backend {self.name!r} is not writable")

    def flush(self) -> None:
        """Durability checkpoint (default: no-op)."""

    def close(self) -> None:
        """Release file handles / worker pools (default: no-op)."""

    def cold_start(self) -> None:
        """Drop the page cache (evaluation protocol hook)."""
        store = getattr(self, "store", None)
        if store is not None:
            store.cold_start()

    def database(self) -> PFVDatabase:
        """Materialise the stored objects (for workload generation)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} n={self.count()}>"


# ---------------------------------------------------------------------------
# Gauss-tree adapters (in-memory and disk)
# ---------------------------------------------------------------------------


class GaussTreeBackend(BackendAdapter):
    """Adapter over a :class:`~repro.gausstree.tree.GaussTree`.

    Used for three registered names: ``"tree"`` (in-memory, bulk-loaded
    from the source database), ``"disk"`` (read-only lazy-page open)
    and ``"disk-writable"`` (WAL-durable open). An in-memory tree built
    from a database is always writable; disk trees are writable only
    when opened so.
    """

    def __init__(
        self,
        tree,
        name: str,
        *,
        writable: bool,
        persistent: bool,
        mliq_tolerance: float = 1e-9,
        tiq_tolerance: float = 0.0,
        probability_tolerance: float | None = None,
    ) -> None:
        self.tree = tree
        self.name = name
        self.store = tree.store
        self.mliq_tolerance = mliq_tolerance
        self.tiq_tolerance = tiq_tolerance
        self.probability_tolerance = probability_tolerance
        caps = {"mliq", "tiq", "batch", "exact"}
        if writable:
            caps.add("writable")
        if persistent:
            caps.add("persistent")
        self.capabilities = frozenset(caps)

    def _mliq_batch(self, queries):
        from repro.gausstree.batch import gausstree_mliq_many

        return gausstree_mliq_many(
            self.tree, queries, tolerance=self.mliq_tolerance
        )

    def _tiq_batch(self, specs):
        from repro.gausstree.batch import gausstree_tiq_many

        # Group by decision slack so a loose query's eps never loosens a
        # strict one sharing the batch; one shared pass per group.
        groups: dict[float, list[int]] = {}
        for i, spec in enumerate(specs):
            groups.setdefault(spec.eps, []).append(i)
        results: list[list[Match]] = [[] for _ in specs]
        total = QueryStats()
        for eps, indices in groups.items():
            answered, stats = gausstree_tiq_many(
                self.tree,
                [specs[i].lower() for i in indices],
                tolerance=max(self.tiq_tolerance, eps),
                probability_tolerance=self.probability_tolerance,
            )
            for i, matches in zip(indices, answered):
                results[i] = matches
            total.merge(stats)
        return results, total

    def count(self) -> int:
        return len(self.tree)

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        tree = self.tree
        n = len(tree)
        if n == 0 or not specs:
            return PlanEstimate(0, 0.0, "empty index: no pages touched")
        height = tree.height
        leaves = max(1, math.ceil(n / max(1, tree.leaf_min)))
        if kind == "tiq":
            leaf_reads = max(1, math.ceil(0.1 * leaves))
            note = (
                "best-first traversal pruned by denominator bounds; "
                "~10% of leaves is a coarse prior, selectivity decides"
            )
        else:
            k = max(getattr(s, "k", 1) for s in specs)
            leaf_reads = max(1, math.ceil(k / max(1, tree.leaf_min)))
            note = (
                "best-first descent: inner path plus ~k/M leaves; "
                "actual pages depend on how well MBRs separate"
            )
        per_query = (height - 1) + leaf_reads
        pages = per_query * len(specs)
        cost = self.store.cost_model
        # Refinement CPU: every visited leaf refines its whole page. A
        # columnar tree (bulk-loaded, or a format-v3 file) is priced at
        # the vectorized per-object rate — the stale per-object scalar
        # estimate would overstate v3 CPU by cpu_per_refinement_seconds /
        # cpu_per_vectorized_refinement_seconds (30x at the defaults).
        objects = leaf_reads * max(1, math.ceil(n / leaves)) * len(specs)
        vectorized = getattr(tree, "vectorized_leaves", False)
        if vectorized:
            note += "; columnar leaves: refinement priced at vectorized rate"
        return PlanEstimate(
            pages,
            cost.random_read_seconds(pages),
            note,
            cost.modeled_cpu_seconds(objects, pages, vectorized=vectorized),
        )

    # -- writes --------------------------------------------------------------

    def insert(self, v: PFV) -> None:
        """Insert one pfv (durable per operation on WAL-backed trees)."""
        self._require("writable")
        self.tree.insert(v)

    def insert_many(self, vectors: Iterable[PFV]) -> int:
        """Insert a batch as one group-commit WAL transaction (single
        fsync, page images deduplicated; all-or-nothing recovery)."""
        self._require("writable")
        return self.tree.insert_many(vectors)

    def delete(self, v: PFV) -> bool:
        """Delete one pfv, reporting whether it was found."""
        self._require("writable")
        return self.tree.delete(v)

    def flush(self) -> None:
        """Checkpoint the tree's WAL into the main file (no-op for
        in-memory trees)."""
        self.tree.flush()

    def close(self) -> None:
        close = getattr(self.tree, "close", None)
        if close is not None and "persistent" in self.capabilities:
            close()

    def database(self) -> PFVDatabase:
        return PFVDatabase(list(self.tree), sigma_rule=self.tree.sigma_rule)


class _EmptyTreeBackend(BackendAdapter):
    """In-memory tree over an empty source whose dimensionality is still
    unknown: answers everything with the empty result and builds the
    real tree on the first ``insert`` (which fixes ``d``). The source's
    sigma rule is carried over to the promoted tree."""

    def __init__(self, name: str, sigma_rule, options: dict) -> None:
        self.name = name
        self.capabilities = frozenset(
            {"mliq", "tiq", "batch", "exact", "writable"}
        )
        self._sigma_rule = sigma_rule
        self._options = dict(options)
        self._promoted: GaussTreeBackend | None = None

    def _delegate(self) -> GaussTreeBackend | None:
        return self._promoted

    def run_mliq(self, specs):
        if self._promoted is not None:
            return self._promoted.run_mliq(specs)
        return [[] for _ in specs], QueryStats()

    def run_tiq(self, specs):
        if self._promoted is not None:
            return self._promoted.run_tiq(specs)
        return [[] for _ in specs], QueryStats()

    def count(self) -> int:
        return 0 if self._promoted is None else self._promoted.count()

    def estimate(self, kind, specs):
        if self._promoted is not None:
            return self._promoted.estimate(kind, specs)
        return PlanEstimate(0, 0.0, "empty index: no pages touched")

    def insert(self, v: PFV) -> None:
        """First insert builds the real tree (fixing ``d``); later ones
        delegate to it."""
        if self._promoted is None:
            self._promoted = _tree_backend_from_db(
                PFVDatabase([v], sigma_rule=self._sigma_rule),
                self.name,
                self._options,
            )
        else:
            self._promoted.insert(v)

    def insert_many(self, vectors: Iterable[PFV]) -> int:
        """Promote on the whole batch at once (bulk load), or delegate
        to the promoted tree's group-commit batch insert."""
        batch = list(vectors)
        if not batch:
            return 0
        if self._promoted is None:
            self._promoted = _tree_backend_from_db(
                PFVDatabase(batch, sigma_rule=self._sigma_rule),
                self.name,
                self._options,
            )
            return len(batch)
        return self._promoted.insert_many(batch)

    def delete(self, v: PFV) -> bool:
        """Delete from the promoted tree (always False while empty)."""
        return False if self._promoted is None else self._promoted.delete(v)

    def database(self) -> PFVDatabase:
        if self._promoted is not None:
            return self._promoted.database()
        return PFVDatabase(sigma_rule=self._sigma_rule)

    def cold_start(self) -> None:
        if self._promoted is not None:
            self._promoted.cold_start()


# ---------------------------------------------------------------------------
# Sequential-scan adapter
# ---------------------------------------------------------------------------


class SeqScanBackend(BackendAdapter):
    """The paper's "Seq. File" competitor behind the engine surface."""

    name = "seqscan"

    def __init__(self, index) -> None:
        self.index = index
        self.store = index.store
        self.capabilities = frozenset({"mliq", "tiq", "batch", "exact"})

    def _mliq_batch(self, queries):
        return self.index._mliq_many_impl(queries)

    def _tiq_batch(self, specs):
        return self.index._tiq_many_impl([s.lower() for s in specs])

    def count(self) -> int:
        return len(self.index.db)

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        pages = self.index.file_pages
        if pages == 0 or not specs:
            return PlanEstimate(0, 0.0, "empty file: no pages touched")
        passes = 2 if kind == "tiq" else 1
        total = passes * pages
        cost = self.store.cost_model
        return PlanEstimate(
            total,
            passes * cost.sequential_read_seconds(pages),
            "full sequential pass(es) shared by the whole batch; "
            "streaming IO, one positioning delay per pass",
            cost.modeled_cpu_seconds(self.count() * len(specs), total),
        )

    def database(self) -> PFVDatabase:
        return self.index.db


# ---------------------------------------------------------------------------
# X-tree filter+refine adapter
# ---------------------------------------------------------------------------


class XTreeBackend(BackendAdapter):
    """The X-tree quantile-rectangle baseline: approximate by design
    (false dismissals possible), hence no ``"exact"`` capability."""

    name = "xtree"

    def __init__(self, index) -> None:
        self.index = index
        self.store = index.store
        self.capabilities = frozenset({"mliq", "tiq"})

    def _mliq_batch(self, queries):
        results, total = [], QueryStats()
        for query in queries:
            matches, stats = self.index._mliq_impl(query)
            results.append(matches)
            total.merge(stats)
        return results, total

    def _tiq_batch(self, specs):
        results, total = [], QueryStats()
        for spec in specs:
            matches, stats = self.index._tiq_impl(spec.lower())
            results.append(matches)
            total.merge(stats)
        return results, total

    def count(self) -> int:
        return len(self.index.db)

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        n = self.count()
        if n == 0 or not specs:
            return PlanEstimate(0, 0.0, "empty index: no pages touched")
        base_pages = len(self.index._base_pages)
        # Traversal of the box tree plus random base-table fetches for
        # the candidates — the fetches dominate (the paper's reason the
        # X-tree loses to the scan on MLIQ).
        per_query = max(2, math.ceil(0.15 * base_pages)) + max(
            1, math.ceil(0.1 * base_pages)
        )
        pages = per_query * len(specs)
        cost = self.store.cost_model
        return PlanEstimate(
            pages,
            cost.random_read_seconds(pages),
            "rectangle filter + random base-table refinement fetches; "
            "approximate answers (false dismissals possible)",
            cost.modeled_cpu_seconds(
                max(1, math.ceil(0.1 * n)) * len(specs), pages
            ),
        )

    def database(self) -> PFVDatabase:
        return self.index.db


# ---------------------------------------------------------------------------
# Legacy access-method wrapper (third-party / ad-hoc objects)
# ---------------------------------------------------------------------------


class LegacyMethodBackend(BackendAdapter):
    """Wraps any object with ``mliq(query)`` / ``tiq(query)`` methods so
    the evaluation runner can route arbitrary access methods through
    ``Session.execute``. No ``"batch"`` capability: queries loop."""

    def __init__(self, method, name: str | None = None) -> None:
        self.method = method
        self.name = name or type(method).__name__
        store = getattr(method, "store", None)
        if store is not None:
            self.store = store
        caps = {
            cap for cap in ("mliq", "tiq") if callable(getattr(method, cap, None))
        }
        self.capabilities = frozenset(caps)

    def _loop(self, call, queries):
        results, total = [], QueryStats()
        for query in queries:
            matches, stats = call(query)
            results.append(matches)
            total.merge(stats)
        return results, total

    def _mliq_batch(self, queries):
        return self._loop(self.method.mliq, queries)

    def _tiq_batch(self, specs):
        return self._loop(self.method.tiq, [s.lower() for s in specs])

    def count(self) -> int:
        db = getattr(self.method, "db", None)
        if db is not None:
            return len(db)
        try:
            return len(self.method)
        except TypeError:
            return 1  # unknown size: never short-circuit as empty

    def estimate(self, kind: str, specs: Sequence) -> PlanEstimate:
        return PlanEstimate(
            0, 0.0, "opaque legacy access method: no cost model available"
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, tuple[Callable, str]] = {}


def register_backend(
    name: str,
    factory: Callable[..., Backend],
    description: str = "",
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    ``factory(source, writable=..., options=...)`` receives the
    ``connect()`` source (a :class:`~repro.core.database.PFVDatabase`
    or a filesystem path) and must return a :class:`Backend`.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = (factory, description)


def available_backends() -> dict[str, str]:
    """Registered backend names mapped to their one-line descriptions."""
    return {name: desc for name, (_, desc) in sorted(_REGISTRY.items())}


def create_backend(
    name: str, source, *, writable: bool = False, options: dict | None = None
) -> Backend:
    """Instantiate a registered backend over ``source``."""
    try:
        factory, _ = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None
    return factory(source, writable=writable, options=dict(options or {}))


def backend_for_index(index, name: str | None = None, **options) -> Backend:
    """Wrap an already-built index object (tree, scan, X-tree, or any
    legacy access method) in its engine adapter — the bridge the
    evaluation runner uses for pre-constructed competitors.

    ``options`` are forwarded to the adapter; only the Gauss-tree
    adapter takes any (``mliq_tolerance``, ``tiq_tolerance``,
    ``probability_tolerance``)."""
    from repro.baselines.seqscan import SequentialScanIndex
    from repro.baselines.xtree_pfv import XTreePFVIndex
    from repro.gausstree.tree import GaussTree

    if isinstance(index, BackendAdapter):
        if options:
            raise TypeError("a ready Backend accepts no adapter options")
        return index
    if isinstance(index, GaussTree):
        return GaussTreeBackend(
            index,
            name or "tree",
            writable=not index.read_only,
            persistent=hasattr(index.store, "path"),
            **options,
        )
    if options:
        raise TypeError(
            f"adapter for {type(index).__name__} accepts no options, "
            f"got {sorted(options)}"
        )
    if isinstance(index, SequentialScanIndex):
        backend = SeqScanBackend(index)
        if name:
            backend.name = name
        return backend
    if isinstance(index, XTreePFVIndex):
        backend = XTreeBackend(index)
        if name:
            backend.name = name
        return backend
    return LegacyMethodBackend(index, name)


# -- source coercion ---------------------------------------------------------


def _is_pathlike(source) -> bool:
    return isinstance(source, (str, os.PathLike))


def as_database(source) -> PFVDatabase:
    """Coerce a connect() source into a :class:`PFVDatabase`.

    Accepts a database (returned as-is), an iterable of pfv, or the
    path of a saved index file (opened read-only and materialised).
    """
    if isinstance(source, PFVDatabase):
        return source
    if _is_pathlike(source):
        from repro.gausstree.tree import GaussTree

        tree = GaussTree.open(source)
        try:
            return PFVDatabase(list(tree), sigma_rule=tree.sigma_rule)
        finally:
            tree.close()
    if isinstance(source, Iterable):
        return PFVDatabase(list(source))
    raise TypeError(
        f"cannot interpret {type(source).__name__} as a query source "
        "(expected PFVDatabase, iterable of PFV, or an index file path)"
    )


# -- built-in factories ------------------------------------------------------


def _tree_backend_from_db(
    db: PFVDatabase, name: str, options: dict
) -> GaussTreeBackend:
    from repro.gausstree.bulkload import bulk_load

    tree = bulk_load(
        db.vectors,
        degree=options.pop("degree", None),
        layout=options.pop("layout", None),
        page_store=options.pop("page_store", None),
        sigma_rule=db.sigma_rule,
    )
    return GaussTreeBackend(
        tree, name, writable=True, persistent=False, **options
    )


def _make_tree(source, *, writable: bool, options: dict) -> Backend:
    db = as_database(source)
    if len(db) == 0:
        return _EmptyTreeBackend("tree", db.sigma_rule, options)
    return _tree_backend_from_db(db, "tree", options)


def _make_disk(source, *, writable: bool, options: dict) -> Backend:
    if not _is_pathlike(source):
        raise TypeError(
            "the 'disk' backend needs an index file path; build one with "
            "GaussTree.save / `repro build`, or use backend='tree'"
        )
    from repro.gausstree.tree import GaussTree

    open_kwargs = {
        key: options.pop(key)
        for key in ("buffer", "cost_model", "fsync", "auto_checkpoint_bytes")
        if key in options
    }
    tree = GaussTree.open(source, writable=writable, **open_kwargs)
    return GaussTreeBackend(
        tree,
        "disk-writable" if writable else "disk",
        writable=writable,
        persistent=True,
        **options,
    )


def _make_seqscan(source, *, writable: bool, options: dict) -> Backend:
    from repro.baselines.seqscan import SequentialScanIndex

    db = as_database(source)
    index = SequentialScanIndex(
        db,
        layout=options.pop("layout", None),
        page_store=options.pop("page_store", None),
    )
    if options:  # same contract as the other factories: no silent drops
        raise TypeError(
            f"the 'seqscan' backend accepts no options {sorted(options)}"
        )
    return SeqScanBackend(index)


def _make_xtree(source, *, writable: bool, options: dict) -> Backend:
    from repro.baselines.xtree_pfv import XTreePFVIndex

    db = as_database(source)
    return XTreeBackend(XTreePFVIndex(db, **options))


register_backend(
    "tree",
    _make_tree,
    "in-memory Gauss-tree, bulk-loaded from the source (exact, writable)",
)
register_backend(
    "disk",
    _make_disk,
    "disk-resident Gauss-tree index file; lazy page-decoded nodes, "
    "WAL-durable writes when connected writable",
)
register_backend(
    "seqscan",
    _make_seqscan,
    "paged sequential scan of the full database (exact reference)",
)
register_backend(
    "xtree",
    _make_xtree,
    "X-tree over 95%-quantile rectangles, filter+refine (approximate)",
)
