"""Uniform result container returned by every ``Session.execute*`` call.

A :class:`ResultSet` bundles the per-query match lists with one merged
:class:`~repro.core.queries.QueryStats` and the provenance of the
backend that produced them — the same shape whether the session ran one
query or a batch, and whichever access method served it.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterator, Sequence

from repro.core.queries import Match, QueryStats
from repro.engine.spec import Query

__all__ = ["ResultSet"]


class ResultSet:
    """Matches + merged stats + backend provenance for 1..m queries.

    Indexing is per input query: ``rs[i]`` is the match list of the
    ``i``-th query of the batch, ``len(rs)`` the number of queries. For
    the common single-query case, :attr:`matches` is the one match list
    directly.
    """

    __slots__ = (
        "queries", "backend", "stats", "provenance", "trace", "_per_query"
    )

    def __init__(
        self,
        queries: Sequence[Query],
        per_query: Sequence[list[Match]],
        stats: QueryStats,
        backend: str,
        provenance: Sequence[tuple[str, QueryStats]] = (),
        trace: dict | None = None,
    ) -> None:
        if len(queries) != len(per_query):
            raise ValueError(
                f"{len(queries)} queries but {len(per_query)} result lists"
            )
        self.queries: tuple[Query, ...] = tuple(queries)
        self._per_query: list[list[Match]] = [list(m) for m in per_query]
        self.stats = stats
        #: Name of the backend that executed the batch (provenance).
        self.backend = backend
        #: Per-component (name, stats) breakdown for composite backends —
        #: the sharded fan-out records one entry per shard it touched;
        #: single backends leave it empty. ``stats`` stays the merged sum.
        self.provenance: tuple[tuple[str, QueryStats], ...] = tuple(
            provenance
        )
        #: Span tree of the request, as ``Trace.to_dict()`` — set when a
        #: trace was active (``repro.obs.tracing``) while executing, or
        #: when a traced wire request asked for one; ``None`` otherwise.
        self.trace: dict | None = trace

    # -- per-query access ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._per_query)

    def __getitem__(self, index: int) -> list[Match]:
        return self._per_query[index]

    def __iter__(self) -> Iterator[list[Match]]:
        return iter(self._per_query)

    @property
    def matches(self) -> list[Match]:
        """The single query's matches; raises on multi-query batches."""
        if len(self._per_query) != 1:
            raise ValueError(
                f"ResultSet holds {len(self._per_query)} queries; index it "
                "per query instead of using .matches"
            )
        return self._per_query[0]

    # -- conveniences --------------------------------------------------------

    def keys(self) -> list[list[Hashable]]:
        """Per-query lists of matched object keys, in rank order."""
        return [[m.key for m in matches] for matches in self._per_query]

    def cumulative_probability(self, index: int = 0) -> list[float]:
        """Running posterior mass of one query's ranking (for RankQuery:
        how complete the reported prefix is)."""
        return list(
            itertools.accumulate(
                m.probability for m in self._per_query[index]
            )
        )

    def __repr__(self) -> str:
        sizes = [len(m) for m in self._per_query]
        shown = repr(sizes) if len(sizes) <= 4 else f"{sum(sizes)} total"
        return (
            f"ResultSet(backend={self.backend!r}, queries={len(self)}, "
            f"matches={shown}, pages={self.stats.pages_accessed})"
        )
