"""``repro.engine`` — one composable query surface over every backend.

The paper's thesis is that a single probabilistic query model (MLIQ /
TIQ over Gaussian pfv) can be served by interchangeable access methods.
This package makes that a literal API:

* :func:`connect` opens a :class:`Session` over a database, a list of
  pfv, or a saved index file, through any registered backend
  (``tree``, ``disk``, ``seqscan``, ``xtree`` built in);
* sessions execute the declarative specs :class:`MLIQ`, :class:`TIQ`,
  :class:`RankQuery`, :class:`ConsensusTopK` and :class:`ExpectedRank`
  — plus the write specs :class:`Insert` and
  :class:`Delete` on ``writable`` backends — via ``execute`` /
  ``execute_many``, always returning a :class:`ResultSet` (matches +
  merged stats + backend provenance), and ``explain`` describes the
  plan without running it;
* new access methods join by implementing the capability-declaring
  :class:`Backend` protocol and calling :func:`register_backend`.

The legacy per-method entry points (``GaussTree.mliq`` and friends)
remain as thin deprecation shims; see README "Query API" for the
migration table.
"""

from repro.engine.backends import (
    Backend,
    BackendAdapter,
    CapabilityError,
    PlanEstimate,
    available_backends,
    register_backend,
)
from repro.engine.planner import Plan
from repro.engine.result import ResultSet
from repro.engine.session import Session, connect, session_for
from repro.engine.spec import (
    MLIQ,
    TIQ,
    ConsensusTopK,
    Delete,
    ExpectedRank,
    Insert,
    Query,
    RankQuery,
    Spec,
    WriteSpec,
)

__all__ = [
    "connect",
    "Session",
    "session_for",
    "MLIQ",
    "TIQ",
    "RankQuery",
    "ConsensusTopK",
    "ExpectedRank",
    "Insert",
    "Delete",
    "Query",
    "WriteSpec",
    "Spec",
    "ResultSet",
    "Plan",
    "Backend",
    "BackendAdapter",
    "PlanEstimate",
    "CapabilityError",
    "register_backend",
    "available_backends",
]
