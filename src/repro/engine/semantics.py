"""Exact scoring for the consensus / expected-rank query semantics.

Both :class:`~repro.engine.spec.ConsensusTopK` (Li & Deshpande,
"Consensus Answers for Queries over Probabilistic Databases") and
:class:`~repro.engine.spec.ExpectedRank` (Bernecker et al., "Scalable
Probabilistic Similarity Ranking in Uncertain Databases") are defined
over the identification model's possible-worlds space:

* A **world** fixes the query's one true identity ``u`` and occurs with
  the posterior probability ``P(u | q)`` (the probabilities the engine
  already computes for every match).
* In world ``u`` the induced ranking places ``u`` first and every other
  object after it in density order; the per-world top-k answer is
  ``{u}`` plus the ``k - 1`` densest remaining objects.

Write ``r(v)`` for the number of objects whose density strictly exceeds
``v``'s and ``M(v)`` for their total posterior mass. Enumerating worlds
gives closed forms (the brute-force oracle in
``tests/engine/test_rank_semantics.py`` re-derives both by explicit
world enumeration):

* **Expected rank** — ``ER(v) = (1 - P(v)) * (1 + r(v)) - M(v)``:
  ``v`` has rank 0 in its own world; in a world ``u`` above it, rank
  ``r(v)``; in any other world, rank ``r(v) + 1``.
* **Consensus membership** — the probability that ``v`` appears in a
  random world's top-k answer is ``1`` when ``r(v) <= k - 2`` (it makes
  the cut with or without the true identity ahead of it),
  ``P(v) + M(v)`` when ``r(v) == k - 1`` (it needs its own world or a
  world drawn from strictly above), and ``P(v)`` when ``r(v) >= k``
  (only its own world promotes it).

Two consequences make the semantics cheap and exact on every backend:

1. Both scores are **density-monotone** (``d_v > d_w`` implies
   ``ER(v) < ER(w)`` and membership(v) >= membership(w)), so the answer
   *set and order* of either semantic equals the MLIQ top-k — the
   Gauss-tree's threshold-based early termination applies unchanged.
2. Every object strictly above a top-k member is itself in the top-k
   (an excluded object's density is at most the included minimum), so
   ``r(v)`` and ``M(v)`` for returned objects are computable from the
   returned prefix alone — no second pass over the database.

The functions here are pure: they take an already globally-ranked,
globally-renormalised match prefix (single tree or sharded merge — the
merge piggybacks per-shard sufficient statistics so the posteriors are
exact, see :mod:`repro.cluster.backend`) and attach ``Match.score``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.queries import Match

__all__ = [
    "consensus_scores",
    "expected_rank_scores",
    "expected_symmetric_difference",
    "score_ranked",
]


def _strict_prefix_stats(
    matches: Sequence[Match],
) -> list[tuple[int, float]]:
    """Per position, ``(r, M)``: count and posterior mass of the
    objects *strictly* denser than the one at that position.

    ``matches`` must be density-descending (the order every backend
    returns). Ties share the ``(r, M)`` of the first member of their
    tie group, which keeps both semantics tie-robust: equal densities
    produce equal scores regardless of tie-break order.
    """
    stats: list[tuple[int, float]] = []
    group_start = 0  # index of the first member of the current tie group
    group_r, group_m = 0, 0.0
    running_mass = 0.0
    for i, m in enumerate(matches):
        if i > 0 and m.log_density < matches[group_start].log_density:
            group_start, group_r, group_m = i, i, running_mass
        stats.append((group_r, group_m))
        running_mass += m.probability
    return stats


def expected_rank_scores(matches: Sequence[Match]) -> list[Match]:
    """Attach ``ER(v) = (1 - P(v)) * (1 + r(v)) - M(v)`` as each
    match's ``score``, preserving order (ER order == density order)."""
    stats = _strict_prefix_stats(matches)
    return [
        Match(
            m.vector,
            m.log_density,
            m.probability,
            (1.0 - m.probability) * (1.0 + r) - mass,
        )
        for m, (r, mass) in zip(matches, stats)
    ]


def consensus_scores(matches: Sequence[Match], k: int) -> list[Match]:
    """Attach each match's per-world top-``k`` membership probability
    as its ``score``, preserving order (the returned prefix *is* the
    symmetric-difference-optimal consensus set)."""
    stats = _strict_prefix_stats(matches)
    scored = []
    for m, (r, mass) in zip(matches, stats):
        if r <= k - 2:
            score = 1.0
        elif r == k - 1:
            score = min(1.0, m.probability + mass)
        else:
            score = m.probability
        scored.append(Match(m.vector, m.log_density, m.probability, score))
    return scored


def expected_symmetric_difference(
    scored: Sequence[Match], k: int, total_n: int
) -> float:
    """Expected symmetric-difference distance between the consensus set
    (the ``scored`` prefix, as returned by :func:`consensus_scores`)
    and a random world's top-``k`` answer:
    ``sum(1 - p_v for v in S) + (min(k, n) - sum(p_v for v in S))``.
    """
    in_set = sum(m.score or 0.0 for m in scored)
    return (len(scored) - in_set) + (min(k, total_n) - in_set)


def score_ranked(spec, matches: Sequence[Match]) -> list[Match]:
    """Dispatch a ``consensus``/``erank`` spec to its scoring function
    over the (already merged and ranked) MLIQ prefix ``matches``."""
    if spec.kind == "consensus":
        return consensus_scores(matches, spec.k)
    if spec.kind == "erank":
        return expected_rank_scores(matches)
    raise TypeError(f"not a ranked-semantics spec: {spec!r}")
