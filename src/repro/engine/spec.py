"""The engine's query algebra: declarative specs, separate from execution.

One probabilistic query model is served by interchangeable access
methods (the point of the paper), so the query *specification* must not
know anything about execution. The specs here are plain frozen
dataclasses; a :class:`~repro.engine.session.Session` routes them to
whichever backend it was connected with, and
:mod:`repro.engine.planner` describes how they will run.

* :class:`MLIQ` — the k-most-likely identification query (Definition 3).
* :class:`TIQ` — the threshold identification query (Definition 2),
  with an optional accuracy slack ``eps``.
* :class:`RankQuery` — probabilistic top-k ranking. In this model every
  query observation has exactly one true identity, so the posterior
  vector ``P(v | q)`` *is* the probability distribution over candidate
  identities and the consensus ranking (in the sense of "Consensus
  Answers for Queries over Probabilistic Databases") is simply the
  posterior-descending order. ``RankQuery(q, k)`` therefore returns the
  top-``k`` of that ranking, optionally truncated once the reported
  ranking carries at least ``min_mass`` cumulative posterior mass — a
  "stop when the answer is probably complete" cut that MLIQ's fixed
  ``k`` cannot express.
* :class:`ConsensusTopK` — the symmetric-difference-optimal top-k set
  under possible-worlds semantics ("Consensus Answers for Queries over
  Probabilistic Databases", Li & Deshpande). Each match carries its
  per-world membership probability in ``Match.score``.
* :class:`ExpectedRank` — ranking by expected per-world rank ("Scalable
  Probabilistic Similarity Ranking in Uncertain Databases", Bernecker
  et al.). Each match carries its expected rank in ``Match.score``.

Both ranking semantics are defined over the identification model's
possible-worlds space: a world fixes the query's one true identity
``u``, and occurs with the posterior probability ``P(u | q)``. In world
``u`` the induced ranking is ``u`` first, then every other object in
density order. Because both semantics provably order candidates exactly
as the density does (see :mod:`repro.engine.semantics` for the proofs
and the closed forms), each lowers to the MLIQ top-k — inheriting the
Gauss-tree's threshold-based early termination — followed by an exact,
pure rescoring of the returned prefix.

Write specs (capability-gated: the backend must declare ``"writable"``):

* :class:`Insert` — add one pfv to the connected database/index.
* :class:`Delete` — remove one pfv equal to the given one.

A ``Session.execute_many`` batch may interleave write and read specs;
it executes them **in input order** (a query sees every write earlier in
the batch, none later), grouping consecutive inserts into one
group-commit transaction on backends that support it. Write specs
answer with the empty match list in the :class:`ResultSet` slot —
they are acknowledged by position, not by matches.

Normalised edge-case semantics (every backend conforms; the
cross-backend parity property test enforces it):

============================  ============================================
situation                     result
============================  ============================================
``k == 0``                    valid spec; the empty match list
``k > len(database)``         all ``len(database)`` objects, ranked
empty database                the empty match list (MLIQ, TIQ and Rank)
``TIQ.tau == 0``              the full ranked database
============================  ============================================

The legacy specs (:class:`~repro.core.queries.MLIQuery`,
:class:`~repro.core.queries.ThresholdQuery`) predate this table: they
reject ``k == 0`` at construction and some backends used to reject
empty databases. ``lower()`` converts an engine spec into its legacy
counterpart for backends implemented against the old surface.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery

__all__ = [
    "MLIQ",
    "TIQ",
    "RankQuery",
    "ConsensusTopK",
    "ExpectedRank",
    "Insert",
    "Delete",
    "Query",
    "WriteSpec",
    "Spec",
    "query_kind",
    "spec_kind",
    "is_write_spec",
]


@dataclasses.dataclass(frozen=True)
class MLIQ:
    """k-most-likely identification: the ``k`` highest-posterior objects.

    Parameters
    ----------
    q:
        The query observation (a pfv: means plus uncertainties).
    k:
        Result size; ``0`` is valid and yields the empty result.
    """

    q: PFV
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"mliq"``)."""
        return "mliq"

    def lower(self) -> MLIQuery:
        """The legacy spec; callers must special-case ``k == 0``."""
        if self.k == 0:
            raise ValueError("k == 0 has no legacy MLIQuery equivalent")
        return MLIQuery(self.q, self.k)


@dataclasses.dataclass(frozen=True)
class TIQ:
    """Threshold identification: every object with posterior >= ``tau``.

    Parameters
    ----------
    q:
        The query observation.
    tau:
        The posterior threshold (the paper's ``p_theta``).
    eps:
        Accuracy slack for the accept/reject *decision*: an object whose
        posterior interval straddles ``tau`` but is narrower than
        ``eps`` may be classified by the interval midpoint instead of
        forcing further page reads (Section 5.2.3). ``0.0`` demands the
        exact answer set; exact backends (the sequential scan) ignore a
        positive ``eps`` and simply answer exactly.
    """

    q: PFV
    tau: float = 0.5
    eps: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError(
                f"tau must be a probability in [0, 1], got {self.tau}"
            )
        if not 0.0 <= self.eps <= 1.0:
            raise ValueError(f"eps must be in [0, 1], got {self.eps}")

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"tiq"``)."""
        return "tiq"

    def lower(self) -> ThresholdQuery:
        """The legacy spec this executes as on pre-engine backends."""
        return ThresholdQuery(self.q, self.tau)


@dataclasses.dataclass(frozen=True)
class RankQuery:
    """Probabilistic top-k ranking under the posterior distribution.

    Returns at most ``k`` objects in posterior-descending order. With
    ``min_mass`` set, the ranking is additionally truncated at the first
    prefix whose cumulative posterior reaches ``min_mass`` — "rank
    candidates until the answer is 99% complete". Executed by lowering
    to an MLIQ and trimming, so every backend that answers MLIQ answers
    RankQuery with identical semantics.
    """

    q: PFV
    k: int = 1
    min_mass: float | None = None

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")
        if self.min_mass is not None and not 0.0 < self.min_mass <= 1.0:
            raise ValueError(
                f"min_mass must be in (0, 1], got {self.min_mass}"
            )

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"rank"``)."""
        return "rank"

    def lower(self) -> "MLIQ":
        """The engine MLIQ this executes as; the session applies the
        ``min_mass`` cut to the ranked result afterwards."""
        return MLIQ(self.q, self.k)


@dataclasses.dataclass(frozen=True)
class ConsensusTopK:
    """Symmetric-difference-optimal top-k set (Li & Deshpande).

    Under possible-worlds semantics the consensus answer is the
    deterministic ``k``-set minimising the expected symmetric-difference
    distance to the per-world top-k answers; that optimum is the ``k``
    objects of largest membership probability, which in this model is
    exactly the density top-k (membership probability is monotone in
    density). Each returned :class:`~repro.core.queries.Match` carries
    its membership probability — the probability that the object
    appears in a random world's top-k answer — in ``Match.score``.

    Parameters
    ----------
    q:
        The query observation (a pfv: means plus uncertainties).
    k:
        Consensus set size; ``0`` is valid and yields the empty result.
    """

    q: PFV
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"consensus"``)."""
        return "consensus"

    def lower(self) -> "MLIQ":
        """The engine MLIQ supplying the candidate prefix; the executor
        attaches membership probabilities afterwards (see
        :func:`repro.engine.semantics.consensus_scores`)."""
        return MLIQ(self.q, self.k)


@dataclasses.dataclass(frozen=True)
class ExpectedRank:
    """Ranking by expected per-world rank (Bernecker et al.).

    Orders objects by ``ER(v) = sum_w P(w) * rank(v | w)`` where
    ``rank`` counts the objects strictly above ``v`` in world ``w``.
    The expected-rank order provably coincides with the density order
    (ties included), so the MLIQ top-k — with the Gauss-tree's
    threshold-based early termination — supplies the exact answer
    prefix; the executor then attaches each object's exact expected
    rank in ``Match.score`` (see
    :func:`repro.engine.semantics.expected_rank_scores`).

    Parameters
    ----------
    q:
        The query observation (a pfv: means plus uncertainties).
    k:
        Result size; ``0`` is valid and yields the empty result.
    """

    q: PFV
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"erank"``)."""
        return "erank"

    def lower(self) -> "MLIQ":
        """The engine MLIQ supplying the candidate prefix; the executor
        attaches expected ranks afterwards."""
        return MLIQ(self.q, self.k)


@dataclasses.dataclass(frozen=True)
class Insert:
    """Write spec: add one pfv to the connected database/index.

    Requires the ``"writable"`` capability. Consecutive :class:`Insert`
    specs in one ``execute_many`` batch are applied through the
    backend's ``insert_many`` — on the WAL-backed disk tree that is a
    single group-commit transaction (one fsync for the run), and on a
    writable sharded session each insert routes to its owning shard by
    the deployment's placement policy.
    """

    v: PFV

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"insert"``)."""
        return "insert"


@dataclasses.dataclass(frozen=True)
class Delete:
    """Write spec: remove one pfv equal to ``v`` (no-op if absent).

    Requires the ``"writable"`` capability. ``Session.delete`` is the
    entry point that reports whether the object was found; inside an
    ``execute_many`` batch the spec answers with the empty match list
    either way.
    """

    v: PFV

    @property
    def kind(self) -> str:
        """Dispatch kind of this spec (``"delete"``)."""
        return "delete"


Query = Union[MLIQ, TIQ, RankQuery, ConsensusTopK, ExpectedRank]
WriteSpec = Union[Insert, Delete]
Spec = Union[Query, WriteSpec]

_READ_KINDS = ("mliq", "tiq", "rank", "consensus", "erank")
_WRITE_KINDS = ("insert", "delete")


def query_kind(query: Query) -> str:
    """The dispatch kind of a read spec; raises TypeError for non-specs
    (including write specs — use :func:`spec_kind` to accept those)."""
    kind = getattr(query, "kind", None)
    if kind not in _READ_KINDS:
        raise TypeError(
            f"not an engine query spec: {query!r} (expected MLIQ, TIQ, "
            "RankQuery, ConsensusTopK or ExpectedRank; legacy "
            "MLIQuery/ThresholdQuery must be wrapped)"
        )
    return kind


def spec_kind(spec: Spec) -> str:
    """The dispatch kind of any spec, read or write; raises TypeError
    for objects that are not engine specs."""
    kind = getattr(spec, "kind", None)
    if kind not in _READ_KINDS and kind not in _WRITE_KINDS:
        raise TypeError(
            f"not an engine spec: {spec!r} (expected MLIQ, TIQ, "
            "RankQuery, ConsensusTopK, ExpectedRank, Insert or Delete)"
        )
    return kind


def is_write_spec(spec: Spec) -> bool:
    """Whether ``spec`` mutates the database (Insert/Delete)."""
    return spec_kind(spec) in _WRITE_KINDS
