"""Query planning: how a session will execute a spec, described upfront.

``Session.explain(query)`` returns a :class:`Plan` — which backend will
serve the query, whether the batch runs through a native shared-pass
entry point or a per-query loop, how rank queries are lowered, and an
order-of-magnitude page/IO estimate priced by the backend's
:mod:`~repro.storage.costmodel`. Plans are descriptive, not binding
optimizer output: with one backend per session there is no join search,
but the seam is where a future cost-based backend *chooser* (or a
sharding fan-out) plugs in.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.engine.backends import Backend
from repro.engine.spec import Query, query_kind
from repro.storage.costmodel import DiskCostModel

__all__ = ["Plan", "build_plan"]


@dataclasses.dataclass(frozen=True)
class Plan:
    """How one execute()/execute_many() call will run.

    Attributes
    ----------
    backend:
        Name of the backend that will serve the batch (provenance).
    query_kind:
        ``"mliq"``, ``"tiq"``, ``"rank"``, ``"consensus"``, ``"erank"``
        or ``"mixed"`` for a batch spanning kinds.
    n_queries:
        Batch size.
    strategy:
        ``"batched"`` (native shared-pass entry point) or
        ``"per-query"`` (executor loop).
    lowering:
        Spec-to-execution translations applied, e.g.
        ``("rank -> mliq(k) + mass cut",)``.
    estimated_pages:
        Order-of-magnitude page-access guess for the whole batch.
    estimated_io_seconds:
        The estimate priced by the backend's disk cost model.
    estimated_cpu_seconds:
        Modeled refinement CPU for the batch. Columnar (format-v3)
        Gauss-trees are priced at the cost model's vectorized
        per-object rate, so plans reflect the columnar speedup.
    notes:
        Backend-provided caveats (accuracy, what drives the estimate).
    estimated_queue_seconds:
        Expected queueing delay added by the serving tier's batching
        window (zero for a plain in-process plan).
    coalesce_batch:
        Expected fused-batch size the plan was priced for (1 = no
        coalescing).
    coalesce_amortization:
        Per-query speedup factor the fused batch is expected to yield;
        the IO/CPU estimates are already divided by it.
    """

    backend: str
    query_kind: str
    n_queries: int
    strategy: str
    lowering: tuple[str, ...]
    estimated_pages: int
    estimated_io_seconds: float
    notes: tuple[str, ...]
    estimated_cpu_seconds: float = 0.0
    estimated_queue_seconds: float = 0.0
    coalesce_batch: int = 1
    coalesce_amortization: float = 1.0

    def describe(self) -> str:
        """Multi-line human-readable rendering (the CLI's --explain)."""
        lines = [
            f"plan: {self.n_queries} {self.query_kind} "
            f"quer{'y' if self.n_queries == 1 else 'ies'} "
            f"on backend {self.backend!r}",
            f"  strategy: {self.strategy}",
        ]
        for step in self.lowering:
            lines.append(f"  lowering: {step}")
        lines.append(
            f"  estimate: ~{self.estimated_pages} page accesses, "
            f"~{self.estimated_io_seconds * 1e3:.1f} ms modeled IO, "
            f"~{self.estimated_cpu_seconds * 1e3:.1f} ms modeled CPU"
        )
        if self.coalesce_batch > 1:
            lines.append(
                f"  coalesce: batch of ~{self.coalesce_batch} -> "
                f"{self.coalesce_amortization:.2f}x per-query "
                f"amortization, "
                f"+{self.estimated_queue_seconds * 1e3:.1f} ms expected "
                "queue wait"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def build_plan(
    backend: Backend,
    queries: Sequence[Query],
    *,
    coalesce: object | None = None,
) -> Plan:
    """Describe how ``backend`` will execute ``queries``.

    ``coalesce`` prices the plan as if it were served through the async
    serving tier's batching window: pass a
    :class:`~repro.serve.coalesce.CoalesceConfig` (or any object with
    ``max_batch``/``max_delay_seconds``, or a ``(max_batch,
    max_delay_seconds)`` tuple). The per-query IO/CPU estimates are
    divided by the cost model's expected batch amortization, one
    dispatcher overhead per query is added, and
    ``estimated_queue_seconds`` carries the expected wait inside the
    batching window — so an explain shows both what coalescing buys
    (amortization) and what it costs (queue delay).
    """
    if not queries:
        return Plan(
            backend=backend.name,
            query_kind="empty",
            n_queries=0,
            strategy="no-op",
            lowering=(),
            estimated_pages=0,
            estimated_io_seconds=0.0,
            notes=("empty batch",),
        )
    kinds = [query_kind(q) for q in queries]
    kind = kinds[0] if len(set(kinds)) == 1 else "mixed"
    lowering: list[str] = []
    if "rank" in kinds:
        lowering.append("rank -> mliq(k) + cumulative-mass cut")
    if "consensus" in kinds:
        lowering.append(
            "consensus -> mliq(k) + per-world membership probabilities"
        )
    if "erank" in kinds:
        lowering.append(
            "erank -> mliq(k) + expected-rank scores "
            "(expected-rank order == density order)"
        )
    if kind == "mixed":
        lowering.append("mixed batch split into one sub-batch per kind")
    # Composite backends (the sharded fan-out) describe their own extra
    # lowering steps — fan-out shape, merge strategy.
    extra = getattr(backend, "plan_lowering", None)
    if extra is not None:
        lowering.extend(extra(set(kinds)))
    batched = "batch" in backend.capabilities
    strategy = "batched" if batched else "per-query"

    pages = 0
    io_seconds = 0.0
    cpu_seconds = 0.0
    notes: list[str] = []
    # Price each kind's sub-batch with the backend's own cost model;
    # rank/consensus/erank are priced as the mliq they lower to.
    by_kind: dict[str, list[Query]] = {}
    for q, k in zip(queries, kinds):
        sub = "mliq" if k in ("rank", "consensus", "erank") else k
        by_kind.setdefault(sub, []).append(q)
    for sub_kind, sub in by_kind.items():
        est = backend.estimate(sub_kind, sub)
        pages += est.pages
        io_seconds += est.io_seconds
        cpu_seconds += est.cpu_seconds
        if est.note and est.note not in notes:
            notes.append(est.note)
    if "exact" not in backend.capabilities:
        notes.append("backend is approximate: answer sets may miss objects")

    queue_seconds = 0.0
    coalesce_batch = 1
    amortization = 1.0
    if coalesce is not None:
        if isinstance(coalesce, tuple):
            max_batch, max_delay = coalesce
        else:
            max_batch = coalesce.max_batch
            max_delay = coalesce.max_delay_seconds
        max_batch = int(max_batch)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        cost_model = getattr(backend, "cost_model", None) or DiskCostModel()
        coalesce_batch = max_batch
        amortization = cost_model.coalesce_amortization(max_batch)
        io_seconds /= amortization
        cpu_seconds = (
            cpu_seconds / amortization
            + cost_model.coalesce_dispatch_seconds * len(queries)
        )
        queue_seconds = cost_model.expected_coalesce_wait_seconds(
            float(max_delay)
        )
        if max_batch > 1:
            lowering.append(
                f"serving-tier coalescing fuses up to {max_batch} "
                "concurrent requests into one batched call"
            )
    return Plan(
        backend=backend.name,
        query_kind=kind,
        n_queries=len(queries),
        strategy=strategy,
        lowering=tuple(lowering),
        estimated_pages=pages,
        estimated_io_seconds=io_seconds,
        estimated_cpu_seconds=cpu_seconds,
        notes=tuple(notes),
        estimated_queue_seconds=queue_seconds,
        coalesce_batch=coalesce_batch,
        coalesce_amortization=amortization,
    )
