"""The connection-style facade: ``connect(source) -> Session``.

One composable query surface over every backend: a session executes the
declarative specs of :mod:`repro.engine.spec` through whichever access
method it was connected with and always returns the same
:class:`~repro.engine.result.ResultSet` shape. This is the seam the
ROADMAP's scaling work (sharding, async serving, backend choosers)
plugs into — everything above it (CLI, evaluation runner, benchmarks)
already speaks only this surface.

    import repro

    with repro.connect(db, backend="tree") as session:
        rs = session.execute(repro.MLIQ(q, k=5))
        print(rs.backend, rs.stats.pages_accessed, rs.matches)
        print(session.explain(repro.TIQ(q, tau=0.3)).describe())
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import Match, QueryStats
from repro.engine.backends import (
    Backend,
    CapabilityError,
    available_backends,
    backend_for_index,
    create_backend,
)
from repro.engine.planner import Plan, build_plan
from repro.engine.result import ResultSet
from repro.engine.semantics import score_ranked
from repro.engine.spec import Query, Spec, is_write_spec, spec_kind
from repro.obs import trace as _obs_trace

__all__ = ["Session", "connect", "session_for"]


class Session:
    """A live connection to one backend, executing the query algebra.

    Construct via :func:`connect` (or :func:`session_for` to adopt an
    already-built index). Usable as a context manager; ``close()``
    checkpoints and releases persistent backends.
    """

    def __init__(self, backend: Backend) -> None:
        self._backend = backend
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Provenance name of the connected backend."""
        return self._backend.name

    @property
    def capabilities(self) -> frozenset[str]:
        """The connected backend's declared capability strings."""
        return self._backend.capabilities

    @property
    def writable(self) -> bool:
        """Whether the session accepts ``insert``/``delete`` (the
        backend declares the ``"writable"`` capability)."""
        return "writable" in self._backend.capabilities

    def __len__(self) -> int:
        """Number of objects in the connected database/index."""
        return self._backend.count()

    # -- query execution -----------------------------------------------------

    def execute(self, query: Spec) -> ResultSet:
        """Execute one spec; ``ResultSet.matches`` is the answer (the
        empty list for the write specs ``Insert``/``Delete``)."""
        return self.execute_many([query])

    def execute_many(self, queries: Iterable[Spec]) -> ResultSet:
        """Execute a batch (mixed kinds allowed, writes included).

        Queries of the same kind share the backend's native batch entry
        point when it declares the ``"batch"`` capability (one
        buffer-warm pass); results come back in input order with one
        merged :class:`~repro.core.queries.QueryStats`.

        Write specs (:class:`~repro.engine.spec.Insert` /
        :class:`~repro.engine.spec.Delete`; ``"writable"`` capability
        required) may interleave with queries. The batch executes as
        ordered *runs*: every query observes the writes that precede it
        in the batch and none that follow, and each maximal run of
        consecutive ``Insert`` specs is applied through the backend's
        ``insert_many`` — one group-commit WAL transaction on durable
        trees. Write specs occupy their result slot with the empty
        match list.
        """
        self._check_open()
        specs = list(queries)
        for spec in specs:
            spec_kind(spec)  # fail fast on non-spec inputs
        per_query: list[list[Match] | None] = [None] * len(specs)
        total = QueryStats()

        # Composite backends (e.g. the sharded fan-out) expose a
        # per-component stats breakdown; attach it as provenance.
        take = getattr(self._backend, "take_provenance", None)
        # Tracing rides the ambient contextvar (repro.obs.tracing), not
        # a parameter, so the pinned Session signature stays unchanged
        # and untraced calls pay one ContextVar read.
        active = _obs_trace.current_trace()
        try:
            with _obs_trace.span("session.execute", count=len(specs)):
                for write_run, indices in _ordered_runs(specs):
                    if write_run:
                        with _obs_trace.span(
                            "run.write", count=len(indices)
                        ):
                            self._apply_write_run(specs, indices, per_query)
                    else:
                        with _obs_trace.span(
                            "run.query", count=len(indices)
                        ):
                            self._run_queries(specs, indices, per_query, total)
        except BaseException:
            # A run that failed after an earlier run succeeded must not
            # leak the partial breakdown into the next result.
            if take is not None:
                take()
            raise
        return ResultSet(
            specs,
            [m if m is not None else [] for m in per_query],
            total,
            self._backend.name,
            provenance=take() if take is not None else (),
            trace=active.to_dict() if active is not None else None,
        )

    def _run_queries(
        self,
        specs: list,
        indices: list[int],
        per_query: list,
        total: QueryStats,
    ) -> None:
        """Execute one read run, grouping same-kind specs into shared
        backend batches."""
        groups: dict[str, list[int]] = {}
        for i in indices:
            groups.setdefault(spec_kind(specs[i]), []).append(i)
        for kind, group in groups.items():
            subset = [specs[i] for i in group]
            if kind == "mliq":
                answered, stats = self._backend.run_mliq(subset)
            elif kind == "tiq":
                answered, stats = self._backend.run_tiq(subset)
            elif kind in ("consensus", "erank"):
                # Ranked semantics: backends that can do better (the
                # sharded fan-out piggybacks per-shard sufficient
                # statistics) expose run_ranked; everything else lowers
                # to MLIQ and rescores the exact prefix locally.
                run_ranked = getattr(self._backend, "run_ranked", None)
                if run_ranked is not None:
                    answered, stats = run_ranked(subset)
                else:
                    answered, stats = self._backend.run_mliq(
                        [s.lower() for s in subset]
                    )
                    answered = [
                        score_ranked(spec, matches)
                        for matches, spec in zip(answered, subset)
                    ]
            else:  # rank: lower to mliq, then apply the mass cut
                answered, stats = self._backend.run_mliq(
                    [s.lower() for s in subset]
                )
                answered = [
                    _mass_cut(matches, spec.min_mass)
                    for matches, spec in zip(answered, subset)
                ]
            for i, matches in zip(group, answered):
                per_query[i] = matches
            total.merge(stats)

    def _apply_write_run(
        self, specs: list, indices: list[int], per_query: list
    ) -> None:
        """Apply one write run in order; consecutive inserts batch into
        the backend's ``insert_many`` (group commit where supported)."""
        pending_inserts: list[PFV] = []

        def flush_inserts() -> None:
            if pending_inserts:
                self._backend.insert_many(list(pending_inserts))
                pending_inserts.clear()

        for i in indices:
            spec = specs[i]
            if spec.kind == "insert":
                pending_inserts.append(spec.v)
            else:  # delete
                flush_inserts()
                self._backend.delete(spec.v)
            per_query[i] = []
        flush_inserts()

    def explain(
        self,
        query: Query | Sequence[Query],
        *,
        coalesce: object | None = None,
    ) -> Plan:
        """Describe the execution of a spec (or batch) without running it.

        Accepts the same input shapes as :meth:`execute` /
        :meth:`execute_many`: one spec, or any iterable of specs.
        Read specs only — write specs execute as direct routed
        mutations and have no query plan. ``coalesce`` (a
        :class:`~repro.serve.coalesce.CoalesceConfig` or a
        ``(max_batch, max_delay_seconds)`` tuple) prices the plan as if
        served through the async tier's batching window: expected batch
        amortization divides the IO/CPU estimates and the expected
        queue wait is reported alongside.
        """
        self._check_open()
        if hasattr(query, "kind"):  # a single spec (specs are not iterable)
            queries = [query]
        else:
            queries = list(query)
        if any(is_write_spec(q) for q in queries if hasattr(q, "kind")):
            raise TypeError(
                "explain() describes read queries; Insert/Delete specs "
                "execute as direct routed mutations and have no plan"
            )
        return build_plan(self._backend, queries, coalesce=coalesce)

    # -- data access ---------------------------------------------------------

    def database(self) -> PFVDatabase:
        """Materialise the stored objects as a database (e.g. to derive
        a ground-truthed workload from the indexed population)."""
        self._check_open()
        return self._backend.database()

    # -- mutation (capability-gated) ----------------------------------------

    def insert(self, v: PFV) -> None:
        """Insert one pfv (``"writable"`` capability required; durable
        per operation on WAL-backed disk sessions)."""
        self._check_open()
        self._backend.insert(v)

    def insert_many(self, vectors: Iterable[PFV]) -> int:
        """Insert a batch of pfv; returns how many were inserted.

        On WAL-backed disk sessions the batch is one **group-commit**
        transaction (single fsync, page images deduplicated across the
        batch, recovery all-or-nothing); on a writable sharded session
        each vector routes to its owning shard by the placement policy
        and each shard's slice group-commits. Requires the
        ``"writable"`` capability.
        """
        self._check_open()
        return self._backend.insert_many(list(vectors))

    def delete(self, v: PFV) -> bool:
        """Delete one pfv; returns whether it was found."""
        self._check_open()
        return self._backend.delete(v)

    # -- lifecycle -----------------------------------------------------------

    def cold_start(self) -> None:
        """Drop the backend's page cache (evaluation protocol hook)."""
        self._check_open()
        self._backend.cold_start()

    def flush(self) -> None:
        """Checkpoint a durable backend (no-op otherwise)."""
        self._check_open()
        self._backend.flush()

    def close(self) -> None:
        """Release the backend (checkpoints persistent writers); the
        session refuses further work afterwards. Idempotent."""
        if not self._closed:
            self._closed = True
            self._backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"n={self._backend.count()}"
        return (
            f"Session(backend={self._backend.name!r}, {state}, "
            f"capabilities={sorted(self._backend.capabilities)})"
        )


def _ordered_runs(specs: list) -> list[tuple[bool, list[int]]]:
    """Split a batch into maximal runs of (write specs | read specs),
    preserving input order — the unit ``execute_many`` processes so that
    each query sees exactly the writes that precede it."""
    runs: list[tuple[bool, list[int]]] = []
    for i, spec in enumerate(specs):
        write = is_write_spec(spec)
        if runs and runs[-1][0] == write:
            runs[-1][1].append(i)
        else:
            runs.append((write, [i]))
    return runs


def _mass_cut(matches: list[Match], min_mass: float | None) -> list[Match]:
    """Truncate a posterior-ranked list at ``min_mass`` cumulative mass
    (keeping the match that crosses the line)."""
    if min_mass is None:
        return matches
    out: list[Match] = []
    mass = 0.0
    for m in matches:
        out.append(m)
        mass += m.probability
        if mass >= min_mass:
            break
    return out


def connect(
    source,
    backend: str = "auto",
    *,
    writable: bool = False,
    **options,
) -> Session:
    """Open a session over ``source`` through one registered backend.

    Parameters
    ----------
    source:
        A :class:`~repro.core.database.PFVDatabase`, an iterable of
        pfv, or the path of a saved Gauss-tree index file.
    backend:
        ``"auto"`` picks ``"disk"`` for a path and ``"tree"`` for
        in-memory data. Explicit names come from
        :func:`~repro.engine.backends.available_backends` —
        ``"tree"``, ``"disk"``, ``"seqscan"``, ``"xtree"`` built in.
        A non-path source with ``"disk"`` is an error; a *path* with a
        database-backed backend (``"tree"``/``"seqscan"``/``"xtree"``)
        materialises the stored objects first, so any index file can be
        served through any backend.
    writable:
        For ``"disk"``: open the index WAL-durable (format v2). The
        in-memory ``"tree"`` backend is always writable.
    options:
        Backend-specific keywords, e.g. ``page_store=``, ``layout=``,
        ``degree=``, ``mliq_tolerance=``/``tiq_tolerance=`` (tree),
        ``fsync=``/``auto_checkpoint_bytes=`` (disk, writable),
        ``coverage=`` (xtree).
    """
    if backend == "auto":
        import os

        backend = "disk" if isinstance(source, (str, os.PathLike)) else "tree"
    built = create_backend(backend, source, writable=writable, options=options)
    # Gate on declared capabilities, not on backend names, so registered
    # third-party writable backends work and read-only ones fail loudly.
    if writable and "writable" not in built.capabilities:
        close = getattr(built, "close", None)
        if close is not None:
            close()
        raise CapabilityError(
            f"backend {backend!r} does not support writable sessions "
            f"(capabilities: {sorted(built.capabilities)})"
        )
    return Session(built)


def session_for(index, name: str | None = None, **options) -> Session:
    """Adopt an already-built index object (GaussTree,
    SequentialScanIndex, XTreePFVIndex, a registered Backend, or any
    legacy object with ``mliq``/``tiq`` methods) as a session.
    ``options`` reach the adapter (Gauss-tree: ``mliq_tolerance``,
    ``tiq_tolerance``, ``probability_tolerance``)."""
    if isinstance(index, Session):
        if options:
            raise TypeError("an existing Session accepts no adapter options")
        return index
    return Session(backend_for_index(index, name, **options))


# Re-exported for discoverability next to connect().
connect.available_backends = available_backends  # type: ignore[attr-defined]
