"""Admission control: bounded, fair request queues for the async tier.

The serving problem this solves: a million clients must not translate
into a million threads (the old ``ThreadingHTTPServer`` failure mode)
or an unbounded backlog that grows until the process dies. Instead,
every request passes one :class:`AdmissionQueue` with two explicit
bounds — a global one and a per-client one — and a request that would
exceed either is *rejected immediately* with HTTP 429 plus a
``Retry-After`` hint, which costs the server a few microseconds instead
of memory. Dequeue order is round-robin over clients, so a greedy
client that pipelines hundreds of requests cannot starve a polite one:
each pass over the ring takes at most one request per client.

The queue itself is plain single-threaded data structure code — the
asyncio server only touches it from its event loop, and the unit tests
drive it directly without a loop.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable

__all__ = ["AdmissionConfig", "AdmissionError", "AdmissionQueue"]


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and backpressure knobs for one :class:`AdmissionQueue`.

    Parameters
    ----------
    max_queue:
        Global cap on queued requests across all clients; the
        ``max_queue + 1``-th concurrent request answers 429.
    max_queue_per_client:
        Cap per connection — one client pipelining past it gets 429
        while everyone else keeps being admitted.
    retry_after_seconds:
        The ``Retry-After`` hint sent with a 429/503, i.e. how long a
        well-behaved client should back off before retrying.
    """

    max_queue: int = 512
    max_queue_per_client: int = 64
    retry_after_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_queue_per_client < 1:
            raise ValueError(
                "max_queue_per_client must be >= 1, got "
                f"{self.max_queue_per_client}"
            )
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be non-negative")


class AdmissionError(Exception):
    """A request the queue refused to admit (backpressure, not failure).

    ``status`` is the HTTP status to answer with (429 when a bound is
    hit, 503 while draining) and ``retry_after`` the backoff hint in
    seconds.
    """

    def __init__(
        self, status: int, message: str, retry_after: float
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded per-client queues with round-robin fair dequeue.

    ``offer`` admits or raises :class:`AdmissionError`; ``take_run``
    dequeues a batch round-robin over clients (at most one request per
    client per ring pass), preserving each client's FIFO order. After
    :meth:`begin_drain` no new request is admitted (offers answer 503)
    but everything already queued still drains through ``take_run`` —
    graceful shutdown finishes admitted work, it never drops it.
    """

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._queues: dict[object, deque] = {}
        self._ring: deque = deque()
        self._in_ring: set = set()
        self._pending = 0
        self._draining = False
        self.admitted = 0
        self.rejected = 0
        self.rejected_draining = 0
        self.peak_pending = 0
        self.clients_seen = 0
        self._known_clients: set = set()

    @property
    def pending(self) -> int:
        """Requests currently queued (admitted, not yet taken)."""
        return self._pending

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` was called."""
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting; queued requests keep draining."""
        self._draining = True

    def offer(self, client_id: object, item: object) -> None:
        """Admit ``item`` for ``client_id`` or raise :class:`AdmissionError`.

        Rejection is O(1) and allocation-free on the hot path — the
        whole point of admission control is that saying "try later"
        stays cheap when the server is busiest.
        """
        cfg = self.config
        if self._draining:
            self.rejected_draining += 1
            raise AdmissionError(
                503,
                "server is draining; no new requests admitted",
                cfg.retry_after_seconds,
            )
        if self._pending >= cfg.max_queue:
            self.rejected += 1
            raise AdmissionError(
                429,
                f"request queue is full ({cfg.max_queue} pending)",
                cfg.retry_after_seconds,
            )
        q = self._queues.get(client_id)
        if q is None:
            q = self._queues[client_id] = deque()
            if client_id not in self._known_clients:
                self._known_clients.add(client_id)
                self.clients_seen += 1
        elif len(q) >= cfg.max_queue_per_client:
            self.rejected += 1
            raise AdmissionError(
                429,
                "per-client queue is full "
                f"({cfg.max_queue_per_client} pending)",
                cfg.retry_after_seconds,
            )
        q.append(item)
        self._pending += 1
        self.peak_pending = max(self.peak_pending, self._pending)
        self.admitted += 1
        if client_id not in self._in_ring:
            self._ring.append(client_id)
            self._in_ring.add(client_id)

    def peek(self):
        """The request the next ``take_run`` would dequeue first, or
        ``None`` when the queue is empty."""
        while self._ring:
            cid = self._ring[0]
            q = self._queues.get(cid)
            if q:
                return q[0]
            self._ring.popleft()
            self._in_ring.discard(cid)
            self._queues.pop(cid, None)
        return None

    def has(self, pred: Callable[[object], bool]) -> bool:
        """Whether any queued *head* request satisfies ``pred``."""
        return any(q and pred(q[0]) for q in self._queues.values())

    def take_run(
        self,
        pred: Callable[[object], bool],
        limit: int,
        weight: Callable[[object], int] | None = None,
    ) -> list:
        """Dequeue a batch of head requests matching ``pred``, fairly.

        Cycles the client ring taking at most one matching head per
        client per pass (per-client FIFO is preserved: a client whose
        head does *not* match contributes nothing this run). Stops when
        the accumulated ``weight`` (default: one per request) reaches
        ``limit`` or no head matches; the first taken request always
        fits, so an oversized single request still executes.
        """
        items: list = []
        total = 0
        while total < limit:
            took = False
            for _ in range(len(self._ring)):
                if total >= limit:
                    break
                cid = self._ring.popleft()
                q = self._queues.get(cid)
                if not q:
                    self._in_ring.discard(cid)
                    self._queues.pop(cid, None)
                    continue
                if pred(q[0]):
                    item = q.popleft()
                    self._pending -= 1
                    items.append(item)
                    total += weight(item) if weight is not None else 1
                    took = True
                if q:
                    self._ring.append(cid)
                else:
                    self._in_ring.discard(cid)
                    self._queues.pop(cid, None)
            if not took:
                break
        return items

    def snapshot(self) -> dict:
        """Admission counters for ``GET /stats``.

        ``per_client_pending`` maps each client with a non-empty queue
        to its current depth — the fairness view (``docs/serving.md``):
        a single hot client shows up as one deep queue, not as a vague
        global ``pending``.
        """
        return {
            "pending": self._pending,
            "peak_pending": self.peak_pending,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_draining": self.rejected_draining,
            "clients_seen": self.clients_seen,
            "max_queue": self.config.max_queue,
            "max_queue_per_client": self.config.max_queue_per_client,
            "per_client_pending": {
                str(cid): len(q) for cid, q in self._queues.items() if q
            },
        }
