"""The asyncio serving tier: pipelined JSONL + HTTP shim over a pool.

One event loop owns every connection; query execution runs on a small
``ThreadPoolExecutor`` with exactly one worker per pool session, so the
thread count is fixed at startup no matter how many clients connect —
concurrency is bounded by :class:`~repro.serve.admission.AdmissionQueue`
(429 + ``Retry-After`` beyond the bound), never by thread exhaustion.

Two protocols share each listening socket, sniffed per connection from
the first line:

* **Pipelined JSONL** (lines starting with ``{``): one request envelope
  per line — ``{"op": "query", "id": 7, "queries": [spec, ...]}`` — with
  responses echoing ``id`` and possibly arriving out of order, so a
  client may keep many requests in flight on one keep-alive connection.
* **HTTP/1.1 shim** (anything else): the exact endpoint contract of the
  threaded :class:`~repro.cluster.server.QueryServer` (``POST /query``,
  ``POST /insert``, ``POST /delete``, ``GET /healthz``, ``GET
  /stats``), so the stdlib
  :class:`~repro.cluster.client.ServeClient` works unchanged. Requests
  on one HTTP connection are answered in order (responses to *different*
  connections interleave freely).

The dispatcher implements **request coalescing**: it first waits for a
free pool session, then collects a round-robin batch of queued read
requests (plus a ``max_delay`` window for stragglers) and fuses them
into one ``execute_many`` call — concurrent singleton clients reach the
engine's batch entry points (~2x traversal amortization) without
batching client-side. Results demultiplex back per request. Concurrent
``insert`` requests coalesce the same way into one ``insert_many`` —
a single group-commit WAL transaction whose one fsync is shared by
every client acked from it. ``delete`` requests (the serving half of
the ReID track-churn workload) take the same write path: they serialize
on pool slot 0, coalesce into one flushed batch, and a vector absent
from the index answers cleanly with a lower ``deleted`` count — never
an error. Waiting for the session *before* forming
the batch is what makes batch size track load: while every session is
busy the queues grow, so the next batch is bigger exactly when
amortization pays most.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Sequence

from repro.cluster.server import MAX_BODY_BYTES, ServingStats
from repro.cluster.wire import (
    WireError,
    pfv_from_json,
    request_from_json,
    response_to_json,
    result_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.engine.result import ResultSet
from repro.engine.session import Session
from repro.engine.spec import is_write_spec
from repro.obs.metrics import (
    CONTENT_TYPE,
    SIZE_BUCKETS,
    MetricsRegistry,
    get_global_registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs import trace as obs_trace
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionError,
    AdmissionQueue,
)
from repro.serve.coalesce import CoalesceConfig

__all__ = ["AsyncQueryServer", "serve_async"]

#: Longest accepted JSONL request line / HTTP header line. Also the
#: asyncio stream reader's buffer limit.
MAX_LINE_BYTES = 16 * 1024 * 1024

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Pending:
    """One admitted request waiting in the queue.

    ``respond`` is a coroutine function ``(status, payload) -> None``
    bound to the originating connection/protocol; the batch that serves
    the request calls it on the event loop. ``weight`` is the number of
    engine operations the request contributes to a coalesced batch.
    ``trace`` is the request's :class:`~repro.obs.trace.Trace` when the
    client asked for one; ``enqueued_at`` feeds the admission-wait
    histogram and the trace's ``admission.wait`` span.
    """

    __slots__ = ("op", "specs", "vectors", "respond", "done", "trace",
                 "enqueued_at")

    def __init__(self, op, specs=None, vectors=None, respond=None,
                 trace=None):
        self.op = op
        self.specs = specs
        self.vectors = vectors
        self.respond = respond
        self.done: asyncio.Future | None = None
        self.trace = trace
        self.enqueued_at = time.perf_counter()

    @property
    def weight(self) -> int:
        if self.op == "query":
            return max(1, len(self.specs))
        return max(1, len(self.vectors))


class AsyncQueryServer:
    """The asyncio serving endpoint (see the module docstring).

    Parameters mirror :class:`~repro.cluster.server.QueryServer`
    (``session`` is pool slot 0 and takes every write; ``session_factory``
    opens the ``pool_size - 1`` read replicas at start), plus the
    serving-tier knobs: ``admission`` bounds the request queues and
    ``coalesce`` sets the batching window (``repro serve --async``
    surfaces both). ``drain_timeout`` caps how long :meth:`shutdown`
    waits for admitted requests to finish.

    Observability (``docs/observability.md``): ``registry`` is the
    server's private :class:`~repro.obs.metrics.MetricsRegistry`
    (defaults to a fresh one; pass a
    :class:`~repro.obs.metrics.NullRegistry` to disable serving-tier
    instrumentation). ``GET /metrics`` renders it concatenated with the
    process-global registry. ``slow_query_log`` (a path or an open
    :class:`~repro.obs.slowlog.SlowQueryLog`) captures requests slower
    than ``slow_query_ms`` end to end, each entry carrying the specs,
    the span tree and the ``explain()`` plan.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 8631,
        *,
        session_factory: Callable[[], Session] | None = None,
        pool_size: int = 1,
        admission: AdmissionConfig | None = None,
        coalesce: CoalesceConfig | None = None,
        drain_timeout: float = 10.0,
        verbose: bool = False,
        registry: MetricsRegistry | None = None,
        slow_query_log: SlowQueryLog | str | None = None,
        slow_query_ms: float = 250.0,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if pool_size > 1 and session_factory is None:
            raise ValueError(
                "pool_size > 1 needs a session_factory to open the "
                "replica sessions"
            )
        self.session = session
        self.host = host
        self.port = port
        self.session_factory = session_factory
        self.pool_size = pool_size
        self.admission_config = admission or AdmissionConfig()
        self.coalesce = coalesce or CoalesceConfig()
        self.drain_timeout = drain_timeout
        self.verbose = verbose
        self.stats = ServingStats()
        self.registry = registry if registry is not None else MetricsRegistry()
        if isinstance(slow_query_log, SlowQueryLog):
            self.slow_log: SlowQueryLog | None = slow_query_log
            self._owns_slow_log = False
        elif slow_query_log is not None:
            self.slow_log = SlowQueryLog(
                slow_query_log, threshold_ms=slow_query_ms
            )
            self._owns_slow_log = True
        else:
            self.slow_log = None
            self._owns_slow_log = False
        # Serving-tier counters live in the registry — one code path
        # feeds /stats, /metrics and the bench, no duplicated
        # bookkeeping. Directly-incremented series first; the
        # callback-backed ones (admission, pool) register in _main()
        # once their backing state exists.
        m = self.registry
        self._m_read_batches = m.counter(
            "repro_serve_read_batches_total",
            "execute_many batches dispatched for coalesced reads.",
        )
        self._m_coalesced_reads = m.counter(
            "repro_serve_coalesced_reads_total",
            "Read requests answered from a multi-request batch.",
        )
        self._m_write_batches = m.counter(
            "repro_serve_write_batches_total",
            "insert_many group-commit batches dispatched.",
        )
        self._m_coalesced_inserts = m.counter(
            "repro_serve_coalesced_inserts_total",
            "Vectors committed from multi-request insert batches.",
        )
        self._m_batch_size = m.histogram(
            "repro_serve_batch_size",
            "Engine operations fused into one coalesced batch.",
            buckets=SIZE_BUCKETS,
        )
        self._m_admission_wait = m.histogram(
            "repro_serve_admission_wait_seconds",
            "Queue wait between admission and batch dispatch.",
        )
        self._m_execute = m.histogram(
            "repro_serve_execute_seconds",
            "Engine wall time per dispatched batch.",
        )
        self._m_demux = m.histogram(
            "repro_serve_demux_fanout",
            "Requests demultiplexed from one batch's results.",
            buckets=SIZE_BUCKETS,
        )
        # Runtime state, created on the event loop in _main().
        self._sessions: list[Session] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._admission: AdmissionQueue | None = None
        self._bound: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._stop_requested = threading.Event()
        self._drained = threading.Event()

    # -- public lifecycle ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (serve first)."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound endpoint (the HTTP shim
        accepts ServeClient there; JSONL clients use :attr:`address`)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until shutdown
        (the ``repro serve --async`` foreground mode)."""
        asyncio.run(self._main())

    def serve_in_background(self) -> "AsyncQueryServer":
        """Run the event loop in a daemon thread; returns once the
        listening socket is bound (tests, benchmarks, embedding)."""
        if self._thread is not None:
            raise RuntimeError("server is already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-async", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._start_error is not None:
            raise RuntimeError(
                f"async server failed to start: {self._start_error}"
            ) from self._start_error
        if not self._started.is_set():
            raise RuntimeError("async server did not start within 30s")
        return self

    def shutdown(self) -> None:
        """Graceful drain: stop admitting (new requests answer 503),
        finish every admitted request, close connections and replica
        sessions, stop the loop. Idempotent; thread-safe."""
        self._stop_requested.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._kick)
            self._drained.wait(timeout=self.drain_timeout + 10)
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout + 10)
            self._thread = None

    def __enter__(self) -> "AsyncQueryServer":
        if self._thread is None:
            self.serve_in_background()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- event-loop main -----------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface to serve_in_background
            if not self._started.is_set():
                self._start_error = exc
                self._started.set()
        finally:
            self._drained.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._admission = AdmissionQueue(self.admission_config)
        self._conns: set[asyncio.StreamWriter] = set()
        self._inflight: set[asyncio.Task] = set()
        self._client_ids = itertools.count(1)
        # Pool bookkeeping lives in asyncio-land; the executor has one
        # worker per session so a checked-out slot always has a thread.
        self._sessions = [self.session]
        if self.pool_size > 1:
            self._sessions += [
                self.session_factory() for _ in range(self.pool_size - 1)
            ]
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="repro-serve"
        )
        self._free_slots = set(range(self.pool_size))
        self._slot_cond = asyncio.Condition()
        self._pool_acquires = 0
        self._pool_waits = 0
        self._pool_peak = 0
        self._per_slot_batches = [0] * self.pool_size
        self._version = 0
        self._slot_versions = [0] * self.pool_size
        self._register_callback_metrics()

        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._started.set()
        try:
            while not self._stop_requested.is_set():
                self._wake.clear()
                if self._stop_requested.is_set():
                    break
                await self._wake.wait()
        finally:
            await self._drain(dispatcher)

    def _kick(self) -> None:
        """Wake both the main waiter and the dispatcher (loop-side)."""
        self._wake.set()

    def _register_callback_metrics(self) -> None:
        """Install callback-backed series over state that already counts
        itself (admission queue, session pool, ServingStats) — the
        registry reads the single source of truth at scrape time."""
        m = self.registry
        adm = self._admission
        m.gauge(
            "repro_serve_queue_depth",
            "Admitted requests currently queued.",
            callback=lambda: adm.pending,
        )
        m.gauge(
            "repro_serve_queue_depth_peak",
            "High-water mark of the admission queue.",
            callback=lambda: adm.peak_pending,
        )
        m.counter(
            "repro_serve_admitted_total",
            "Requests accepted by admission control.",
            callback=lambda: adm.admitted,
        )
        m.counter(
            "repro_serve_shed_total",
            "Requests rejected by admission control (429 + 503).",
            callback=lambda: adm.rejected + adm.rejected_draining,
        )
        m.counter(
            "repro_serve_clients_total",
            "Distinct client queues seen since start.",
            callback=lambda: adm.clients_seen,
        )
        m.gauge(
            "repro_serve_pool_size",
            "Pool sessions (one executor thread each).",
        ).set(self.pool_size)
        m.gauge(
            "repro_serve_pool_in_use",
            "Pool sessions currently checked out.",
            callback=lambda: self.pool_size - len(self._free_slots),
        )
        m.counter(
            "repro_serve_pool_acquires_total",
            "Pool slot acquisitions.",
            callback=lambda: self._pool_acquires,
        )
        m.counter(
            "repro_serve_pool_waits_total",
            "Slot acquisitions that had to wait for a busy pool.",
            callback=lambda: self._pool_waits,
        )
        m.counter(
            "repro_serve_queries_total",
            "Query specs executed (batch members counted singly).",
            callback=lambda: self.stats.queries,
        )
        m.counter(
            "repro_serve_inserts_total",
            "Vectors inserted.",
            callback=lambda: self.stats.inserts,
        )
        m.counter(
            "repro_serve_deletes_total",
            "Vectors deleted (found-and-removed, misses excluded).",
            callback=lambda: self.stats.deletes,
        )
        m.counter(
            "repro_serve_errors_total",
            "Requests answered with a non-shed 4xx/5xx status.",
            callback=lambda: self.stats.errors,
        )

    async def _drain(self, dispatcher: asyncio.Task) -> None:
        self._admission.begin_drain()
        self._server.close()
        self._wake.set()
        deadline = self._loop.time() + self.drain_timeout
        while (
            self._admission.pending or self._inflight
        ) and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        dispatcher.cancel()
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._conns):
            writer.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        for session in self._sessions[1:]:
            try:
                session.close()
            except Exception:
                pass
        if self._owns_slow_log and self.slow_log is not None:
            self.slow_log.close()

    # -- pool slots ----------------------------------------------------------

    async def _acquire_slot(self, slot: int | None) -> int:
        async with self._slot_cond:
            self._pool_acquires += 1

            def available() -> bool:
                if slot is not None:
                    return slot in self._free_slots
                return bool(self._free_slots)

            if not available():
                self._pool_waits += 1
                await self._slot_cond.wait_for(available)
            taken = slot if slot is not None else min(self._free_slots)
            self._free_slots.discard(taken)
            in_use = self.pool_size - len(self._free_slots)
            self._pool_peak = max(self._pool_peak, in_use)
            self._per_slot_batches[taken] += 1
            return taken

    async def _release_slot(self, slot: int) -> None:
        async with self._slot_cond:
            self._free_slots.add(slot)
            self._slot_cond.notify_all()

    def _pool_snapshot(self) -> dict:
        return {
            "size": self.pool_size,
            "in_use": self.pool_size - len(self._free_slots),
            "peak_in_use": self._pool_peak,
            "acquires": self._pool_acquires,
            "waits": self._pool_waits,
            "batches_per_session": list(self._per_slot_batches),
        }

    # -- dispatcher: slot first, then the batch ------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            head = self._admission.peek()
            if head is None:
                if self._admission.draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            want_write = head.op in ("insert", "delete")
            if want_write and 0 not in self._free_slots:
                # Writes serialize on slot 0; while it is busy, don't
                # head-of-line-block reads that a free replica could
                # serve right now.
                if self._free_slots and self._admission.has(
                    lambda it: it.op == "query"
                ):
                    want_write = False
            slot = await self._acquire_slot(0 if want_write else None)
            op = head.op if want_write else "query"
            items = self._collect(op)
            if (
                items
                and sum(it.weight for it in items) < self._batch_limit(op)
                and self.coalesce.max_delay_seconds > 0
                and self._coalescing(op)
                and not self._admission.draining
            ):
                # The batching window: hold the session briefly for
                # stragglers so near-simultaneous singletons fuse.
                await asyncio.sleep(self.coalesce.max_delay_seconds)
                items += self._collect(op, already=items)
            if not items:
                await self._release_slot(slot)
                continue
            if op == "insert":
                task = asyncio.ensure_future(
                    self._run_insert_batch(slot, items)
                )
            elif op == "delete":
                task = asyncio.ensure_future(
                    self._run_delete_batch(slot, items)
                )
            else:
                task = asyncio.ensure_future(
                    self._run_read_batch(slot, items)
                )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    def _coalescing(self, op: str) -> bool:
        return (
            self.coalesce.coalesce_writes
            if op in ("insert", "delete")
            else self.coalesce.coalesce_reads
        )

    def _batch_limit(self, op: str) -> int:
        return self.coalesce.max_batch if self._coalescing(op) else 1

    def _collect(self, op: str, already: list | None = None) -> list:
        limit = self._batch_limit(op)
        if already:
            limit -= sum(it.weight for it in already)
            if limit < 1:
                return []
        if self._coalescing(op):
            return self._admission.take_run(
                lambda it: it.op == op, limit, weight=lambda it: it.weight
            )
        # Coalescing disabled: one request per batch, served verbatim.
        return self._admission.take_run(lambda it: it.op == op, 1)

    # -- batch execution -----------------------------------------------------

    def _record_batch_metrics(self, items: list, dispatched: float) -> None:
        """Observe batch width and each member's queue wait."""
        self._m_batch_size.observe(sum(it.weight for it in items))
        for it in items:
            self._m_admission_wait.observe(dispatched - it.enqueued_at)

    async def _run_read_batch(self, slot: int, items: list) -> None:
        specs = [s for it in items for s in it.specs]
        dispatched = time.perf_counter()
        self._record_batch_metrics(items, dispatched)
        # One batch trace serves every traced member: execute_many runs
        # once for the whole batch, so its spans are genuinely shared —
        # each traced request gets them grafted under its own root,
        # shifted into request-relative time.
        traced = any(it.trace is not None for it in items)
        batch_trace = obs_trace.Trace(epoch=dispatched) if traced else None
        slow = self.slow_log

        def run_batch(session: Session):
            # run_in_executor does not propagate contextvars, so the
            # trace activates here, on the executor thread, covering
            # the whole synchronous engine path.
            t0 = time.perf_counter()
            with obs_trace.tracing(batch_trace):
                result = session.execute_many(specs)
            spent = time.perf_counter() - t0
            plan = None
            if slow is not None and spent >= slow.threshold_seconds:
                # The batch is already over threshold: price the plan
                # now, while this thread still holds the slot, so the
                # slow-log entry can compare estimate vs observed.
                try:
                    plan = session.explain(specs).describe()
                except Exception:
                    plan = None
            return result, spent, plan

        try:
            session = await self._reading_session(slot)
            rs: ResultSet
            rs, elapsed, plan = await self._loop.run_in_executor(
                self._executor, run_batch, session
            )
        except asyncio.CancelledError:
            await self._release_slot(slot)
            raise
        except Exception as exc:
            await self._release_slot(slot)
            message = f"{type(exc).__name__}: {exc}"
            for it in items:
                await self._answer(it, 500, {"error": message})
            return
        await self._release_slot(slot)
        self.stats.record(specs, rs.stats, elapsed)
        self._m_execute.observe(elapsed)
        self._m_read_batches.inc()
        self._m_demux.observe(len(items))
        if len(items) > 1:
            self._m_coalesced_reads.inc(len(items))
        payload = result_to_json(rs)
        payload.pop("trace", None)  # per-request trees replace it below
        provenance = payload.get("provenance")
        offset = 0
        for it in items:
            n = len(it.specs)
            part = {
                "backend": payload["backend"],
                "n_queries": n,
                "results": payload["results"][offset : offset + n],
                # Stats are the *batch's* merged counters: work shared
                # by every request coalesced into this execute_many.
                "stats": payload["stats"],
                "execute_seconds": round(elapsed, 6),
                "coalesced": len(items),
            }
            if provenance is not None:
                part["provenance"] = provenance
            offset += n
            trace_dict = self._finish_item_trace(
                it, dispatched, elapsed, batch_trace, len(specs),
                "serve.execute",
            )
            if trace_dict is not None:
                part["trace"] = trace_dict
            if slow is not None:
                wait = dispatched - it.enqueued_at
                slow.maybe_log(
                    wait + elapsed,
                    queries=[spec_to_json(s) for s in it.specs],
                    trace=trace_dict,
                    plan=plan,
                    stats=payload["stats"],
                    source="serve-async",
                )
            await self._answer(it, 200, part)

    def _finish_item_trace(
        self,
        it: _Pending,
        dispatched: float,
        elapsed: float,
        batch_trace: "obs_trace.Trace | None",
        batch_width: int,
        execute_name: str,
    ) -> dict | None:
        """Assemble one request's span tree from the shared batch trace.

        The tree is request-relative: ``request`` spans admission to
        response, ``admission.wait`` covers the queue, and the engine's
        spans (recorded against the batch epoch == dispatch time) graft
        under the execute span shifted by this request's own wait.
        """
        if it.trace is None:
            return None
        wait = dispatched - it.enqueued_at
        # The engine spans are batch-epoch relative and include the
        # dispatch -> executor-thread scheduling gap, which `elapsed`
        # (measured around execute_many alone) does not; widen the
        # execute window so children never overhang their parent.
        span_end = elapsed
        if batch_trace is not None:
            span_end = max(
                span_end,
                max(
                    (s.start + s.dur for s in batch_trace.spans),
                    default=0.0,
                ),
            )
        root = obs_trace.Span("request", 0.0, wait + span_end)
        root.children.append(obs_trace.Span("admission.wait", 0.0, wait))
        execute = obs_trace.Span(
            execute_name, wait, span_end, count=batch_width
        )
        if batch_trace is not None:
            execute.children = [s.shifted(wait) for s in batch_trace.spans]
        root.children.append(execute)
        it.trace.spans = [root]
        return it.trace.to_dict()

    async def _reading_session(self, slot: int) -> Session:
        """The slot's session, refreshed first if it predates the last
        accepted write (read-your-writes through every slot)."""
        if (
            slot != 0
            and self.session_factory is not None
            and self._slot_versions[slot] < self._version
        ):
            target = self._version
            try:
                fresh = await self._loop.run_in_executor(
                    self._executor, self.session_factory
                )
            except Exception:
                # Keep serving the (slightly stale) old session; the
                # slot stays marked stale so the next batch retries.
                return self._sessions[slot]
            old, self._sessions[slot] = self._sessions[slot], fresh
            self._slot_versions[slot] = target
            try:
                old.close()
            except Exception:
                pass
        return self._sessions[slot]

    async def _run_insert_batch(self, slot: int, items: list) -> None:
        vectors = [v for it in items for v in it.vectors]
        dispatched = time.perf_counter()
        self._record_batch_metrics(items, dispatched)
        traced = any(it.trace is not None for it in items)
        batch_trace = obs_trace.Trace(epoch=dispatched) if traced else None

        def apply() -> int:
            # One insert_many = one group-commit WAL transaction per
            # touched index: every coalesced client shares its fsync.
            # The trace activates on the executor thread (contextvars
            # don't cross run_in_executor) so wal.commit spans attach.
            with obs_trace.tracing(batch_trace):
                count = self.session.insert_many(vectors)
                if self.pool_size > 1:
                    self.session.flush()
            return count

        try:
            started = time.perf_counter()
            await self._loop.run_in_executor(self._executor, apply)
            objects = len(self.session)
            elapsed = time.perf_counter() - started
        except asyncio.CancelledError:
            await self._release_slot(slot)
            raise
        except Exception as exc:
            await self._release_slot(slot)
            message = f"{type(exc).__name__}: {exc}"
            for it in items:
                await self._answer(it, 500, {"error": message})
            return
        if self.pool_size > 1:
            self._version += 1
            self._slot_versions[0] = self._version
        await self._release_slot(slot)
        self.stats.record_inserts(len(vectors), elapsed)
        self._m_execute.observe(elapsed)
        self._m_write_batches.inc()
        self._m_demux.observe(len(items))
        if len(items) > 1:
            self._m_coalesced_inserts.inc(len(vectors))
        for it in items:
            # Acked only after the shared fsync returned.
            part = {
                "inserted": len(it.vectors),
                "objects": objects,
                "execute_seconds": round(elapsed, 6),
                "coalesced": len(items),
            }
            trace_dict = self._finish_item_trace(
                it, dispatched, elapsed, batch_trace, len(vectors),
                "serve.insert",
            )
            if trace_dict is not None:
                part["trace"] = trace_dict
            await self._answer(it, 200, part)

    async def _run_delete_batch(self, slot: int, items: list) -> None:
        dispatched = time.perf_counter()
        self._record_batch_metrics(items, dispatched)
        traced = any(it.trace is not None for it in items)
        batch_trace = obs_trace.Trace(epoch=dispatched) if traced else None

        def apply() -> list[int]:
            # Deletes serialize on the primary like inserts; a vector
            # absent from the index is a clean miss (False from
            # Session.delete, no WAL commit), so the batch never fails
            # on stale client state — it just reports a lower count.
            with obs_trace.tracing(batch_trace):
                found = [
                    sum(1 for v in it.vectors if self.session.delete(v))
                    for it in items
                ]
                if self.pool_size > 1 and any(found):
                    self.session.flush()
            return found

        try:
            started = time.perf_counter()
            found = await self._loop.run_in_executor(self._executor, apply)
            objects = len(self.session)
            elapsed = time.perf_counter() - started
        except asyncio.CancelledError:
            await self._release_slot(slot)
            raise
        except Exception as exc:
            await self._release_slot(slot)
            message = f"{type(exc).__name__}: {exc}"
            for it in items:
                await self._answer(it, 500, {"error": message})
            return
        if self.pool_size > 1 and any(found):
            self._version += 1
            self._slot_versions[0] = self._version
        await self._release_slot(slot)
        self.stats.record_deletes(sum(found), elapsed)
        self._m_execute.observe(elapsed)
        self._m_write_batches.inc()
        self._m_demux.observe(len(items))
        n_vectors = sum(len(it.vectors) for it in items)
        for it, n_found in zip(items, found):
            part = {
                "deleted": n_found,
                "requested": len(it.vectors),
                "objects": objects,
                "execute_seconds": round(elapsed, 6),
                "coalesced": len(items),
            }
            trace_dict = self._finish_item_trace(
                it, dispatched, elapsed, batch_trace, n_vectors,
                "serve.delete",
            )
            if trace_dict is not None:
                part["trace"] = trace_dict
            await self._answer(it, 200, part)

    async def _answer(self, it: _Pending, status: int, payload: dict) -> None:
        if status >= 400 and status not in (429, 503):
            self.stats.record_error()
        try:
            await it.respond(status, payload)
        except (ConnectionError, RuntimeError, OSError):
            pass  # client went away; the work is done regardless
        if it.done is not None and not it.done.done():
            it.done.set_result(None)

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client_id = next(self._client_ids)
        write_lock = asyncio.Lock()
        self._conns.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._write_jsonl(
                        writer,
                        write_lock,
                        response_to_json(
                            None,
                            400,
                            {"error": "request line over limit"},
                        ),
                    )
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith(b"{"):
                    await self._handle_jsonl(
                        stripped, client_id, writer, write_lock
                    )
                else:
                    keep = await self._handle_http(
                        stripped, reader, writer, write_lock
                    )
                    if not keep:
                        break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # Drain cancels handlers after admitted work finished; exit
            # cleanly so loop shutdown doesn't log phantom errors.
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- JSONL protocol ------------------------------------------------------

    async def _write_jsonl(self, writer, lock, obj: dict) -> None:
        data = json.dumps(obj).encode("utf-8") + b"\n"
        async with lock:
            writer.write(data)
            await writer.drain()

    async def _handle_jsonl(
        self, line: bytes, client_id, writer, lock
    ) -> None:
        try:
            data = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._write_jsonl(
                writer,
                lock,
                response_to_json(
                    None, 400, {"error": f"request is not JSON: {exc}"}
                ),
            )
            return
        try:
            rid, op, payload = request_from_json(data)
        except WireError as exc:
            await self._write_jsonl(
                writer,
                lock,
                response_to_json(data.get("id") if isinstance(data, dict)
                                 else None, 400, {"error": str(exc)}),
            )
            return

        async def respond(status: int, body: dict) -> None:
            await self._write_jsonl(
                writer, lock, response_to_json(rid, status, body)
            )

        await self._submit(client_id, op, payload, respond)

    # -- HTTP/1.1 shim -------------------------------------------------------

    async def _write_http(
        self, writer, lock, status: int, payload: dict
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        retry_after = payload.get("retry_after")
        if retry_after is not None:
            headers.append(f"Retry-After: {retry_after}")
        head = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
        async with lock:
            writer.write(head + body)
            await writer.drain()

    async def _write_http_text(
        self, writer, lock, text: str, content_type: str
    ) -> None:
        """A raw text 200 (the Prometheus exposition is not JSON)."""
        body = text.encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        async with lock:
            writer.write(head + body)
            await writer.drain()

    async def _handle_http(
        self, request_line: bytes, reader, writer, lock
    ) -> bool:
        """Serve one HTTP request; returns False to close the connection."""
        try:
            parts = request_line.decode("latin-1").split()
            method, path = parts[0], parts[1]
        except (UnicodeDecodeError, IndexError):
            await self._write_http(
                writer, lock, 400, {"error": "malformed request line"}
            )
            return False
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            await self._write_http(
                writer, lock, 400, {"error": "bad Content-Length"}
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._write_http(
                writer,
                lock,
                413,
                {"error": f"request body over {MAX_BODY_BYTES} bytes"},
            )
            return False
        body = await reader.readexactly(length) if length > 0 else b""

        if (method, path) == ("GET", "/metrics"):
            await self._write_http_text(
                writer, lock, self.metrics_text(), CONTENT_TYPE
            )
            return headers.get("connection", "").lower() != "close"

        op = {
            ("GET", "/healthz"): "healthz",
            ("GET", "/stats"): "stats",
            ("POST", "/query"): "query",
            ("POST", "/insert"): "insert",
            ("POST", "/delete"): "delete",
        }.get((method, path))
        if op is None:
            await self._write_http(
                writer, lock, 404, {"error": f"unknown path {path!r}"}
            )
            return headers.get("connection", "").lower() != "close"
        if op in ("query", "insert", "delete"):
            if not body:
                await self._write_http(
                    writer, lock, 400, {"error": "empty request body"}
                )
                return False
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                await self._write_http(
                    writer,
                    lock,
                    400,
                    {"error": f"request body is not JSON: {exc}"},
                )
                return False
        else:
            payload = {}
        # X-Repro-Trace asks for a traced request (the header's value
        # becomes the trace ID); a "trace" field in the body wins.
        trace_header = headers.get("x-repro-trace")
        if trace_header and "trace" not in payload:
            payload["trace"] = trace_header

        done: asyncio.Future = self._loop.create_future()

        async def respond(status: int, answer: dict) -> None:
            await self._write_http(writer, lock, status, answer)
            if not done.done():
                done.set_result(None)

        # HTTP pipelining requires in-order responses: serve one request
        # at a time per connection (coalescing happens across
        # connections, matching how ServeClient opens them).
        await self._submit(
            f"http-{id(writer)}", op, payload, respond, done=done
        )
        await done
        return headers.get("connection", "").lower() != "close"

    # -- request routing (shared by both protocols) --------------------------

    async def _submit(
        self,
        client_id,
        op: str,
        payload: dict,
        respond: Callable[[int, dict], Awaitable[None]],
        *,
        done: asyncio.Future | None = None,
    ) -> None:
        """Answer ``healthz``/``stats`` inline; queue
        ``query``/``insert``/``delete`` through admission (responding
        4xx immediately when rejected or malformed)."""

        async def reply(status: int, body: dict) -> None:
            if status >= 400 and status not in (429, 503):
                self.stats.record_error()
            await respond(status, body)
            if done is not None and not done.done():
                done.set_result(None)

        if op == "healthz":
            await reply(
                200,
                {
                    "status": "ok",
                    "backend": self.session.backend_name,
                    "objects": len(self.session),
                    "uptime_seconds": round(
                        time.time() - self.stats.started_at, 3
                    ),
                    "serving": "async",
                },
            )
            return
        if op == "stats":
            await reply(200, self._stats_payload())
            return
        if op == "metrics":
            # JSONL transport of the exposition text; HTTP serves the
            # raw text/plain form at GET /metrics.
            await reply(200, {"text": self.metrics_text()})
            return

        # A truthy "trace" field (or the X-Repro-Trace header, folded
        # into the payload by the HTTP path) makes this request traced:
        # a string supplies the trace ID, any other truthy value mints
        # one. The span tree comes back on the response as "trace".
        trace_req = payload.get("trace")
        req_trace = None
        if trace_req:
            req_trace = obs_trace.Trace(
                trace_req if isinstance(trace_req, str) else None
            )

        if op == "query":
            try:
                raw = payload.get("queries")
                if raw is None:
                    raw = [payload]
                if not isinstance(raw, list):
                    raise WireError('"queries" must be a list of specs')
                specs = [spec_from_json(item) for item in raw]
            except WireError as exc:
                await reply(400, {"error": str(exc)})
                return
            if not specs:
                await reply(400, {"error": "no queries in request"})
                return
            if any(is_write_spec(s) for s in specs):
                await reply(
                    400,
                    {
                        "error": "write specs are not served by query; "
                        "send the vectors through insert or delete "
                        "(writes serialize on the primary session)"
                    },
                )
                return
            item = _Pending(
                "query", specs=specs, respond=respond, trace=req_trace
            )
        else:  # insert / delete
            if not self.session.writable:
                await reply(
                    403,
                    {
                        "error": "server session is read-only; restart "
                        "`repro serve` with --writable to accept writes"
                    },
                )
                return
            try:
                raw = payload.get("vectors")
                if not isinstance(raw, list):
                    raise WireError(
                        f'{op} body must be {{"vectors": [pfv, ...]}}'
                    )
                vectors = [pfv_from_json(v) for v in raw]
            except WireError as exc:
                await reply(400, {"error": str(exc)})
                return
            if not vectors:
                await reply(400, {"error": "no vectors in request"})
                return
            item = _Pending(
                op, vectors=vectors, respond=respond, trace=req_trace
            )

        item.done = done
        try:
            self._admission.offer(client_id, item)
        except AdmissionError as exc:
            await reply(
                exc.status,
                {"error": str(exc), "retry_after": exc.retry_after},
            )
            return
        self._wake.set()

    def metrics_text(self) -> str:
        """The Prometheus exposition: this server's private registry
        concatenated with the process-global one (WAL, cluster,
        buffer series). Served by ``GET /metrics`` and the JSONL
        ``metrics`` op."""
        return self.registry.render() + get_global_registry().render()

    def _stats_payload(self) -> dict:
        payload = self.stats.snapshot()
        payload["backend"] = self.session.backend_name
        payload["objects"] = len(self.session)
        payload["session_pool"] = self._pool_snapshot()
        payload["admission"] = self._admission.snapshot()
        # Sourced from the registry — the same counters /metrics
        # exposes, no duplicated bookkeeping (keys are a stable
        # contract; see docs/serving.md).
        payload["coalescing"] = {
            "read_batches": int(self._m_read_batches.value),
            "coalesced_reads": int(self._m_coalesced_reads.value),
            "write_batches": int(self._m_write_batches.value),
            "coalesced_inserts": int(self._m_coalesced_inserts.value),
            "batch_size": self._m_batch_size.summary(),
            "max_batch": self.coalesce.max_batch,
            "max_delay_seconds": self.coalesce.max_delay_seconds,
            "reads": self.coalesce.coalesce_reads,
            "writes": self.coalesce.coalesce_writes,
        }
        return payload


def serve_async(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 8631,
    *,
    session_factory: Callable[[], Session] | None = None,
    pool_size: int = 1,
    admission: AdmissionConfig | None = None,
    coalesce: CoalesceConfig | None = None,
    drain_timeout: float = 10.0,
    verbose: bool = False,
    registry: MetricsRegistry | None = None,
    slow_query_log: SlowQueryLog | str | None = None,
    slow_query_ms: float = 250.0,
) -> AsyncQueryServer:
    """Start the asyncio serving tier in a background thread; returns
    the running :class:`AsyncQueryServer` (use as a context manager to
    drain and stop). The async twin of :func:`repro.cluster.serve`."""
    return AsyncQueryServer(
        session,
        host,
        port,
        session_factory=session_factory,
        pool_size=pool_size,
        admission=admission,
        coalesce=coalesce,
        drain_timeout=drain_timeout,
        verbose=verbose,
        registry=registry,
        slow_query_log=slow_query_log,
        slow_query_ms=slow_query_ms,
    ).serve_in_background()
