"""Pipelined JSONL client for the async serving tier.

A deliberately thin, stdlib-only counterpart to the HTTP
:class:`~repro.cluster.client.ServeClient`: one TCP connection, one
JSON object per line in each direction, many requests in flight at
once. Responses echo the request ``id`` and may arrive out of order —
:meth:`JsonlClient.recv_for` buffers strays so callers can interleave
sends and receives freely. Responses carry an HTTP-alike ``status``
field instead of raising: backpressure (429) is an expected answer the
caller reacts to, not an exception (the load generator in
``benchmarks/bench_serve.py`` is the canonical consumer).
"""

from __future__ import annotations

import json
import socket
from typing import Sequence

from repro.cluster.client import RemoteError
from repro.cluster.wire import pfv_to_json, spec_to_json
from repro.core.pfv import PFV
from repro.engine.spec import Query

__all__ = ["JsonlClient"]


class JsonlClient:
    """One pipelined JSONL connection to an :class:`AsyncQueryServer`.

    The low-level surface is :meth:`send` (returns the auto-assigned
    request id immediately) plus :meth:`recv` / :meth:`recv_for`; the
    convenience methods (:meth:`query`, :meth:`insert`, :meth:`delete`,
    :meth:`healthz`, :meth:`stats`) each send one request and block for
    its response
    dict, ``status`` field included. Not thread-safe — use one client
    per thread, which is also one fairness domain on the server.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._stashed: dict[object, dict] = {}

    def send(self, op: str, **payload: object) -> int:
        """Write one request line; returns its ``id`` without waiting."""
        self._next_id += 1
        rid = self._next_id
        envelope = {"op": op, "id": rid, **payload}
        try:
            self._file.write(json.dumps(envelope).encode("utf-8") + b"\n")
            self._file.flush()
        except (OSError, ValueError) as exc:
            raise RemoteError(f"send failed: {exc}") from exc
        return rid

    def recv(self) -> dict:
        """Read the next response line (any request's), as a dict."""
        if self._stashed:
            _, resp = self._stashed.popitem()
            return resp
        return self._read_response()

    def recv_for(self, rid: object) -> dict:
        """Read until the response for ``rid`` arrives, stashing any
        other responses for later :meth:`recv`/:meth:`recv_for` calls."""
        if rid in self._stashed:
            return self._stashed.pop(rid)
        while True:
            resp = self._read_response()
            if resp.get("id") == rid:
                return resp
            self._stashed[resp.get("id")] = resp

    def _read_response(self) -> dict:
        try:
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            raise RemoteError(f"recv failed: {exc}") from exc
        if not line:
            raise RemoteError("server closed the connection")
        try:
            resp = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteError(f"bad response line: {exc}") from exc
        if not isinstance(resp, dict):
            raise RemoteError(f"bad response payload: {resp!r}")
        return resp

    def request(self, op: str, **payload: object) -> dict:
        """Send one request and block for its response dict."""
        return self.recv_for(self.send(op, **payload))

    def query(
        self, specs: Sequence[Query], *, trace: bool | str = False
    ) -> dict:
        """Run read specs; the response dict mirrors ``POST /query``
        (plus ``status`` and the echoed ``id``). A truthy ``trace``
        asks the server for the request's span tree (a string supplies
        the trace ID, ``True`` lets the server mint one); it comes back
        under the response's ``"trace"`` key."""
        payload: dict = {"queries": [spec_to_json(s) for s in specs]}
        if trace:
            payload["trace"] = trace
        return self.request("query", **payload)

    def insert(
        self, vectors: Sequence[PFV], *, trace: bool | str = False
    ) -> dict:
        """Insert vectors; the response dict mirrors ``POST /insert``.
        A 200 means the shared group-commit fsync completed. ``trace``
        as in :meth:`query` — the span tree covers the queue wait and
        the group-commit (``wal.commit``) the batch shared."""
        payload: dict = {"vectors": [pfv_to_json(v) for v in vectors]}
        if trace:
            payload["trace"] = trace
        return self.request("insert", **payload)

    def delete(
        self, vectors: Sequence[PFV], *, trace: bool | str = False
    ) -> dict:
        """Delete vectors; the response dict mirrors ``POST /delete``
        (``deleted`` counts vectors actually found — absent vectors are
        clean misses, not errors). Deletes serialize on the primary
        session like inserts. ``trace`` as in :meth:`query`."""
        payload: dict = {"vectors": [pfv_to_json(v) for v in vectors]}
        if trace:
            payload["trace"] = trace
        return self.request("delete", **payload)

    def healthz(self) -> dict:
        """The server's liveness payload (``GET /healthz`` shape, except
        ``status`` is the envelope's numeric one — 200 when healthy)."""
        return self.request("healthz")

    def stats(self) -> dict:
        """The server's counters (``GET /stats`` shape, including the
        ``admission`` and ``coalescing`` sections)."""
        return self.request("stats")

    def metrics(self) -> str:
        """The server's Prometheus exposition text (the JSONL transport
        of ``GET /metrics``)."""
        return self.request("metrics").get("text", "")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "JsonlClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
