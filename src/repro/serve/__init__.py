"""The asyncio serving tier: admission control + request coalescing.

This package is the high-concurrency front end for an index: one event
loop multiplexing every connection, bounded admission queues answering
429 + ``Retry-After`` under overload (instead of the thread-per-client
collapse of the stdlib HTTP server), and a coalescing dispatcher that
fuses concurrent singleton requests into the engine's batch entry
points (``execute_many`` for reads, one group-commit ``insert_many``
per write batch). It speaks a pipelined JSONL protocol plus an
HTTP/1.1 shim on the same port, so the existing
:class:`~repro.cluster.client.ServeClient` works unchanged. Start it
with ``repro serve --async`` or embed it::

    from repro import connect
    from repro.serve import serve_async

    with serve_async(connect("db.gauss"), port=0) as server:
        host, port = server.address
        ...

Design notes live in ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionConfig, AdmissionError, AdmissionQueue
from repro.serve.client import JsonlClient
from repro.serve.coalesce import CoalesceConfig
from repro.serve.server import AsyncQueryServer, serve_async

__all__ = [
    "AdmissionConfig",
    "AdmissionError",
    "AdmissionQueue",
    "AsyncQueryServer",
    "CoalesceConfig",
    "JsonlClient",
    "serve_async",
]
