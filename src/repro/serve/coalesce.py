"""Coalescing knobs for the async serving tier.

Why a window at all: the engine's batch entry points amortize traversal
work across queries (``execute_many`` groups same-kind reads; one
``insert_many`` shares one group-commit fsync), but HTTP/JSONL clients
mostly send singletons. The dispatcher therefore fuses concurrent
requests server-side — and these knobs bound how aggressively. The
trade is explicit: a larger ``max_batch``/``max_delay_seconds`` buys
amortization (throughput) at the cost of up to ``max_delay_seconds``
added latency for the *first* request of a batch when the server is
idle. Under load the delay is irrelevant — batches fill from the queue
the moment a pool session frees up — which is exactly when
amortization pays most.
"""

from __future__ import annotations

import dataclasses

__all__ = ["CoalesceConfig"]


@dataclasses.dataclass(frozen=True)
class CoalesceConfig:
    """Batching window for the async dispatcher.

    Parameters
    ----------
    max_batch:
        Most engine operations (query specs, insert vectors) fused into
        one ``execute_many``/``insert_many`` call. A single oversized
        request still executes alone.
    max_delay_seconds:
        How long a dispatcher holding a free session waits for
        stragglers before executing an underfull batch. ``0`` disables
        the wait (batches still form from whatever is already queued).
    coalesce_reads / coalesce_writes:
        Disable fusing per direction; requests then execute one per
        batch, exactly as the threaded server would. The benchmark's
        baseline server runs with ``coalesce_reads=False``.
    """

    max_batch: int = 16
    max_delay_seconds: float = 0.002
    coalesce_reads: bool = True
    coalesce_writes: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be non-negative")
