"""Sequential-scan query processing (Section 4, "Our General Solution").

These are the paper's reference algorithms over an unordered file of pfv:

* **k-MLIQ** — a single scan keeps the k highest-density objects seen so
  far; posteriors are normalised by the full denominator afterwards.
* **TIQ** — conceptually two scans: one to accumulate the Bayes denominator
  ``sum_w p(q|w)``, one to report every object with
  ``p(q|v) / denominator >= p_theta``. Our vectorised implementation
  materialises all log densities once (that *is* the first scan) and
  filters in a second pass over the array.

They are exact and serve three roles in this repository: (1) the
correctness oracle the Gauss-tree is tested against, (2) the refinement
step of filter+refine baselines, and (3) the "Seq. File" competitor of
Figure 7 when run through :class:`repro.baselines.seqscan.SequentialScanIndex`,
which adds paged-IO accounting on top.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import gaussian
from repro.core.bayes import log_densities, posteriors_from_log_densities
from repro.core.database import PFVDatabase
from repro.core.queries import Match, MLIQuery, ThresholdQuery

__all__ = ["scan_mliq", "scan_tiq", "scan_posteriors"]


def _matches_from(
    db: PFVDatabase, order: np.ndarray, log_dens: np.ndarray, post: np.ndarray
) -> list[Match]:
    return [
        Match(db[int(i)], float(log_dens[int(i)]), float(post[int(i)]))
        for i in order
    ]


def _ranked_order(log_dens: np.ndarray) -> np.ndarray:
    """Indices sorted by descending density; ties broken by position for
    deterministic results (Definition 3 leaves ties unspecified)."""
    return np.lexsort((np.arange(log_dens.size), -log_dens))


def scan_posteriors(db: PFVDatabase, q) -> tuple[np.ndarray, np.ndarray]:
    """Log densities and posteriors of all objects, in insertion order."""
    log_dens = log_densities(db, q)
    return log_dens, posteriors_from_log_densities(log_dens)


def scan_mliq(db: PFVDatabase, query: MLIQuery) -> list[Match]:
    """Answer a k-MLIQ by scanning the whole database.

    Returns min(k, n) matches ordered by descending posterior.
    """
    if len(db) == 0:
        return []
    log_dens, post = scan_posteriors(db, query.q)
    order = _ranked_order(log_dens)[: query.k]
    return _matches_from(db, order, log_dens, post)


def scan_tiq(db: PFVDatabase, query: ThresholdQuery) -> list[Match]:
    """Answer a TIQ by scanning the whole database.

    Returns all objects with posterior ``>= p_theta``, ordered by
    descending posterior. With ``p_theta == 0`` this is the full ranked
    database (every posterior is >= 0).
    """
    if len(db) == 0:
        return []
    log_dens, post = scan_posteriors(db, query.q)
    selected = post >= query.p_theta
    order = _ranked_order(log_dens)
    order = order[selected[order]]
    return _matches_from(db, order, log_dens, post)


def scan_log_total(db: PFVDatabase, q) -> float:
    """Log Bayes denominator, as the first TIQ scan would compute it."""
    if len(db) == 0:
        return -math.inf
    return gaussian.logsumexp(log_densities(db, q))
