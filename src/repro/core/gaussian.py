"""Univariate Gaussian primitives used throughout the reproduction.

Everything in this module works on plain floats or numpy arrays and is
log-space friendly: high-dimensional products of densities (27 dimensions in
data set 1 of the paper) underflow IEEE doubles as soon as a query is a few
standard deviations away from an object, so callers are expected to combine
per-dimension *log* densities and only exponentiate ratios.

The module also provides the degree-5 polynomial sigmoid approximation of
the normal CDF that Section 5.3 of the paper mentions for integrating the
hull function ("We apply sigmoid approximation by a degree-5 polynomial").
We use the classic Abramowitz & Stegun 26.2.17 rational approximation, which
is exactly a degree-5 polynomial in ``1 / (1 + p*x)`` and accurate to
``7.5e-8`` — the tests compare it against :func:`scipy.special.ndtr`.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "SQRT_TWO_PI",
    "LOG_SQRT_TWO_PI",
    "SQRT_TWO_PI_E",
    "pdf",
    "log_pdf",
    "cdf",
    "cdf_poly5",
    "log_pdf_array",
    "log_pdf_sum",
    "peak_density",
    "log_peak_density",
    "logsumexp",
]

SQRT_TWO_PI = math.sqrt(2.0 * math.pi)
LOG_SQRT_TWO_PI = 0.5 * math.log(2.0 * math.pi)
#: ``sqrt(2 * pi * e)`` — the constant of the paper's case (II)/(VI) hull
#: segments, where the hull degenerates to ``1 / (sqrt(2 pi e) * (mu - x))``.
SQRT_TWO_PI_E = math.sqrt(2.0 * math.pi * math.e)

# Abramowitz & Stegun 26.2.17 coefficients (degree-5 polynomial in t).
_AS_P = 0.2316419
_AS_B1 = 0.319381530
_AS_B2 = -0.356563782
_AS_B3 = 1.781477937
_AS_B4 = -1.821255978
_AS_B5 = 1.330274429


def pdf(x: float, mu: float, sigma: float) -> float:
    """Density of ``N(mu, sigma)`` at ``x`` (``sigma`` is a std-dev)."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    z = (x - mu) / sigma
    return math.exp(-0.5 * z * z) / (SQRT_TWO_PI * sigma)


def log_pdf(x: float, mu: float, sigma: float) -> float:
    """Natural log of :func:`pdf` — never under/overflows for finite input."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    z = (x - mu) / sigma
    return -0.5 * z * z - math.log(sigma) - LOG_SQRT_TWO_PI


def cdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Exact normal CDF via the error function."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * math.sqrt(2.0))))


def cdf_poly5(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Degree-5 polynomial sigmoid approximation of the normal CDF.

    This is the integration device Section 5.3 of the paper refers to.
    Absolute error is below ``7.5e-8`` (Abramowitz & Stegun 26.2.17).
    """
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    z = (x - mu) / sigma
    if z < 0.0:
        return 1.0 - cdf_poly5(-z)
    t = 1.0 / (1.0 + _AS_P * z)
    poly = t * (_AS_B1 + t * (_AS_B2 + t * (_AS_B3 + t * (_AS_B4 + t * _AS_B5))))
    return 1.0 - pdf(z, 0.0, 1.0) * poly


def log_pdf_array(
    x: np.ndarray, mu: np.ndarray, sigma: np.ndarray
) -> np.ndarray:
    """Vectorised elementwise ``log N_{mu, sigma}(x)``.

    Shapes broadcast; ``sigma`` must be strictly positive everywhere.
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if np.any(sigma <= 0.0):
        raise ValueError("all sigma values must be positive")
    x = np.asarray(x, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    z = (x - mu) / sigma
    return -0.5 * z * z - np.log(sigma) - LOG_SQRT_TWO_PI


def log_pdf_sum(x: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """Log of the *product* density along the last axis.

    For a batch of d-dimensional observations this returns
    ``sum_i log N_{mu_i, sigma_i}(x_i)`` — the log of Definition 1's
    multivariate (axis-parallel) Gaussian density.
    """
    return np.sum(log_pdf_array(x, mu, sigma), axis=-1)


def peak_density(sigma: float) -> float:
    """Maximum value of a Gaussian pdf with std-dev ``sigma`` (at its mean)."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    return 1.0 / (SQRT_TWO_PI * sigma)


def log_peak_density(sigma: float) -> float:
    """Log of :func:`peak_density`."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma!r}")
    return -math.log(sigma) - LOG_SQRT_TWO_PI


def logsumexp(values: np.ndarray) -> float:
    """Stable ``log(sum(exp(values)))`` for a 1-d array.

    ``-inf`` entries (densities that underflow even in log space, e.g. a
    zero-probability bound) are handled; an all ``-inf`` input returns
    ``-inf``. A ``+inf`` entry dominates every sum and propagates as
    ``+inf`` (the shifted form ``m + log(sum(exp(values - m)))`` would
    evaluate ``inf - inf`` and poison the result with NaN); a NaN entry
    propagates as NaN.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return -math.inf
    m = float(np.max(values))  # np.max propagates NaN
    if math.isnan(m):
        return math.nan
    if m == math.inf:
        return math.inf
    if m == -math.inf:
        return -math.inf
    return m + math.log(float(np.sum(np.exp(values - m))))
