"""Joint probability of two probabilistic features (Lemma 1 of the paper).

Given a database feature ``v_i = (mu_v, sigma_v)`` and a query feature
``q_i = (mu_q, sigma_q)``, the probability density that both observations
stem from the *same* true value is the overlap integral of the two
Gaussians:

``p(q_i | v_i) = integral N_{mu_v, sigma_v}(x) * N_{mu_q, sigma_q}(x) dx``

Lemma 1 collapses this to a single Gaussian evaluation
``N_{mu_v, sigma_c}(mu_q)`` with a combined uncertainty ``sigma_c``. The
paper prints ``sigma_c = sigma_v + sigma_q``; the mathematically exact
convolution adds *variances*, ``sigma_c = sqrt(sigma_v^2 + sigma_q^2)``
(see DESIGN.md, "Known notational slip"). Both rules are implemented as
:class:`SigmaRule`; the exact rule is the default and is verified against
numerical quadrature in the test suite. Every index bound in the Gauss-tree
stays conservative under either rule because both are strictly increasing
in ``sigma_v`` (for fixed ``sigma_q``), so interval bounds on ``sigma_v``
map to interval bounds on ``sigma_c``.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.core import gaussian
from repro.core.pfv import PFV

__all__ = [
    "SigmaRule",
    "combine_sigma",
    "log_joint_density_1d",
    "joint_density_1d",
    "log_joint_density",
    "joint_density",
    "log_joint_density_batch",
    "log_joint_density_multi",
]


class SigmaRule(enum.Enum):
    """How the uncertainties of query and database feature combine."""

    #: Exact Gaussian convolution: ``sqrt(sigma_v**2 + sigma_q**2)``.
    CONVOLUTION = "convolution"
    #: Literal formula printed in the paper's Lemma 1: ``sigma_v + sigma_q``.
    PAPER = "paper"


def combine_sigma(
    sigma_v: np.ndarray | float,
    sigma_q: np.ndarray | float,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> np.ndarray | float:
    """Combined uncertainty ``sigma_c`` under the chosen rule.

    Works elementwise on arrays. For both rules the result is strictly
    increasing in ``sigma_v`` — the property the Gauss-tree's interval
    bounds rely on.
    """
    if rule is SigmaRule.CONVOLUTION:
        return np.sqrt(np.square(sigma_v) + np.square(sigma_q))
    if rule is SigmaRule.PAPER:
        return np.add(sigma_v, sigma_q)
    raise ValueError(f"unknown sigma rule: {rule!r}")


def log_joint_density_1d(
    mu_v: float,
    sigma_v: float,
    mu_q: float,
    sigma_q: float,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> float:
    """Log of Lemma 1's ``p(q_i | v_i)`` for a single probabilistic feature."""
    sigma_c = float(combine_sigma(sigma_v, sigma_q, rule))
    return gaussian.log_pdf(mu_q, mu_v, sigma_c)


def joint_density_1d(
    mu_v: float,
    sigma_v: float,
    mu_q: float,
    sigma_q: float,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> float:
    """Linear-space variant of :func:`log_joint_density_1d`."""
    return math.exp(log_joint_density_1d(mu_v, sigma_v, mu_q, sigma_q, rule))


def log_joint_density(
    v: PFV, q: PFV, rule: SigmaRule = SigmaRule.CONVOLUTION
) -> float:
    """``log p(q | v)`` — sum of per-dimension Lemma-1 log densities.

    Symmetric in ``v`` and ``q`` (the overlap integral does not care which
    Gaussian is the query), which the tests assert.
    """
    if v.dims != q.dims:
        raise ValueError(f"dimension mismatch: v has {v.dims}, q has {q.dims}")
    sigma_c = combine_sigma(v.sigma, q.sigma, rule)
    return float(np.sum(gaussian.log_pdf_array(q.mu, v.mu, sigma_c)))


def joint_density(v: PFV, q: PFV, rule: SigmaRule = SigmaRule.CONVOLUTION) -> float:
    """``p(q | v)``; underflows to 0.0 for very distant pairs."""
    return math.exp(log_joint_density(v, q, rule))


def log_joint_density_batch(
    mu: np.ndarray,
    sigma: np.ndarray,
    q: PFV,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> np.ndarray:
    """Vectorised ``log p(q | v_j)`` for a stack of database pfv.

    Parameters
    ----------
    mu, sigma:
        Arrays of shape ``(n, d)`` holding the database observations.
    q:
        The query pfv (``d`` dimensions).

    Returns
    -------
    Array of shape ``(n,)`` with the log joint densities. This is the hot
    path of the sequential scan and of leaf refinement in the Gauss-tree.
    """
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.ndim != 2 or mu.shape != sigma.shape:
        raise ValueError(
            f"mu and sigma must both have shape (n, d); got {mu.shape} and "
            f"{sigma.shape}"
        )
    if mu.shape[1] != q.dims:
        raise ValueError(
            f"dimension mismatch: batch has d={mu.shape[1]}, query has {q.dims}"
        )
    sigma_c = combine_sigma(sigma, q.sigma[np.newaxis, :], rule)
    return np.sum(
        gaussian.log_pdf_array(q.mu[np.newaxis, :], mu, sigma_c), axis=1
    )


def log_joint_density_multi(
    mu: np.ndarray,
    sigma: np.ndarray,
    q_mu: np.ndarray,
    q_sigma: np.ndarray,
    rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> np.ndarray:
    """``log p(q_i | v_j)`` for a *batch of queries* over a stack of pfv.

    Parameters
    ----------
    mu, sigma:
        ``(n, d)`` arrays holding the database observations.
    q_mu, q_sigma:
        ``(m, d)`` arrays holding the query pfv.

    Returns
    -------
    ``(m, n)`` array of log joint densities — row ``i`` is what
    :func:`log_joint_density_batch` returns for query ``i``. One numpy
    evaluation replaces ``m`` separate batch calls, which is the kernel
    behind the batch query APIs: when many concurrent queries refine the
    same leaf, the per-call dispatch overhead is paid once.
    """
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    q_mu = np.asarray(q_mu, dtype=np.float64)
    q_sigma = np.asarray(q_sigma, dtype=np.float64)
    if mu.ndim != 2 or mu.shape != sigma.shape:
        raise ValueError(
            f"mu and sigma must both have shape (n, d); got {mu.shape} and "
            f"{sigma.shape}"
        )
    if q_mu.ndim != 2 or q_mu.shape != q_sigma.shape:
        raise ValueError(
            f"q_mu and q_sigma must both have shape (m, d); got "
            f"{q_mu.shape} and {q_sigma.shape}"
        )
    if mu.shape[1] != q_mu.shape[1]:
        raise ValueError(
            f"dimension mismatch: batch has d={mu.shape[1]}, queries have "
            f"d={q_mu.shape[1]}"
        )
    n, d = mu.shape
    m = q_mu.shape[0]
    # The broadcast temporaries are (chunk, n, d); keeping them around the
    # L2 cache size beats both one giant (m, n, d) broadcast (memory
    # streaming) and a per-query loop (dispatch overhead) — measured on
    # the 5000 x 10 scan workload. Small inputs (a leaf, a handful of
    # queries) take the single-chunk fast path.
    chunk = max(1, int(250_000 // max(1, n * d)))
    if chunk >= m:
        sigma_c = combine_sigma(
            sigma[np.newaxis, :, :], q_sigma[:, np.newaxis, :], rule
        )  # (m, n, d)
        return np.sum(
            gaussian.log_pdf_array(
                q_mu[:, np.newaxis, :], mu[np.newaxis, :, :], sigma_c
            ),
            axis=2,
        )
    out = np.empty((m, n), dtype=np.float64)
    for start in range(0, m, chunk):
        rows = slice(start, min(start + chunk, m))
        sigma_c = combine_sigma(
            sigma[np.newaxis, :, :], q_sigma[rows, np.newaxis, :], rule
        )
        out[rows] = np.sum(
            gaussian.log_pdf_array(
                q_mu[rows, np.newaxis, :], mu[np.newaxis, :, :], sigma_c
            ),
            axis=2,
        )
    return out
