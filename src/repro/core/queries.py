"""Query specifications and result types (Definitions 2 and 3 of the paper).

Two identification query types operate on a database of probabilistic
feature vectors:

* **Threshold identification query** — ``TIQ(q, p_theta)`` returns every
  database object whose posterior ``P(v|q)`` reaches the threshold
  (Definition 2; "all persons that could be shown on this image with
  probability at least 10%").
* **k-most-likely identification query** — ``k-MLIQ(q, k)`` returns the
  ``k`` objects of maximal posterior (Definition 3; "the 10 most likely
  persons on this image").

Every access method in this repository (sequential scan, Gauss-tree,
X-tree filter+refine) answers these same specs and returns the same
:class:`Match` records, so results are directly comparable — the test
suite asserts scan/tree equivalence on randomized databases.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable

from repro.core.pfv import PFV

__all__ = ["MLIQuery", "ThresholdQuery", "Match", "QueryStats"]


@dataclasses.dataclass(frozen=True)
class MLIQuery:
    """A k-most-likely identification query (Definition 3)."""

    q: PFV
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")


@dataclasses.dataclass(frozen=True)
class ThresholdQuery:
    """A threshold identification query (Definition 2)."""

    q: PFV
    p_theta: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_theta <= 1.0:
            raise ValueError(
                f"p_theta must be a probability in [0, 1], got {self.p_theta}"
            )


@dataclasses.dataclass(frozen=True)
class Match:
    """One answer object of an identification query.

    Attributes
    ----------
    vector:
        The matching database pfv.
    log_density:
        ``log p(q | vector)`` — the (relative) Lemma-1 joint density.
    probability:
        The Bayes posterior ``P(vector | q)``.
    score:
        Semantics-specific value attached by the ranking specs of the
        engine (``None`` for plain MLIQ/TIQ answers): the per-world
        membership probability for ``ConsensusTopK``, the expected rank
        for ``ExpectedRank``. Construction stays positional-compatible
        for the three original fields.
    """

    vector: PFV
    log_density: float
    probability: float
    score: float | None = None

    @property
    def key(self) -> Hashable:
        """Key of the matched real-world object."""
        return self.vector.key

    def __repr__(self) -> str:
        extra = "" if self.score is None else f", score={self.score:.4f}"
        return (
            f"Match(key={self.vector.key!r}, P={self.probability:.4f}, "
            f"log_p(q|v)={self.log_density:.2f}{extra})"
        )


@dataclasses.dataclass
class QueryStats:
    """Work counters filled in by the executing access method.

    ``pages_accessed`` counts *logical* page reads (buffer hits included);
    ``page_faults`` counts the subset that missed the buffer and paid
    simulated disk IO. ``objects_refined`` counts exact Lemma-1 density
    evaluations; ``nodes_expanded`` counts index nodes popped from the
    priority queue (0 for the sequential scan).

    Two time columns coexist (see ``repro.storage.costmodel``):
    ``cpu_seconds`` is *measured* Python wall time, while
    ``modeled_cpu_seconds`` prices the work counters at the paper's
    2006-testbed rates — the figure-7 harness reports the modeled
    numbers because numpy's vectorisation advantage for the sequential
    scan would otherwise invert the paper's CPU ratios.
    """

    pages_accessed: int = 0
    page_faults: int = 0
    objects_refined: int = 0
    nodes_expanded: int = 0
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    modeled_cpu_seconds: float = 0.0
    buffer_evictions: int = 0

    @property
    def total_seconds(self) -> float:
        """Measured CPU plus modelled disk IO."""
        return self.cpu_seconds + self.io_seconds

    @property
    def buffer_hit_ratio(self) -> float:
        """Observed buffer hit ratio for this query (0 when no pages
        were accessed) — comparable against ``explain()``'s estimate
        in the slow-query log."""
        if not self.pages_accessed:
            return 0.0
        return (self.pages_accessed - self.page_faults) / self.pages_accessed

    @property
    def modeled_total_seconds(self) -> float:
        """Fully modeled overall time (2006 CPU + 2006 disk)."""
        return self.modeled_cpu_seconds + self.io_seconds

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for batches)."""
        self.pages_accessed += other.pages_accessed
        self.page_faults += other.page_faults
        self.objects_refined += other.objects_refined
        self.nodes_expanded += other.nodes_expanded
        self.cpu_seconds += other.cpu_seconds
        self.io_seconds += other.io_seconds
        self.modeled_cpu_seconds += other.modeled_cpu_seconds
        self.buffer_evictions += other.buffer_evictions
