"""Probabilistic feature vectors (Definition 1 of the paper).

A :class:`ProbabilisticFeatureVector` (pfv) pairs each of its ``d`` feature
values ``mu_i`` with an uncertainty ``sigma_i`` — the standard deviation of
the (assumed Gaussian) measurement error of that feature. The pfv therefore
describes an axis-parallel multivariate normal distribution of the *true*
feature vector given the observation.

The class is a thin, immutable wrapper around two float64 numpy arrays, plus
an application-level ``key`` identifying the real-world object the
observation belongs to (person id, image id, ...). Keys are what
identification queries return and what precision/recall are computed
against.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

import numpy as np

from repro.core import gaussian

__all__ = ["ProbabilisticFeatureVector", "PFV"]


class ProbabilisticFeatureVector:
    """An observation with per-dimension Gaussian uncertainty.

    Parameters
    ----------
    mu:
        Observed feature values, length ``d``.
    sigma:
        Per-dimension standard deviations, length ``d``; strictly positive.
    key:
        Hashable identifier of the underlying real-world object. Distinct
        observations of the same object share a key. ``None`` is allowed
        for anonymous vectors (e.g. ad-hoc queries).
    """

    __slots__ = ("_mu", "_sigma", "_key")

    def __init__(
        self,
        mu: Sequence[float] | np.ndarray,
        sigma: Sequence[float] | np.ndarray,
        key: Hashable = None,
    ) -> None:
        # Copy so that freezing below cannot affect a caller-owned array.
        mu_arr = np.array(mu, dtype=np.float64, copy=True)
        sigma_arr = np.array(sigma, dtype=np.float64, copy=True)
        if mu_arr.ndim != 1:
            raise ValueError(f"mu must be 1-dimensional, got shape {mu_arr.shape}")
        if sigma_arr.ndim != 1:
            raise ValueError(
                f"sigma must be 1-dimensional, got shape {sigma_arr.shape}"
            )
        if mu_arr.shape != sigma_arr.shape:
            raise ValueError(
                "mu and sigma must have the same length, got "
                f"{mu_arr.shape[0]} and {sigma_arr.shape[0]}"
            )
        if mu_arr.size == 0:
            raise ValueError("a pfv needs at least one dimension")
        if not np.all(np.isfinite(mu_arr)):
            raise ValueError("mu contains non-finite values")
        if not np.all(np.isfinite(sigma_arr)) or np.any(sigma_arr <= 0.0):
            raise ValueError("sigma values must be finite and strictly positive")
        mu_arr.flags.writeable = False
        sigma_arr.flags.writeable = False
        self._mu = mu_arr
        self._sigma = sigma_arr
        self._key = key

    # -- basic accessors ---------------------------------------------------

    @property
    def mu(self) -> np.ndarray:
        """Observed feature values (read-only array of length ``d``)."""
        return self._mu

    @property
    def sigma(self) -> np.ndarray:
        """Per-dimension standard deviations (read-only, length ``d``)."""
        return self._sigma

    @property
    def key(self) -> Hashable:
        """Identifier of the real-world object this observation belongs to."""
        return self._key

    @property
    def dims(self) -> int:
        """Number of probabilistic features ``d``."""
        return int(self._mu.shape[0])

    def with_key(self, key: Hashable) -> "ProbabilisticFeatureVector":
        """Return a copy of this pfv carrying a different key."""
        return ProbabilisticFeatureVector(self._mu, self._sigma, key)

    # -- density -----------------------------------------------------------

    def log_density(self, x: Sequence[float] | np.ndarray) -> float:
        """``log p(x | v)`` — log density of the exact value ``x`` (Def. 1)."""
        x_arr = np.asarray(x, dtype=np.float64)
        if x_arr.shape != self._mu.shape:
            raise ValueError(
                f"x has {x_arr.shape[0] if x_arr.ndim == 1 else '?'} dims, "
                f"pfv has {self.dims}"
            )
        return float(gaussian.log_pdf_sum(x_arr, self._mu, self._sigma))

    def density(self, x: Sequence[float] | np.ndarray) -> float:
        """``p(x | v)`` — may underflow to 0.0 for distant ``x``; prefer
        :meth:`log_density` in numerical code."""
        return float(np.exp(self.log_density(x)))

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return self.dims

    def __iter__(self) -> Iterator[tuple[float, float]]:
        """Iterate over ``(mu_i, sigma_i)`` pairs, as in Definition 1."""
        for m, s in zip(self._mu, self._sigma):
            yield float(m), float(s)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticFeatureVector):
            return NotImplemented
        return (
            self._key == other._key
            and np.array_equal(self._mu, other._mu)
            and np.array_equal(self._sigma, other._sigma)
        )

    def __hash__(self) -> int:
        return hash((self._key, self._mu.tobytes(), self._sigma.tobytes()))

    def __repr__(self) -> str:
        return (
            f"PFV(key={self._key!r}, d={self.dims}, "
            f"mu={np.array2string(self._mu, precision=3, threshold=6)}, "
            f"sigma={np.array2string(self._sigma, precision=3, threshold=6)})"
        )


#: Short alias used pervasively in the codebase and the paper's notation.
PFV = ProbabilisticFeatureVector
