"""Bayes identification probabilities (Sections 3.1 and 4 of the paper).

For identification the absolute density ``p(q | v)`` is meaningless on its
own — integrating a density over the infinitely thin point ``q`` is zero.
The paper's key move is to condition on the closed world of the database:
the query *is* one of the stored objects, so by Bayes' theorem (with uniform
priors, which the paper assumes because query frequencies are unknown):

``P(v | q) = p(q | v) / sum_{w in DB} p(q | w)``

This module computes those posteriors from per-object *log* joint densities
in a numerically stable way (log-sum-exp) and exposes the handful of
closed-form checks used by the test suite to verify the model's Properties
1-4 from Section 4 (probabilities sum to 1, indifference ``-> 1/n`` under
infinite uncertainty, etc.).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core import gaussian
from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule, log_joint_density_batch
from repro.core.pfv import PFV

__all__ = [
    "posteriors_from_log_densities",
    "log_densities",
    "identification_posteriors",
    "identification_probability",
]


def posteriors_from_log_densities(log_dens: Sequence[float] | np.ndarray) -> np.ndarray:
    """Normalise log joint densities into posterior probabilities.

    ``P(v_j | q) = exp(log_dens_j) / sum_k exp(log_dens_k)`` computed with a
    max-shift so that 27-dimensional log densities in the hundreds of
    negative nats do not underflow.

    If *every* density underflows to ``-inf`` (the query is infinitely far
    from everything — impossible in exact arithmetic, possible after float
    rounding), the posterior is undefined; we return the uniform
    distribution ``1/n``, which is the paper's "maximally indifferent"
    limit (Property 3).
    """
    arr = np.asarray(log_dens, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-d array of log densities, got {arr.shape}")
    if arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    m = float(np.max(arr))
    if m == -math.inf:
        return np.full(arr.size, 1.0 / arr.size, dtype=np.float64)
    scaled = np.exp(arr - m)
    return scaled / float(np.sum(scaled))


def log_densities(
    db: PFVDatabase, q: PFV, rule: SigmaRule | None = None
) -> np.ndarray:
    """``log p(q | v_j)`` for every object of the database (vectorised)."""
    if len(db) == 0:
        return np.zeros(0, dtype=np.float64)
    if rule is None:
        rule = db.sigma_rule
    return log_joint_density_batch(db.mu_matrix, db.sigma_matrix, q, rule)


def identification_posteriors(
    db: PFVDatabase, q: PFV, rule: SigmaRule | None = None
) -> np.ndarray:
    """``P(v_j | q)`` for every object; sums to 1 for a non-empty database."""
    return posteriors_from_log_densities(log_densities(db, q, rule))


def identification_probability(
    db: PFVDatabase, q: PFV, v: PFV, rule: SigmaRule | None = None
) -> float:
    """Posterior of one particular database object ``v``.

    ``v`` is matched by value (mu, sigma, key); raises if it is not stored.
    Convenience wrapper used by examples and tests — query algorithms use
    the vectorised :func:`identification_posteriors`.
    """
    for idx, w in enumerate(db):
        if w == v:
            post = identification_posteriors(db, q, rule)
            return float(post[idx])
    raise KeyError(f"vector {v!r} is not in the database")


def log_total_density(
    db: PFVDatabase, q: PFV, rule: SigmaRule | None = None
) -> float:
    """Log of the Bayes denominator ``sum_w p(q | w)`` (log-sum-exp)."""
    return gaussian.logsumexp(log_densities(db, q, rule))
