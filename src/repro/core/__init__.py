"""Core of the Gaussian uncertainty model (Sections 3 and 4 of the paper).

Submodules
----------
``gaussian``  — univariate Gaussian pdf/cdf primitives (log-space, plus the
                degree-5 polynomial CDF approximation of Section 5.3).
``pfv``       — probabilistic feature vectors (Definition 1).
``joint``     — Lemma 1 joint densities and the sigma combination rules.
``database``  — the in-memory pfv collection all access methods share.
``bayes``     — posterior identification probabilities.
``queries``   — TIQ / k-MLIQ specifications and result records.
``scan``      — the paper's exact sequential-scan algorithms (Section 4).
"""

from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule, combine_sigma, log_joint_density
from repro.core.pfv import PFV, ProbabilisticFeatureVector
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.core.scan import scan_mliq, scan_tiq

__all__ = [
    "PFV",
    "ProbabilisticFeatureVector",
    "PFVDatabase",
    "SigmaRule",
    "combine_sigma",
    "log_joint_density",
    "Match",
    "MLIQuery",
    "ThresholdQuery",
    "QueryStats",
    "scan_mliq",
    "scan_tiq",
]
