"""In-memory database of probabilistic feature vectors.

The :class:`PFVDatabase` is the common substrate below every access method
in this repository: the sequential scan (Section 4 of the paper), the
Gauss-tree (Section 5) and the X-tree baseline (Section 6) all index or
scan a ``PFVDatabase``. It stores the vectors both as a list of
:class:`~repro.core.pfv.ProbabilisticFeatureVector` objects and as two
stacked ``(n, d)`` float64 arrays so that refinement code can run
vectorised.

The database also fixes the :class:`~repro.core.joint.SigmaRule` used for
all probability computations, so that every access method on the same
database produces identical probabilities.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.joint import SigmaRule
from repro.core.pfv import PFV

__all__ = ["PFVDatabase"]


class PFVDatabase:
    """An ordered collection of pfv with uniform dimensionality.

    Parameters
    ----------
    vectors:
        The probabilistic feature vectors. All must share the same number
        of dimensions.
    sigma_rule:
        How query and object uncertainties combine in Lemma 1; see
        :class:`~repro.core.joint.SigmaRule`.
    """

    def __init__(
        self,
        vectors: Iterable[PFV] = (),
        sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
    ) -> None:
        self._vectors: list[PFV] = []
        self._dims: int | None = None
        self._sigma_rule = sigma_rule
        self._mu_cache: np.ndarray | None = None
        self._sigma_cache: np.ndarray | None = None
        for v in vectors:
            self.add(v)

    # -- mutation ----------------------------------------------------------

    def add(self, v: PFV) -> int:
        """Append a pfv; returns its position (stable row id)."""
        if self._dims is None:
            self._dims = v.dims
        elif v.dims != self._dims:
            raise ValueError(
                f"dimension mismatch: database is {self._dims}-d, "
                f"vector is {v.dims}-d"
            )
        self._vectors.append(v)
        self._mu_cache = None
        self._sigma_cache = None
        return len(self._vectors) - 1

    def extend(self, vectors: Iterable[PFV]) -> None:
        """Append many pfv."""
        for v in vectors:
            self.add(v)

    # -- accessors ---------------------------------------------------------

    @property
    def sigma_rule(self) -> SigmaRule:
        """The sigma combination rule every query on this database uses."""
        return self._sigma_rule

    @property
    def dims(self) -> int:
        """Dimensionality ``d``; raises if the database is empty."""
        if self._dims is None:
            raise ValueError("empty database has no dimensionality yet")
        return self._dims

    @property
    def vectors(self) -> Sequence[PFV]:
        """The stored pfv in insertion order (do not mutate)."""
        return self._vectors

    def _build_caches(self) -> None:
        self._mu_cache = np.vstack([v.mu for v in self._vectors])
        self._sigma_cache = np.vstack([v.sigma for v in self._vectors])

    @property
    def mu_matrix(self) -> np.ndarray:
        """All means stacked into an ``(n, d)`` array (cached)."""
        if self._mu_cache is None:
            if not self._vectors:
                raise ValueError("empty database has no mu matrix")
            self._build_caches()
        return self._mu_cache

    @property
    def sigma_matrix(self) -> np.ndarray:
        """All sigmas stacked into an ``(n, d)`` array (cached)."""
        if self._sigma_cache is None:
            if not self._vectors:
                raise ValueError("empty database has no sigma matrix")
            self._build_caches()
        return self._sigma_cache

    def keys(self) -> list[Hashable]:
        """Keys of all stored pfv, in insertion order."""
        return [v.key for v in self._vectors]

    def __len__(self) -> int:
        return len(self._vectors)

    def __iter__(self) -> Iterator[PFV]:
        return iter(self._vectors)

    def __getitem__(self, idx: int) -> PFV:
        return self._vectors[idx]

    def __repr__(self) -> str:
        d = self._dims if self._dims is not None else "?"
        return (
            f"PFVDatabase(n={len(self._vectors)}, d={d}, "
            f"sigma_rule={self._sigma_rule.value})"
        )
