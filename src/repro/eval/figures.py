"""Per-figure experiment definitions of the paper's evaluation (Section 6).

Each function here regenerates the data behind one figure:

* :func:`figure6` — effectiveness (precision/recall) of conventional NN at
  result-set multiples x1..x9 versus MLIQ on pfv, Figure 6(a)/(b);
* :func:`figure7` — efficiency (page accesses, CPU time, overall time,
  each as a percentage of the sequential scan) of Gauss-tree, X-tree on
  rectangular approximations, and sequential scan, for 1-MLIQ, TIQ(0.8)
  and TIQ(0.2), Figure 7(a)/(b).

The datasets are built by :func:`dataset1` (the 10,987x27 colour-histogram
substitute) and :func:`dataset2` (the paper's own synthetic 100,000x10
generator). Both accept a scale factor because building a 100k-object
index in pure Python is slow; EXPERIMENTS.md records the scales used for
the committed numbers, and ``REPRO_FULL_SCALE=1`` runs the paper's sizes.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Sequence

from repro.baselines.nn import knn_euclidean
from repro.core.database import PFVDatabase
from repro.core.queries import MLIQuery
from repro.data.histograms import color_histogram_dataset
from repro.data.synthetic import uniform_pfv_dataset
from repro.data.workload import IdentificationQuery, identification_workload
from repro.engine import connect
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.eval.runner import BatchResult, run_mliq_batch, run_tiq_batch
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.layout import PageLayout
from repro.storage.pagestore import PageStore

__all__ = [
    "dataset1",
    "dataset2",
    "full_scale",
    "Figure6Row",
    "figure6",
    "Figure7Cell",
    "figure7",
    "make_page_store",
]

#: Paper cache budget: "up to 50 MByte as database cache".
CACHE_BYTES = 50 * 1024 * 1024


def full_scale() -> bool:
    """Has the caller requested the paper's full dataset sizes?"""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def dataset1(scale: float | None = None) -> PFVDatabase:
    """Data set 1 substitute: 10,987 x 27-d colour histograms."""
    if scale is None:
        scale = 1.0  # small enough to always run at paper scale
    n = max(500, int(round(10_987 * scale)))
    return color_histogram_dataset(n=n)


def dataset2(scale: float | None = None) -> PFVDatabase:
    """Data set 2: 100,000 x 10-d uniform pfv (paper's own generator)."""
    if scale is None:
        scale = 1.0 if full_scale() else 0.2
    n = max(1_000, int(round(100_000 * scale)))
    return uniform_pfv_dataset(n=n)


def make_page_store(dims: int, cache_bytes: int = CACHE_BYTES) -> PageStore:
    """A page store sized like the paper's testbed (50 MB LRU cache)."""
    layout = PageLayout(dims=dims)
    return PageStore(
        buffer=BufferManager.from_bytes(cache_bytes, layout.page_size),
        cost_model=DiskCostModel(page_size=layout.page_size),
    )


# ---------------------------------------------------------------------------
# Figure 6 — effectiveness
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Figure6Row:
    """One x-axis point of Figure 6: result-set multiple vs scores."""

    multiple: int
    nn: PrecisionRecall
    mliq: PrecisionRecall


def figure6(
    db: PFVDatabase,
    workload: Sequence[IdentificationQuery] | None = None,
    n_queries: int = 100,
    multiples: Sequence[int] = tuple(range(1, 10)),
    seed: int = 7,
) -> list[Figure6Row]:
    """Precision/recall of Euclidean NN vs MLIQ at result multiples x1..x9.

    NN retrieves ``multiple`` nearest means; MLIQ retrieves the
    ``multiple`` most likely objects (the paper keeps MLIQ at the exact
    result size and shows it flat — we sweep it too, which only confirms
    the flatness). Uses the exact sequential-scan MLIQ: Figure 6 is about
    result *quality*, which is identical for every exact access method.
    """
    from repro.core.scan import scan_mliq

    if workload is None:
        workload = identification_workload(db, n_queries, seed=seed)
    truth = [item.true_key for item in workload]
    rows: list[Figure6Row] = []
    # Compute the full ranking once per query, reuse for every multiple.
    max_multiple = max(multiples)
    nn_full = [
        [key for key, _ in knn_euclidean(db, item.q.mu, max_multiple)]
        for item in workload
    ]
    mliq_full = [
        [m.key for m in scan_mliq(db, MLIQuery(item.q, max_multiple))]
        for item in workload
    ]
    for multiple in multiples:
        nn_score = precision_recall([keys[:multiple] for keys in nn_full], truth)
        mliq_score = precision_recall(
            [keys[:multiple] for keys in mliq_full], truth
        )
        rows.append(Figure6Row(multiple=multiple, nn=nn_score, mliq=mliq_score))
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — efficiency
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Figure7Cell:
    """One bar of Figure 7: a method under one query type.

    ``cpu_percent`` and ``overall_percent`` use the 2006 cost model
    (see ``repro.storage.costmodel``); ``wall_cpu_percent`` is the
    measured Python time, reported for transparency.
    """

    method: str
    query_kind: str
    pages_percent: float
    cpu_percent: float
    overall_percent: float
    wall_cpu_percent: float
    batch: BatchResult


def _gausstree_session(db: PFVDatabase, mliq_tolerance: float):
    """Gauss-tree session with its own page store, paper-sized cache.

    With the default ``mliq_tolerance = inf`` both query types run the
    paper's published algorithms verbatim: Figure 4's k-MLIQ (ranking,
    no posterior refinement) and Figure 5's TIQ (candidates decided by
    the denominator bounds, traversal stops as soon as no unexplored
    subtree can qualify — which can keep borderline candidates the exact
    variant would still resolve). The library's stricter defaults
    (``tolerance=1e-9`` / ``0.0``) buy provably exact posteriors/answer
    sets for extra page reads; EXPERIMENTS.md reports both settings.
    """
    return connect(
        db,
        backend="tree",
        page_store=make_page_store(db.dims),
        mliq_tolerance=mliq_tolerance,
        tiq_tolerance=mliq_tolerance,
    )


def figure7(
    db: PFVDatabase,
    workload: Sequence[IdentificationQuery] | None = None,
    n_queries: int = 100,
    thresholds: Sequence[float] = (0.8, 0.2),
    mliq_tolerance: float = math.inf,
    seed: int = 7,
) -> list[Figure7Cell]:
    """Page accesses / CPU / overall time as % of the sequential scan.

    Reproduces the full grid of Figure 7 for one dataset: three access
    methods x (1-MLIQ + one TIQ per threshold). ``mliq_tolerance`` is the
    user-specified posterior accuracy of Section 5.2.2; the default
    ``inf`` benchmarks the paper's Figure-4 k-MLIQ algorithm itself
    (ranking without posterior refinement — Section 5.2.2 is an optional
    extension on top of it). Pass e.g. ``0.01`` for two-digit posteriors;
    EXPERIMENTS.md reports both settings.
    """
    if workload is None:
        workload = identification_workload(db, n_queries, seed=seed)

    methods = {
        "G-Tree": _gausstree_session(db, mliq_tolerance),
        "X-Tree": connect(
            db, backend="xtree", page_store=make_page_store(db.dims)
        ),
        "Seq.File": connect(
            db, backend="seqscan", page_store=make_page_store(db.dims)
        ),
    }

    batches: dict[tuple[str, str], BatchResult] = {}
    for name, method in methods.items():
        batch = run_mliq_batch(method, workload, k=1, method_name=name)
        batches[(name, batch.query_kind)] = batch
        for p_theta in thresholds:
            batch = run_tiq_batch(method, workload, p_theta, method_name=name)
            batches[(name, batch.query_kind)] = batch

    cells: list[Figure7Cell] = []
    query_kinds = ["1-MLIQ"] + [f"TIQ(P={p:g})" for p in thresholds]
    for query_kind in query_kinds:
        base = batches[("Seq.File", query_kind)].totals
        for name in methods:
            b = batches[(name, query_kind)]
            cells.append(
                Figure7Cell(
                    method=name,
                    query_kind=query_kind,
                    pages_percent=_percent(
                        b.totals.pages_accessed, base.pages_accessed
                    ),
                    cpu_percent=_percent(
                        b.totals.modeled_cpu_seconds, base.modeled_cpu_seconds
                    ),
                    overall_percent=_percent(
                        b.totals.modeled_total_seconds,
                        base.modeled_total_seconds,
                    ),
                    wall_cpu_percent=_percent(
                        b.totals.cpu_seconds, base.cpu_seconds
                    ),
                    batch=b,
                )
            )
    return cells


def _percent(value: float, base: float) -> float:
    return 100.0 * value / base if base > 0 else float("nan")
