"""Plain-text tables for the reproduced figures.

Formats the outputs of :mod:`repro.eval.figures` into the same rows/series
the paper reports, so benchmark logs and EXPERIMENTS.md can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Sequence

from repro.eval.figures import Figure6Row, Figure7Cell

__all__ = ["format_table", "format_figure6", "format_figure7"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_figure6(rows: Sequence[Figure6Row], title: str = "Figure 6") -> str:
    """Precision/recall sweep table, percentages as in the paper."""
    table_rows = []
    for row in rows:
        nn_p, nn_r = row.nn.as_percent()
        ml_p, ml_r = row.mliq.as_percent()
        table_rows.append([f"x{row.multiple}", nn_p, nn_r, ml_p, ml_r])
    table = format_table(
        ["size", "NN prec%", "NN rec%", "MLIQ prec%", "MLIQ rec%"], table_rows
    )
    return f"{title}\n{table}"


def format_figure7(cells: Sequence[Figure7Cell], title: str = "Figure 7") -> str:
    """Efficiency grid, all values as % of the sequential scan.

    ``cpu`` and ``overall`` use the 2006 cost model; ``wall cpu`` is the
    measured Python time (see DESIGN.md on why both are shown).
    """
    table_rows = [
        [
            cell.query_kind,
            cell.method,
            cell.pages_percent,
            cell.cpu_percent,
            cell.overall_percent,
            cell.wall_cpu_percent,
        ]
        for cell in cells
    ]
    table = format_table(
        ["query", "method", "pages %", "cpu %", "overall %", "wall cpu %"],
        table_rows,
    )
    return f"{title} (100% = Seq.File per query type)\n{table}"
