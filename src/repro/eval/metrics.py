"""Precision and recall for identification workloads (Figure 6).

Each query in an identification workload has exactly one correct answer
(the re-observed object's key). Over a batch of queries with result sets
of size ``r``:

* **recall** — fraction of queries whose result set contains the correct
  key ("the percentage of queries that retrieved the correct object");
* **precision** — correct retrievals over all retrievals, which with one
  relevant object per query is ``recall / r``.

At ``r = 1`` the two coincide, matching the paper's statement that for NN
queries and MLIQ "both measures are the percentage of queries that
retrieved the correct object"; for the enlarged result sets of Figure 6
(multiples x1..x9) recall can only grow while precision decays ~ 1/r.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Sequence

__all__ = ["PrecisionRecall", "precision_recall"]


@dataclasses.dataclass(frozen=True)
class PrecisionRecall:
    """Aggregated effectiveness of a batch of identification queries."""

    precision: float
    recall: float
    hits: int
    queries: int
    result_size: int

    def as_percent(self) -> tuple[float, float]:
        return 100.0 * self.precision, 100.0 * self.recall


def precision_recall(
    retrieved: Sequence[Sequence[Hashable]],
    truth: Sequence[Hashable],
) -> PrecisionRecall:
    """Score per-query result-key lists against the true keys.

    ``retrieved[i]`` is the (ordered or not) list of keys returned for
    query ``i``; result sets may be ragged (e.g. the X-tree filter can
    return fewer candidates than requested) — precision then uses the
    actual number of retrieved items.
    """
    if len(retrieved) != len(truth):
        raise ValueError(
            f"{len(retrieved)} result sets for {len(truth)} ground truths"
        )
    if not truth:
        raise ValueError("need at least one query")
    hits = 0
    total_retrieved = 0
    max_size = 0
    for keys, true_key in zip(retrieved, truth):
        keys = list(keys)
        total_retrieved += len(keys)
        max_size = max(max_size, len(keys))
        if true_key in keys:
            hits += 1
    n = len(truth)
    precision = hits / total_retrieved if total_retrieved else 0.0
    recall = hits / n
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        hits=hits,
        queries=n,
        result_size=max_size,
    )
