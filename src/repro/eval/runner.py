"""Experiment runner: batches of queries against any session/backend.

Since the unified engine API landed, the runner is a thin layer over
:class:`repro.engine.Session`: every workload item is executed through
``Session.execute`` (one spec at a time — the paper's evaluation
protocol charges each query its own page accesses, so the shared-pass
batch entry points are deliberately *not* used here) and the per-query
:class:`~repro.core.queries.QueryStats` are aggregated, cold-starting
the buffer before each batch as the paper's experiments do.

``run_mliq_batch`` / ``run_tiq_batch`` accept a ready
:class:`~repro.engine.Session` or any legacy access-method object
(GaussTree, SequentialScanIndex, XTreePFVIndex, or anything with
``mliq``/``tiq`` methods), which is adopted via
:func:`repro.engine.session_for`.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Protocol, Sequence

from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.data.workload import IdentificationQuery
from repro.engine import MLIQ, TIQ, Session, session_for
from repro.eval.metrics import PrecisionRecall, precision_recall

__all__ = ["AccessMethod", "BatchResult", "run_mliq_batch", "run_tiq_batch"]


class AccessMethod(Protocol):
    """Deprecated 1.x typing alias: the pre-engine per-method protocol.

    Kept only so existing annotations keep importing (the same shim
    policy as the ``mliq``/``tiq`` entry points; removal in 2.0).
    Objects of this shape are adopted by the runner — and by
    :func:`repro.engine.session_for` — automatically; new backends
    should implement :class:`repro.engine.Backend` instead.
    """

    def mliq(self, query: MLIQuery) -> tuple[list[Match], QueryStats]: ...

    def tiq(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]: ...


@dataclasses.dataclass
class BatchResult:
    """Aggregate of one workload batch against one access method."""

    method: str
    query_kind: str
    totals: QueryStats
    per_query_keys: list[list[Hashable]]
    effectiveness: PrecisionRecall | None

    @property
    def queries(self) -> int:
        return len(self.per_query_keys)

    def mean_pages(self) -> float:
        return self.totals.pages_accessed / max(1, self.queries)

    def summary(self) -> dict[str, float]:
        """Flat numbers for reports and benchmark ``extra_info``."""
        out = {
            "queries": float(self.queries),
            "pages_accessed": float(self.totals.pages_accessed),
            "page_faults": float(self.totals.page_faults),
            "objects_refined": float(self.totals.objects_refined),
            "cpu_seconds": self.totals.cpu_seconds,
            "io_seconds": self.totals.io_seconds,
            "total_seconds": self.totals.total_seconds,
        }
        if self.effectiveness is not None:
            out["precision"] = self.effectiveness.precision
            out["recall"] = self.effectiveness.recall
        return out


def _run_batch(
    method,
    method_name: str,
    query_kind: str,
    workload: Sequence[IdentificationQuery],
    make_spec,
    score: bool,
) -> BatchResult:
    if not workload:
        raise ValueError("empty workload")
    session: Session = session_for(method)
    session.cold_start()
    totals = QueryStats()
    per_query_keys: list[list[Hashable]] = []
    for item in workload:
        result = session.execute(make_spec(item))
        totals.merge(result.stats)
        per_query_keys.append([m.key for m in result.matches])
    effectiveness = None
    if score:
        effectiveness = precision_recall(
            per_query_keys, [item.true_key for item in workload]
        )
    return BatchResult(
        method=method_name or session.backend_name,
        query_kind=query_kind,
        totals=totals,
        per_query_keys=per_query_keys,
        effectiveness=effectiveness,
    )


def run_mliq_batch(
    method,
    workload: Sequence[IdentificationQuery],
    k: int = 1,
    method_name: str = "",
    score: bool = True,
) -> BatchResult:
    """Run a k-MLIQ over every workload query, cold buffer at the start."""
    return _run_batch(
        method,
        method_name or _default_name(method),
        f"{k}-MLIQ",
        workload,
        lambda item: MLIQ(item.q, k),
        score,
    )


def run_tiq_batch(
    method,
    workload: Sequence[IdentificationQuery],
    p_theta: float,
    method_name: str = "",
    score: bool = True,
) -> BatchResult:
    """Run a TIQ over every workload query, cold buffer at the start."""
    return _run_batch(
        method,
        method_name or _default_name(method),
        f"TIQ(P={p_theta:g})",
        workload,
        lambda item: TIQ(item.q, p_theta),
        score,
    )


def _default_name(method) -> str:
    if isinstance(method, Session):
        return method.backend_name
    return type(method).__name__
