"""Experiment runner: batches of queries against any access method.

The runner abstracts over the three competitors of Figure 7 (Gauss-tree,
X-tree filter+refine, sequential scan) behind a minimal protocol — an
object with ``mliq(query) -> (matches, stats)`` and
``tiq(query) -> (matches, stats)`` — and aggregates per-query
:class:`~repro.core.queries.QueryStats` over a workload, cold-starting the
buffer before each batch as the paper's experiments do.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Protocol, Sequence

from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.data.workload import IdentificationQuery
from repro.eval.metrics import PrecisionRecall, precision_recall

__all__ = ["AccessMethod", "BatchResult", "run_mliq_batch", "run_tiq_batch"]


class AccessMethod(Protocol):
    """Anything that answers both identification query types."""

    def mliq(self, query: MLIQuery) -> tuple[list[Match], QueryStats]: ...

    def tiq(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]: ...


@dataclasses.dataclass
class BatchResult:
    """Aggregate of one workload batch against one access method."""

    method: str
    query_kind: str
    totals: QueryStats
    per_query_keys: list[list[Hashable]]
    effectiveness: PrecisionRecall | None

    @property
    def queries(self) -> int:
        return len(self.per_query_keys)

    def mean_pages(self) -> float:
        return self.totals.pages_accessed / max(1, self.queries)

    def summary(self) -> dict[str, float]:
        """Flat numbers for reports and benchmark ``extra_info``."""
        out = {
            "queries": float(self.queries),
            "pages_accessed": float(self.totals.pages_accessed),
            "page_faults": float(self.totals.page_faults),
            "objects_refined": float(self.totals.objects_refined),
            "cpu_seconds": self.totals.cpu_seconds,
            "io_seconds": self.totals.io_seconds,
            "total_seconds": self.totals.total_seconds,
        }
        if self.effectiveness is not None:
            out["precision"] = self.effectiveness.precision
            out["recall"] = self.effectiveness.recall
        return out


def _cold_start(method: AccessMethod) -> None:
    store = getattr(method, "store", None)
    if store is not None:
        store.cold_start()


def _run_batch(
    method: AccessMethod,
    method_name: str,
    query_kind: str,
    workload: Sequence[IdentificationQuery],
    execute: Callable[[IdentificationQuery], tuple[list[Match], QueryStats]],
    score: bool,
) -> BatchResult:
    if not workload:
        raise ValueError("empty workload")
    _cold_start(method)
    totals = QueryStats()
    per_query_keys: list[list[Hashable]] = []
    for item in workload:
        matches, stats = execute(item)
        totals.merge(stats)
        per_query_keys.append([m.key for m in matches])
    effectiveness = None
    if score:
        effectiveness = precision_recall(
            per_query_keys, [item.true_key for item in workload]
        )
    return BatchResult(
        method=method_name,
        query_kind=query_kind,
        totals=totals,
        per_query_keys=per_query_keys,
        effectiveness=effectiveness,
    )


def run_mliq_batch(
    method: AccessMethod,
    workload: Sequence[IdentificationQuery],
    k: int = 1,
    method_name: str = "",
    score: bool = True,
) -> BatchResult:
    """Run a k-MLIQ over every workload query, cold buffer at the start."""
    return _run_batch(
        method,
        method_name or type(method).__name__,
        f"{k}-MLIQ",
        workload,
        lambda item: method.mliq(MLIQuery(item.q, k)),
        score,
    )


def run_tiq_batch(
    method: AccessMethod,
    workload: Sequence[IdentificationQuery],
    p_theta: float,
    method_name: str = "",
    score: bool = True,
) -> BatchResult:
    """Run a TIQ over every workload query, cold buffer at the start."""
    return _run_batch(
        method,
        method_name or type(method).__name__,
        f"TIQ(P={p_theta:g})",
        workload,
        lambda item: method.tiq(ThresholdQuery(item.q, p_theta)),
        score,
    )
