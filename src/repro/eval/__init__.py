"""Evaluation harness regenerating the paper's figures (Section 6).

``metrics``  — precision/recall for identification workloads.
``runner``   — query-batch execution with storage accounting.
``figures``  — per-figure experiment definitions (Figures 6 and 7).
``report``   — ASCII tables mirroring the paper's rows/series.
"""

from repro.eval.figures import (
    Figure6Row,
    Figure7Cell,
    dataset1,
    dataset2,
    figure6,
    figure7,
)
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.eval.report import format_figure6, format_figure7, format_table
from repro.eval.runner import BatchResult, run_mliq_batch, run_tiq_batch

__all__ = [
    "Figure6Row",
    "Figure7Cell",
    "dataset1",
    "dataset2",
    "figure6",
    "figure7",
    "PrecisionRecall",
    "precision_recall",
    "format_figure6",
    "format_figure7",
    "format_table",
    "BatchResult",
    "run_mliq_batch",
    "run_tiq_batch",
]
