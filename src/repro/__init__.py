"""Reproduction of "The Gauss-Tree: Efficient Object Identification in
Databases of Probabilistic Feature Vectors" (Boehm, Pryakhin, Schubert;
ICDE 2006).

Public API overview
-------------------
Model (Sections 3-4):
    :class:`repro.core.PFV` — probabilistic feature vectors,
    :class:`repro.core.PFVDatabase`, :class:`repro.core.SigmaRule`,
    :func:`repro.core.scan_mliq` / :func:`repro.core.scan_tiq` — the exact
    sequential-scan reference algorithms.

Index (Section 5):
    :class:`repro.gausstree.GaussTree` with ``insert`` / ``delete`` /
    ``mliq`` / ``tiq``, the batch APIs ``mliq_many`` / ``tiq_many``,
    disk persistence via ``save`` / ``open`` (single-file index, lazy
    page-decoded nodes) and :func:`repro.gausstree.bulk_load`.

Unified query engine (the recommended surface):
    :func:`repro.connect` — open a :class:`repro.Session` over a
    database, a list of pfv, or a saved index file, through any
    registered backend (``tree``, ``disk``, ``seqscan``, ``xtree``);
    execute the composable specs :class:`repro.MLIQ`,
    :class:`repro.TIQ`, :class:`repro.RankQuery`,
    :class:`repro.ConsensusTopK` and :class:`repro.ExpectedRank`;
    ``explain()`` describes the plan. See README "Query API" for the migration table
    from the per-method entry points (now deprecation shims).

Sharded serving (scale-out):
    :mod:`repro.cluster` — ``repro shard-build`` partitions a database
    into per-shard indexes behind a manifest; ``connect(manifest,
    backend="sharded", pool="process")`` fans batches out to shard
    sessions (serial or process pool) and merges globally renormalised
    posteriors; ``repro serve`` exposes any session as a concurrent
    JSON HTTP endpoint. See README "Sharded serving".

Baselines (Section 6):
    :class:`repro.baselines.XTreePFVIndex`,
    :class:`repro.baselines.SequentialScanIndex`,
    :func:`repro.baselines.knn_euclidean`.

Data / evaluation:
    :mod:`repro.data` (datasets and ground-truthed workloads) and
    :mod:`repro.eval` (the figure-by-figure experiment harness).

See ``examples/quickstart.py`` for a five-minute tour and DESIGN.md for
the full system inventory.
"""

from repro.core import (
    PFV,
    Match,
    MLIQuery,
    PFVDatabase,
    ProbabilisticFeatureVector,
    QueryStats,
    SigmaRule,
    ThresholdQuery,
    scan_mliq,
    scan_tiq,
)
from repro.engine import (
    MLIQ,
    TIQ,
    ConsensusTopK,
    Delete,
    ExpectedRank,
    Insert,
    RankQuery,
    ResultSet,
    Session,
    connect,
    session_for,
)
from repro.gausstree import GaussTree, bulk_load

# Importing the cluster package registers the "sharded" backend with the
# engine registry, so connect(..., backend="sharded") works out of the
# box (the subsystem itself is stdlib-only on top of the engine).
import repro.cluster  # noqa: E402,F401  (registration side effect)

__version__ = "1.9.0"

__all__ = [
    "PFV",
    "ProbabilisticFeatureVector",
    "PFVDatabase",
    "SigmaRule",
    "Match",
    "MLIQuery",
    "ThresholdQuery",
    "QueryStats",
    "scan_mliq",
    "scan_tiq",
    "GaussTree",
    "bulk_load",
    "connect",
    "Session",
    "session_for",
    "MLIQ",
    "TIQ",
    "RankQuery",
    "ConsensusTopK",
    "ExpectedRank",
    "Insert",
    "Delete",
    "ResultSet",
    "__version__",
]
