"""Command-line experiment runner.

Regenerates the paper's figures without writing any Python:

    python -m repro figure6 --dataset 1 --queries 50
    python -m repro figure7 --dataset 2 --queries 25 --scale 0.1
    python -m repro example

``figure6``/``figure7`` print the same tables the paper reports (and the
benchmarks commit); ``example`` runs the Figure-1 worked example. Scales
below 1.0 shrink the datasets proportionally for quick looks.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.data.workload import identification_workload
from repro.eval.figures import dataset1, dataset2, figure6, figure7
from repro.eval.report import format_figure6, format_figure7

__all__ = ["main"]


def _build_dataset(which: int, scale: float | None):
    if which == 1:
        return dataset1(scale=scale)
    if which == 2:
        return dataset2(scale=scale)
    raise SystemExit(f"unknown dataset {which}; the paper has 1 and 2")


def _cmd_figure6(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    rows = figure6(db, workload)
    title = (
        f"Figure 6({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure6(rows, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_figure7(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    cells = figure7(db, workload)
    title = (
        f"Figure 7({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure7(cells, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_example(_args: argparse.Namespace) -> None:
    from repro import MLIQuery, PFV, PFVDatabase, scan_mliq

    db = PFVDatabase(
        [
            PFV([4.42, 1.50], [0.21, 0.21], key="O1"),
            PFV([1.18, 1.46], [1.34, 1.55], key="O2"),
            PFV([3.82, 1.20], [1.22, 0.37], key="O3"),
        ]
    )
    query = PFV([3.59, 2.46], [0.23, 1.58])
    print("Figure 1 worked example - posteriors P(v|q):")
    for m in scan_mliq(db, MLIQuery(query, 3)):
        print(f"  {m.key}: {m.probability:.1%}")
    print("(paper: O3 77%, O2 13%, O1 10%; Euclidean NN would pick O1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gauss-tree reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, help_text in (
        ("figure6", _cmd_figure6, "effectiveness: NN vs MLIQ precision/recall"),
        ("figure7", _cmd_figure7, "efficiency: pages/CPU/overall vs the scan"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
        p.add_argument("--queries", type=int, default=50)
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="dataset size multiplier (default: paper size for DS1, "
            "0.2 for DS2 unless REPRO_FULL_SCALE=1)",
        )
        p.add_argument("--seed", type=int, default=7)
        p.set_defaults(func=func)

    p = sub.add_parser("example", help="the paper's Figure 1 worked example")
    p.set_defaults(func=_cmd_example)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
