"""Command-line experiment runner and index tool.

Regenerates the paper's figures without writing any Python:

    python -m repro figure6 --dataset 1 --queries 50
    python -m repro figure7 --dataset 2 --queries 25 --scale 0.1
    python -m repro example

``figure6``/``figure7`` print the same tables the paper reports (and the
benchmarks commit); ``example`` runs the Figure-1 worked example. Scales
below 1.0 shrink the datasets proportionally for quick looks.

The index lifecycle commands exercise the real storage path: ``build``
bulk-loads one of the paper's datasets into a Gauss-tree and saves it as
a single index file, ``query`` connects a unified-engine session to that
file from a *fresh process* and answers MLIQ/TIQ/Rank batches through
``Session.execute_many`` — on any registered backend (``--backend=disk``
serves the saved tree's lazily decoded pages; ``tree``, ``seqscan`` and
``xtree`` materialize the stored objects first, so the same file can be
queried through every access method) — and ``insert`` opens the index
*writable* and grows it with durable, WAL-committed inserts:

    python -m repro build ds1.gauss --dataset 1 --scale 0.2
    python -m repro query ds1.gauss --k 5 --queries 100
    python -m repro query ds1.gauss --theta 0.3 --backend seqscan
    python -m repro query ds1.gauss --rank 10 --min-mass 0.95 --explain
    python -m repro insert ds1.gauss --count 500

``insert`` doubles as the crash-recovery demonstrator: kill the process
at any point (or pass ``--exit-after N`` for a deterministic mid-workload
``kill -9`` equivalent) and the next ``query``/``insert`` replays the
write-ahead log — every insert that completed survives.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.data.workload import identification_workload
from repro.eval.figures import dataset1, dataset2, figure6, figure7
from repro.eval.report import format_figure6, format_figure7

__all__ = ["main"]


def _build_dataset(which: int, scale: float | None):
    if which == 1:
        return dataset1(scale=scale)
    if which == 2:
        return dataset2(scale=scale)
    raise SystemExit(f"unknown dataset {which}; the paper has 1 and 2")


def _cmd_figure6(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    rows = figure6(db, workload)
    title = (
        f"Figure 6({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure6(rows, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_figure7(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    cells = figure7(db, workload)
    title = (
        f"Figure 7({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure7(cells, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_example(_args: argparse.Namespace) -> None:
    from repro import MLIQuery, PFV, PFVDatabase, scan_mliq

    db = PFVDatabase(
        [
            PFV([4.42, 1.50], [0.21, 0.21], key="O1"),
            PFV([1.18, 1.46], [1.34, 1.55], key="O2"),
            PFV([3.82, 1.20], [1.22, 0.37], key="O3"),
        ]
    )
    query = PFV([3.59, 2.46], [0.23, 1.58])
    print("Figure 1 worked example - posteriors P(v|q):")
    for m in scan_mliq(db, MLIQuery(query, 3)):
        print(f"  {m.key}: {m.probability:.1%}")
    print("(paper: O3 77%, O2 13%, O1 10%; Euclidean NN would pick O1)")


def _cmd_build(args: argparse.Namespace) -> None:
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout

    db = _build_dataset(args.dataset, args.scale)
    layout = PageLayout(dims=db.dims, page_size=args.page_size)
    started = time.perf_counter()
    tree = bulk_load(db.vectors, layout=layout, sigma_rule=db.sigma_rule)
    built = time.perf_counter()
    tree.save(args.index)
    saved = time.perf_counter()
    print(
        f"built {tree!r} from data set {args.dataset} "
        f"in {built - started:.1f}s, saved to {args.index} "
        f"in {saved - built:.1f}s"
    )


def _cmd_query(args: argparse.Namespace) -> None:
    from repro.engine import MLIQ, TIQ, RankQuery, connect

    modes = sum(x is not None for x in (args.k, args.theta, args.rank))
    if modes != 1:
        raise SystemExit(
            "pass exactly one of --k (MLIQ), --theta (TIQ) or --rank"
        )
    if args.min_mass is not None and args.rank is None:
        raise SystemExit("--min-mass only applies to --rank queries")
    if args.queries < 1:
        raise SystemExit("--queries must be at least 1")
    started = time.perf_counter()
    session = connect(args.index, backend=args.backend)
    opened = time.perf_counter()
    print(f"connected {session!r} to {args.index} in {opened - started:.2f}s")
    # Re-observation workload over the stored objects, like the paper's
    # evaluation protocol (materializes the index once to sample from it).
    db = session.database()
    workload = identification_workload(db, args.queries, seed=args.seed)
    sampled = time.perf_counter()
    try:
        if args.k is not None:
            specs = [MLIQ(w.q, args.k) for w in workload]
        elif args.theta is not None:
            specs = [TIQ(w.q, args.theta) for w in workload]
        else:
            specs = [
                RankQuery(w.q, args.rank, min_mass=args.min_mass)
                for w in workload
            ]
    except ValueError as exc:  # spec validation: bad --k/--theta/--min-mass
        raise SystemExit(str(exc)) from None
    if args.explain:
        print(session.explain(specs).describe())
    result = session.execute_many(specs)
    finished = time.perf_counter()
    stats = result.stats
    hits = sum(
        1
        for w, matches in zip(workload, result)
        if matches and matches[0].key == w.true_key
    )
    print(
        f"{len(specs)} queries in {finished - sampled:.2f}s "
        f"({(finished - sampled) / len(specs) * 1e3:.1f} ms/query, "
        f"backend={result.backend}): {stats.pages_accessed} page accesses, "
        f"{stats.page_faults} faults, top-1 hit rate "
        f"{hits / len(specs):.0%}"
    )
    for w, matches in list(zip(workload, result))[: args.show]:
        top = ", ".join(
            f"{m.key!r}:{m.probability:.1%}" for m in matches[:3]
        )
        print(f"  true={w.true_key!r} -> [{top}]")
    session.close()


def _cmd_insert(args: argparse.Namespace) -> None:
    import os

    import numpy as np

    from repro.core.pfv import PFV
    from repro.gausstree.tree import GaussTree

    if args.count < 1:
        raise SystemExit("--count must be at least 1")
    started = time.perf_counter()
    tree = GaussTree.open(
        args.index,
        writable=True,
        fsync=not args.no_fsync,
        auto_checkpoint_bytes=args.auto_checkpoint_bytes,
    )
    opened = time.perf_counter()
    print(
        f"opened {tree!r} writable from {args.index} "
        f"in {opened - started:.2f}s (WAL recovery included if any)"
    )
    rng = np.random.default_rng(args.seed)
    rect = tree.root.rect
    if rect is not None:
        mu_lo, mu_hi = rect.mu_lo, rect.mu_hi
        sigma_lo = np.maximum(rect.sigma_lo, 1e-3)
        sigma_hi = np.maximum(rect.sigma_hi, sigma_lo)
    else:  # empty index: fall back to the unit box
        mu_lo, mu_hi = np.zeros(tree.dims), np.ones(tree.dims)
        sigma_lo, sigma_hi = np.full(tree.dims, 0.05), np.full(tree.dims, 0.4)
    inserted = 0
    insert_started = time.perf_counter()
    # Number keys from the current object count so repeated runs (and
    # runs resumed after a crash) never mint duplicate identities.
    key_base = len(tree)
    for i in range(args.count):
        v = PFV(
            rng.uniform(mu_lo, mu_hi),
            rng.uniform(sigma_lo, sigma_hi),
            key=("ins", key_base + i),
        )
        tree.insert(v)
        inserted += 1
        if args.exit_after is not None and inserted >= args.exit_after:
            # Simulated kill -9: no checkpoint, no close, no cleanup.
            # The WAL alone carries everything committed so far.
            print(
                f"exiting hard after {inserted} durable inserts "
                "(recovery will replay the WAL on the next open)",
                flush=True,
            )
            os._exit(1)
    elapsed = time.perf_counter() - insert_started
    print(
        f"{inserted} inserts in {elapsed:.2f}s "
        f"({inserted / elapsed:.0f} inserts/s, "
        f"fsync={'off' if args.no_fsync else 'per-commit'}), "
        f"index now holds {len(tree)} objects"
    )
    if args.no_flush:
        tree.close(checkpoint=False)
        print("closed without checkpoint: state rides in the WAL")
    else:
        flush_started = time.perf_counter()
        tree.close()
        print(f"checkpointed in {time.perf_counter() - flush_started:.2f}s")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gauss-tree reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, help_text in (
        ("figure6", _cmd_figure6, "effectiveness: NN vs MLIQ precision/recall"),
        ("figure7", _cmd_figure7, "efficiency: pages/CPU/overall vs the scan"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
        p.add_argument("--queries", type=int, default=50)
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="dataset size multiplier (default: paper size for DS1, "
            "0.2 for DS2 unless REPRO_FULL_SCALE=1)",
        )
        p.add_argument("--seed", type=int, default=7)
        p.set_defaults(func=func)

    p = sub.add_parser("example", help="the paper's Figure 1 worked example")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser(
        "build", help="bulk-load a dataset and save the index to disk"
    )
    p.add_argument("index", help="output index file (e.g. ds1.gauss)")
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset size multiplier (same semantics as figure6/figure7)",
    )
    p.add_argument(
        "--page-size",
        type=int,
        default=8192,
        help="bytes per index page (default: 8192)",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser(
        "insert",
        help="open an index writable and add WAL-durable random objects",
    )
    p.add_argument("index", help="index file written by `build` (format v2)")
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip the per-commit fsync (faster; bounded loss on power cut)",
    )
    p.add_argument(
        "--no-flush",
        action="store_true",
        help="close without checkpointing; the next open replays the WAL",
    )
    p.add_argument(
        "--auto-checkpoint-bytes",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint automatically whenever the WAL reaches N bytes "
        "(bounds recovery replay; default: only flush on close)",
    )
    p.add_argument(
        "--exit-after",
        type=int,
        default=None,
        metavar="N",
        help="os._exit(1) after N inserts - a deterministic kill -9 "
        "for crash-recovery demos and CI",
    )
    p.set_defaults(func=_cmd_insert)

    p = sub.add_parser(
        "query",
        help="open a saved index and answer an MLIQ/TIQ/Rank batch "
        "through the unified session API",
    )
    p.add_argument("index", help="index file written by `build`")
    p.add_argument(
        "--backend",
        default="disk",
        choices=("disk", "tree", "seqscan", "xtree"),
        help="access method serving the batch (default: disk — the "
        "saved Gauss-tree itself; tree/seqscan/xtree materialize the "
        "stored objects first)",
    )
    p.add_argument(
        "--k", type=int, default=None, help="answer k-MLIQs with this k"
    )
    p.add_argument(
        "--theta",
        type=float,
        default=None,
        help="answer TIQs with this probability threshold",
    )
    p.add_argument(
        "--rank",
        type=int,
        default=None,
        help="answer probabilistic top-k RankQueries with this k",
    )
    p.add_argument(
        "--min-mass",
        type=float,
        default=None,
        help="truncate --rank answers at this cumulative posterior mass",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the session's query plan before executing",
    )
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--show",
        type=int,
        default=5,
        help="print the top matches of this many queries (default: 5)",
    )
    p.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
