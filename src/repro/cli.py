"""Command-line experiment runner and index tool.

Regenerates the paper's figures without writing any Python:

    python -m repro figure6 --dataset 1 --queries 50
    python -m repro figure7 --dataset 2 --queries 25 --scale 0.1
    python -m repro example

``figure6``/``figure7`` print the same tables the paper reports (and the
benchmarks commit); ``example`` runs the Figure-1 worked example. Scales
below 1.0 shrink the datasets proportionally for quick looks.

The index lifecycle commands exercise the real storage path: ``build``
bulk-loads one of the paper's datasets into a Gauss-tree and saves it as
a single index file, ``query`` connects a unified-engine session to that
file from a *fresh process* and answers MLIQ/TIQ/Rank batches through
``Session.execute_many`` — on any registered backend (``--backend=disk``
serves the saved tree's lazily decoded pages; ``tree``, ``seqscan`` and
``xtree`` materialize the stored objects first, so the same file can be
queried through every access method) — and ``insert`` opens the index
*writable* and grows it with durable, WAL-committed inserts:

    python -m repro build ds1.gauss --dataset 1 --scale 0.2
    python -m repro query ds1.gauss --k 5 --queries 100
    python -m repro query ds1.gauss --theta 0.3 --backend seqscan
    python -m repro query ds1.gauss --rank 10 --min-mass 0.95 --explain
    python -m repro insert ds1.gauss --count 500

``insert`` doubles as the crash-recovery demonstrator: kill the process
at any point (or pass ``--exit-after N`` for a deterministic mid-workload
``kill -9`` equivalent) and the next ``query``/``insert`` replays the
write-ahead log — every insert that completed survives.

The sharded serving commands (see README "Sharded serving"):

    python -m repro shard-build cluster/ds1 --dataset 1 --shards 4
    python -m repro query cluster/ds1.shards.json --backend sharded \
        --k 5 --pool process --workers 4
    python -m repro serve cluster/ds1.shards.json --port 8631

``shard-build`` partitions a dataset deterministically (hash or
round-robin), saves one Gauss-tree index per shard and writes the
``.shards.json`` manifest (``--replicas K`` clones each shard for read
routing and failover); ``query --backend sharded`` fans batches out
to the shards and merges globally renormalised posteriors; ``serve``
exposes any index (or manifest) as a concurrent JSON HTTP endpoint;
``reshard MANIFEST --shards N`` rebuilds the deployment at a new shard
count and cuts over atomically while queries keep flowing.
``query --input workload.jsonl`` (or ``--input -`` for stdin) replays a
JSONL spec file — the same wire format the server accepts — instead of
generating a re-observation workload.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.data.workload import identification_workload
from repro.eval.figures import dataset1, dataset2, figure6, figure7
from repro.eval.report import format_figure6, format_figure7

__all__ = ["main"]


def _build_dataset(which: int, scale: float | None):
    if which == 1:
        return dataset1(scale=scale)
    if which == 2:
        return dataset2(scale=scale)
    raise SystemExit(f"unknown dataset {which}; the paper has 1 and 2")


def _cmd_figure6(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    rows = figure6(db, workload)
    title = (
        f"Figure 6({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure6(rows, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_figure7(args: argparse.Namespace) -> None:
    db = _build_dataset(args.dataset, args.scale)
    workload = identification_workload(db, args.queries, seed=args.seed)
    started = time.perf_counter()
    cells = figure7(db, workload)
    title = (
        f"Figure 7({'a' if args.dataset == 1 else 'b'}) - data set "
        f"{args.dataset} (n={len(db)}, {args.queries} queries)"
    )
    print(format_figure7(cells, title))
    print(f"[{time.perf_counter() - started:.1f}s]")


def _cmd_example(_args: argparse.Namespace) -> None:
    from repro import MLIQuery, PFV, PFVDatabase, scan_mliq

    db = PFVDatabase(
        [
            PFV([4.42, 1.50], [0.21, 0.21], key="O1"),
            PFV([1.18, 1.46], [1.34, 1.55], key="O2"),
            PFV([3.82, 1.20], [1.22, 0.37], key="O3"),
        ]
    )
    query = PFV([3.59, 2.46], [0.23, 1.58])
    print("Figure 1 worked example - posteriors P(v|q):")
    for m in scan_mliq(db, MLIQuery(query, 3)):
        print(f"  {m.key}: {m.probability:.1%}")
    print("(paper: O3 77%, O2 13%, O1 10%; Euclidean NN would pick O1)")


def _cmd_build(args: argparse.Namespace) -> None:
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout

    db = _build_dataset(args.dataset, args.scale)
    layout = PageLayout(dims=db.dims, page_size=args.page_size)
    started = time.perf_counter()
    tree = bulk_load(db.vectors, layout=layout, sigma_rule=db.sigma_rule)
    built = time.perf_counter()
    tree.save(args.index)
    saved = time.perf_counter()
    print(
        f"built {tree!r} from data set {args.dataset} "
        f"in {built - started:.1f}s, saved to {args.index} "
        f"in {saved - built:.1f}s"
    )


def _backend_options(
    args: argparse.Namespace, backend: str, context: str
) -> dict:
    """connect() options from the --pool/--workers flags; rejects them
    for non-sharded backends (``context`` names the right fix)."""
    options: dict = {}
    if getattr(args, "pool", None) is not None:
        options["pool"] = args.pool
    if getattr(args, "workers", None) is not None:
        options["workers"] = args.workers
    if options and backend != "sharded":
        raise SystemExit(f"--pool/--workers only apply to {context}")
    return options


def _load_input_specs(path: str):
    """Parse a JSONL workload file (``-`` reads stdin)."""
    from repro.cluster.wire import WireError, load_jsonl

    try:
        if path == "-":
            specs = load_jsonl(sys.stdin)
        else:
            with open(path, encoding="utf-8") as f:
                specs = load_jsonl(f)
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from None
    except WireError as exc:
        raise SystemExit(f"bad workload {path}: {exc}") from None
    if not specs:
        raise SystemExit(f"workload {path} holds no queries")
    return specs


def _cmd_query(args: argparse.Namespace) -> None:
    from repro.engine import (
        MLIQ,
        TIQ,
        ConsensusTopK,
        ExpectedRank,
        RankQuery,
        connect,
    )

    modes = sum(
        x is not None
        for x in (args.k, args.theta, args.rank, args.consensus, args.erank)
    )
    if args.input is not None:
        if modes:
            raise SystemExit(
                "--input replays a spec file; drop "
                "--k/--theta/--rank/--consensus/--erank "
                "(each line carries its own kind and parameters)"
            )
    elif modes != 1:
        raise SystemExit(
            "pass exactly one of --k (MLIQ), --theta (TIQ), --rank, "
            "--consensus or --erank "
            "(or --input FILE for a JSONL workload)"
        )
    if args.min_mass is not None and args.rank is None:
        raise SystemExit("--min-mass only applies to --rank queries")
    if args.queries < 1:
        raise SystemExit("--queries must be at least 1")
    started = time.perf_counter()
    session = connect(
        args.index,
        backend=args.backend,
        **_backend_options(args, args.backend, "--backend sharded"),
    )
    opened = time.perf_counter()
    print(f"connected {session!r} to {args.index} in {opened - started:.2f}s")
    workload = None
    if args.input is not None:
        specs = _load_input_specs(args.input)
    else:
        # Re-observation workload over the stored objects, like the
        # paper's evaluation protocol (materializes the index once to
        # sample from it).
        db = session.database()
        workload = identification_workload(db, args.queries, seed=args.seed)
        try:
            if args.k is not None:
                specs = [MLIQ(w.q, args.k) for w in workload]
            elif args.theta is not None:
                specs = [TIQ(w.q, args.theta) for w in workload]
            elif args.consensus is not None:
                specs = [ConsensusTopK(w.q, args.consensus) for w in workload]
            elif args.erank is not None:
                specs = [ExpectedRank(w.q, args.erank) for w in workload]
            else:
                specs = [
                    RankQuery(w.q, args.rank, min_mass=args.min_mass)
                    for w in workload
                ]
        except ValueError as exc:  # bad --k/--theta/--min-mass
            raise SystemExit(str(exc)) from None
    sampled = time.perf_counter()
    if args.explain:
        print(session.explain(specs).describe())
    result = session.execute_many(specs)
    finished = time.perf_counter()
    stats = result.stats
    line = (
        f"{len(specs)} queries in {finished - sampled:.2f}s "
        f"({(finished - sampled) / len(specs) * 1e3:.1f} ms/query, "
        f"backend={result.backend}): {stats.pages_accessed} page accesses, "
        f"{stats.page_faults} faults"
    )
    if workload is not None:
        hits = sum(
            1
            for w, matches in zip(workload, result)
            if matches and matches[0].key == w.true_key
        )
        line += f", top-1 hit rate {hits / len(specs):.0%}"
    print(line)
    if result.provenance:
        for shard_name, shard_stats in result.provenance:
            print(
                f"  {shard_name}: {shard_stats.pages_accessed} pages, "
                f"{shard_stats.objects_refined} refinements"
            )
    if workload is not None:
        for w, matches in list(zip(workload, result))[: args.show]:
            top = ", ".join(
                f"{m.key!r}:{m.probability:.1%}" for m in matches[:3]
            )
            print(f"  true={w.true_key!r} -> [{top}]")
    else:
        for spec, matches in list(zip(specs, result))[: args.show]:
            top = ", ".join(
                f"{m.key!r}:{m.probability:.1%}" for m in matches[:3]
            )
            print(f"  {spec.kind} -> [{top}]")
    session.close()


def _cmd_shard_build(args: argparse.Namespace) -> None:
    from repro.cluster import build_shards

    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    db = _build_dataset(args.dataset, args.scale)
    started = time.perf_counter()
    manifest = build_shards(
        db,
        args.shards,
        args.out_prefix,
        policy=args.policy,
        page_size=args.page_size,
        replicas=args.replicas,
    )
    elapsed = time.perf_counter() - started
    sizes = ", ".join(str(s.objects) for s in manifest.shards)
    print(
        f"sharded data set {args.dataset} (n={len(db)}) into "
        f"{manifest.n_shards} shard(s) [{sizes}] with policy "
        f"{manifest.policy!r}"
        + (f", {args.replicas} replica(s) each" if args.replicas else "")
        + f" in {elapsed:.1f}s"
    )
    print(f"manifest: {manifest.source_path}")
    print(
        "serve it:  python -m repro serve "
        f"{manifest.source_path} --pool process"
    )


def _cmd_reshard(args: argparse.Namespace) -> None:
    from repro.cluster import reshard

    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    started = time.perf_counter()
    manifest = reshard(
        args.manifest,
        args.shards,
        policy=args.policy,
        page_size=args.page_size,
        replicas=args.replicas,
    )
    elapsed = time.perf_counter() - started
    sizes = ", ".join(str(s.objects) for s in manifest.shards)
    print(
        f"resharded {args.manifest} to {manifest.n_shards} shard(s) "
        f"[{sizes}] (generation {manifest.generation}, policy "
        f"{manifest.policy!r}) in {elapsed:.1f}s"
    )
    print(
        "cutover is atomic: sessions opened before it keep serving the "
        "old generation; run `repro reshard-gc` once they are gone"
    )


def _cmd_reshard_gc(args: argparse.Namespace) -> None:
    from repro.cluster import reshard_gc

    report = reshard_gc(args.manifest, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    for path in report["deleted"]:
        print(f"{verb} {path}")
    for path in report["busy"]:
        print(f"busy (still open by a pre-cutover session): {path}")
    mib = report["reclaimed_bytes"] / (1024 * 1024)
    print(
        f"{verb} {len(report['deleted'])} old-generation file(s) "
        f"({mib:.1f} MiB), {len(report['busy'])} busy; current "
        f"generation {report['generation']} untouched"
    )


def _serve_registry(args):
    """The server's metrics registry from the CLI flags: ``None``
    (instrument with a private default registry) unless ``--no-metrics``
    asked for the no-op mode — which also silences the process-global
    registry (WAL / cluster / buffer series)."""
    if not args.no_metrics:
        return None
    from repro.obs import NullRegistry, set_global_registry

    set_global_registry(NullRegistry())
    return NullRegistry()


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.cluster import QueryServer
    from repro.engine import connect

    backend = args.backend
    if backend == "auto":
        backend = (
            "sharded" if args.index.endswith(".json") else "disk"
        )
    if args.sessions < 1:
        raise SystemExit("--sessions must be at least 1")
    options = _backend_options(
        args,
        backend,
        "sharded serving (a .shards.json manifest or "
        "--backend sharded)",
    )
    started = time.perf_counter()
    session = connect(
        args.index, backend=backend, writable=args.writable, **options
    )
    print(
        f"connected {session!r} to {args.index} "
        f"in {time.perf_counter() - started:.2f}s"
    )
    # Replica sessions open the same source read-only; they serve
    # queries concurrently while writes serialize on the primary.
    factory = (
        (lambda: connect(args.index, backend=backend, **options))
        if args.sessions > 1
        else None
    )
    if args.use_async:
        _serve_async_foreground(args, session, factory)
        return
    server = QueryServer(
        session,
        args.host,
        args.port,
        verbose=args.verbose,
        session_factory=factory,
        pool_size=args.sessions,
        registry=_serve_registry(args),
        slow_query_log=args.slow_query_log,
        slow_query_ms=args.slow_query_ms,
    ).start()
    host, port = server.address
    print(
        f"serving http://{host}:{port} with {args.sessions} session(s) "
        f"(POST /query{', POST /insert' if args.writable else ''}, "
        "GET /healthz, GET /stats, GET /metrics) — Ctrl-C to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        session.close()


def _serve_async_foreground(args, session, factory) -> None:
    """The `repro serve --async` path: asyncio front end with admission
    control and request coalescing (docs/serving.md)."""
    from repro.serve import AdmissionConfig, AsyncQueryServer, CoalesceConfig

    server = AsyncQueryServer(
        session,
        args.host,
        args.port,
        session_factory=factory,
        pool_size=args.sessions,
        admission=AdmissionConfig(
            max_queue=args.max_queue,
            max_queue_per_client=args.max_queue_per_client,
        ),
        coalesce=CoalesceConfig(
            max_batch=args.max_batch,
            max_delay_seconds=args.max_delay_ms / 1e3,
            coalesce_reads=not args.no_coalesce,
            coalesce_writes=not args.no_coalesce,
        ),
        drain_timeout=args.drain_timeout,
        verbose=args.verbose,
        registry=_serve_registry(args),
        slow_query_log=args.slow_query_log,
        slow_query_ms=args.slow_query_ms,
    ).serve_in_background()
    host, port = server.address
    coalesce_note = (
        "coalescing off"
        if args.no_coalesce
        else f"coalescing <= {args.max_batch} per batch, "
        f"{args.max_delay_ms:g} ms window"
    )
    print(
        f"serving http://{host}:{port} with {args.sessions} session(s) "
        f"(async: pipelined JSONL + HTTP, {coalesce_note}, queue "
        f"{args.max_queue}) — Ctrl-C to stop",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\ndraining")
    finally:
        server.shutdown()
        session.close()


# Series `repro top` surfaces, in display order: (metric, short label).
# Histograms render their _count/_sum as "N @ mean"; everything else is
# the raw value.
_TOP_ROWS = (
    ("repro_serve_queries_total", "queries"),
    ("repro_serve_inserts_total", "inserts"),
    ("repro_serve_errors_total", "errors"),
    ("repro_serve_queue_depth", "queue depth"),
    ("repro_serve_queue_depth_peak", "queue peak"),
    ("repro_serve_admitted_total", "admitted"),
    ("repro_serve_shed_total", "shed (429)"),
    ("repro_serve_read_batches_total", "read batches"),
    ("repro_serve_coalesced_reads_total", "coalesced reads"),
    ("repro_serve_write_batches_total", "write batches"),
    ("repro_serve_coalesced_inserts_total", "coalesced inserts"),
    ("repro_serve_batch_size", "batch size"),
    ("repro_serve_admission_wait_seconds", "admission wait"),
    ("repro_serve_execute_seconds", "execute"),
    ("repro_serve_pool_in_use", "pool in use"),
    ("repro_serve_pool_size", "pool size"),
    ("repro_serve_pool_waits_total", "pool waits"),
    ("repro_cluster_fanouts_total", "cluster fan-outs"),
    ("repro_cluster_fanout_seconds", "fan-out latency"),
    ("repro_cluster_retry_total", "cluster retries"),
    ("repro_cluster_failover_total", "cluster failovers"),
    ("repro_buffer_hit_ratio", "buffer hit ratio"),
    ("repro_buffer_evictions_total", "buffer evictions"),
    ("repro_wal_commits_total", "WAL commits"),
    ("repro_wal_fsync_seconds", "WAL fsync"),
)


def _parse_exposition(text: str) -> dict[str, dict[str, float]]:
    """Prometheus text -> {metric: {labelled sample name: value}}.

    Histogram samples fold under their base name (``_bucket`` dropped,
    ``_sum``/``_count`` kept as pseudo-labels); labelled series keep
    their ``{...}`` suffix as the sample key.
    """
    series: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            continue
        name, _, labels = name_part.partition("{")
        base = name
        sample = "{" + labels if labels else ""
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                sample = suffix.lstrip("_") + sample
                break
        series.setdefault(base, {})[sample] = value
    return series


def _format_top(series: dict[str, dict[str, float]]) -> list[str]:
    lines = []
    for metric, label in _TOP_ROWS:
        samples = series.get(metric)
        if not samples:
            continue
        if "count" in samples:  # histogram: render count @ mean
            count = samples.get("count", 0.0)
            total = samples.get("sum", 0.0)
            mean = total / count if count else 0.0
            if metric.endswith("_seconds"):
                value = f"{int(count)} @ {mean * 1e3:.2f} ms mean"
            else:
                value = f"{int(count)} @ {mean:.1f} mean"
        elif "" in samples and len(samples) == 1:
            v = samples[""]
            value = f"{v:g}" if v != int(v) else f"{int(v)}"
        else:  # labelled family: show each label set
            value = "  ".join(
                f"{k or 'total'}={v:g}" for k, v in sorted(samples.items())
            )
        lines.append(f"  {label:<18} {value}")
    return lines


def _cmd_top(args: argparse.Namespace) -> None:
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/")
    if not url.startswith("http"):
        url = "http://" + url
    try:
        with urllib.request.urlopen(
            url + "/metrics", timeout=args.timeout
        ) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise SystemExit(f"cannot scrape {url}/metrics: {exc}")
    series = _parse_exposition(text)
    lines = _format_top(series)
    print(f"{url}  ({len(series)} series)")
    if lines:
        print("\n".join(lines))
    else:
        print("  (no repro_* series exposed yet — drive some traffic)")


def _cmd_trace(args: argparse.Namespace) -> None:
    import json

    from repro.obs import format_span_tree

    def render(entry: dict, index: int) -> None:
        trace = entry.get("trace") or (
            entry if "spans" in entry else None
        )
        header = []
        if "elapsed_ms" in entry:
            header.append(f"{entry['elapsed_ms']:.1f} ms")
        if entry.get("source"):
            header.append(str(entry["source"]))
        if trace and trace.get("id"):
            header.append(f"trace {trace['id']}")
        print(f"-- entry {index}" + (f" ({', '.join(header)})" if header else ""))
        if trace:
            print(format_span_tree(trace))
        else:
            print("  (no span tree in this entry)")
        if args.plan and entry.get("plan"):
            print(entry["plan"])

    source = sys.stdin if args.file == "-" else open(args.file)
    shown = 0
    try:
        for i, line in enumerate(source):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"-- entry {i}: unparseable line ({exc})")
                continue
            render(entry, i)
            shown += 1
            if args.limit and shown >= args.limit:
                break
    finally:
        if source is not sys.stdin:
            source.close()
    if not shown:
        print("no entries")


def _cmd_insert(args: argparse.Namespace) -> None:
    import os

    import numpy as np

    from repro.core.pfv import PFV
    from repro.gausstree.tree import GaussTree

    if args.count < 1:
        raise SystemExit("--count must be at least 1")
    started = time.perf_counter()
    tree = GaussTree.open(
        args.index,
        writable=True,
        fsync=not args.no_fsync,
        auto_checkpoint_bytes=args.auto_checkpoint_bytes,
    )
    opened = time.perf_counter()
    print(
        f"opened {tree!r} writable from {args.index} "
        f"in {opened - started:.2f}s (WAL recovery included if any)"
    )
    rng = np.random.default_rng(args.seed)
    rect = tree.root.rect
    if rect is not None:
        mu_lo, mu_hi = rect.mu_lo, rect.mu_hi
        sigma_lo = np.maximum(rect.sigma_lo, 1e-3)
        sigma_hi = np.maximum(rect.sigma_hi, sigma_lo)
    else:  # empty index: fall back to the unit box
        mu_lo, mu_hi = np.zeros(tree.dims), np.ones(tree.dims)
        sigma_lo, sigma_hi = np.full(tree.dims, 0.05), np.full(tree.dims, 0.4)
    if args.batch is not None and args.batch < 1:
        raise SystemExit("--batch must be at least 1")
    inserted = 0
    insert_started = time.perf_counter()
    # Number keys from the current object count so repeated runs (and
    # runs resumed after a crash) never mint duplicate identities.
    key_base = len(tree)
    step = args.batch or 1
    for start in range(0, args.count, step):
        # Generate lazily, one chunk at a time: a kill -9 demo passes
        # --count 100000 and must be inserting within milliseconds, not
        # materializing the whole workload first.
        size = min(step, args.count - start)
        if args.exit_after is not None:
            size = min(size, args.exit_after - inserted)
        chunk = [
            PFV(
                rng.uniform(mu_lo, mu_hi),
                rng.uniform(sigma_lo, sigma_hi),
                key=("ins", key_base + start + i),
            )
            for i in range(size)
        ]
        if args.batch is None:
            for v in chunk:  # per-op commits: one fsync each
                tree.insert(v)
        elif chunk:
            tree.insert_many(chunk)  # group commit: one fsync per batch
        inserted += len(chunk)
        if args.exit_after is not None and inserted >= args.exit_after:
            # Simulated kill -9: no checkpoint, no close, no cleanup.
            # The WAL alone carries everything committed so far.
            print(
                f"exiting hard after {inserted} durable inserts "
                "(recovery will replay the WAL on the next open)",
                flush=True,
            )
            os._exit(1)
    elapsed = time.perf_counter() - insert_started
    print(
        f"{inserted} inserts in {elapsed:.2f}s "
        f"({inserted / elapsed:.0f} inserts/s, "
        f"fsync={'off' if args.no_fsync else 'per-commit'}, "
        f"commit={'per-op' if args.batch is None else f'group/{args.batch}'}"
        f"), index now holds {len(tree)} objects"
    )
    if args.no_flush:
        tree.close(checkpoint=False)
        print("closed without checkpoint: state rides in the WAL")
    else:
        flush_started = time.perf_counter()
        tree.close()
        print(f"checkpointed in {time.perf_counter() - flush_started:.2f}s")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gauss-tree reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, help_text in (
        ("figure6", _cmd_figure6, "effectiveness: NN vs MLIQ precision/recall"),
        ("figure7", _cmd_figure7, "efficiency: pages/CPU/overall vs the scan"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
        p.add_argument("--queries", type=int, default=50)
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="dataset size multiplier (default: paper size for DS1, "
            "0.2 for DS2 unless REPRO_FULL_SCALE=1)",
        )
        p.add_argument("--seed", type=int, default=7)
        p.set_defaults(func=func)

    p = sub.add_parser("example", help="the paper's Figure 1 worked example")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser(
        "build", help="bulk-load a dataset and save the index to disk"
    )
    p.add_argument("index", help="output index file (e.g. ds1.gauss)")
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset size multiplier (same semantics as figure6/figure7)",
    )
    p.add_argument(
        "--page-size",
        type=int,
        default=8192,
        help="bytes per index page (default: 8192)",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser(
        "insert",
        help="open an index writable and add WAL-durable random objects",
    )
    p.add_argument("index", help="index file written by `build` (format v2)")
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="group-commit N inserts per WAL transaction (one fsync per "
        "batch, all-or-nothing recovery; default: one commit per insert)",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip the per-commit fsync (faster; bounded loss on power cut)",
    )
    p.add_argument(
        "--no-flush",
        action="store_true",
        help="close without checkpointing; the next open replays the WAL",
    )
    p.add_argument(
        "--auto-checkpoint-bytes",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint automatically whenever the WAL reaches N bytes "
        "(bounds recovery replay; default: only flush on close)",
    )
    p.add_argument(
        "--exit-after",
        type=int,
        default=None,
        metavar="N",
        help="os._exit(1) after N inserts - a deterministic kill -9 "
        "for crash-recovery demos and CI",
    )
    p.set_defaults(func=_cmd_insert)

    p = sub.add_parser(
        "query",
        help="open a saved index and answer an MLIQ/TIQ/Rank batch "
        "through the unified session API",
    )
    p.add_argument(
        "index",
        help="index file written by `build`, or a .shards.json manifest "
        "written by `shard-build` (use --backend sharded)",
    )
    p.add_argument(
        "--backend",
        default="disk",
        choices=("disk", "tree", "seqscan", "xtree", "sharded"),
        help="access method serving the batch (default: disk — the "
        "saved Gauss-tree itself; tree/seqscan/xtree materialize the "
        "stored objects first; sharded fans out over a shard manifest)",
    )
    p.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="replay a JSONL spec workload (one query object per line, "
        "the `repro serve` wire format) instead of generating a "
        "re-observation workload; '-' reads stdin",
    )
    p.add_argument(
        "--pool",
        default=None,
        choices=("serial", "process"),
        help="sharded only: fan-out worker pool (default serial)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded only: process-pool worker count",
    )
    p.add_argument(
        "--k", type=int, default=None, help="answer k-MLIQs with this k"
    )
    p.add_argument(
        "--theta",
        type=float,
        default=None,
        help="answer TIQs with this probability threshold",
    )
    p.add_argument(
        "--rank",
        type=int,
        default=None,
        help="answer probabilistic top-k RankQueries with this k",
    )
    p.add_argument(
        "--min-mass",
        type=float,
        default=None,
        help="truncate --rank answers at this cumulative posterior mass",
    )
    p.add_argument(
        "--consensus",
        type=int,
        default=None,
        help="answer consensus top-k (ConsensusTopK) with this k",
    )
    p.add_argument(
        "--erank",
        type=int,
        default=None,
        help="answer expected-rank top-k (ExpectedRank) with this k",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the session's query plan before executing",
    )
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--show",
        type=int,
        default=5,
        help="print the top matches of this many queries (default: 5)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "shard-build",
        help="partition a dataset into N per-shard Gauss-tree indexes "
        "plus a .shards.json manifest",
    )
    p.add_argument(
        "out_prefix",
        help="output prefix: writes <prefix>.shard-NN.gauss files and "
        "the <prefix>.shards.json manifest",
    )
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2))
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset size multiplier (same semantics as figure6/figure7)",
    )
    p.add_argument("--shards", type=int, default=4)
    p.add_argument(
        "--policy",
        default="hash",
        choices=("hash", "round-robin"),
        help="shard placement: stable key hash (default) or position "
        "round-robin",
    )
    p.add_argument(
        "--page-size",
        type=int,
        default=8192,
        help="bytes per shard index page (default: 8192)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="replica clones per shard (recorded in the manifest; WAL "
        "shipping keeps them live, reads rotate across them and fail "
        "over when a worker dies; default: 0)",
    )
    p.set_defaults(func=_cmd_shard_build)

    p = sub.add_parser(
        "reshard",
        help="re-shard a deployment to a new shard count, cutting over "
        "atomically via the manifest while queries keep flowing",
    )
    p.add_argument(
        "manifest", help=".shards.json manifest written by `shard-build`"
    )
    p.add_argument(
        "--shards", type=int, required=True, help="new shard count"
    )
    p.add_argument(
        "--policy",
        default=None,
        choices=("hash", "round-robin"),
        help="placement policy for the new layout (default: keep the "
        "deployment's current policy)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replica clones per new shard (default: keep the current "
        "per-shard replica count)",
    )
    p.add_argument(
        "--page-size",
        type=int,
        default=8192,
        help="bytes per new shard index page (default: 8192)",
    )
    p.set_defaults(func=_cmd_reshard)

    p = sub.add_parser(
        "reshard-gc",
        help="delete old-generation shard files left behind by reshard "
        "cutovers, once flock probes show no live readers",
    )
    p.add_argument(
        "manifest", help=".shards.json manifest of the deployment"
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="only list what would be deleted (and what is busy)",
    )
    p.set_defaults(func=_cmd_reshard_gc)

    p = sub.add_parser(
        "serve",
        help="serve an index (or shard manifest) as a concurrent JSON "
        "HTTP endpoint",
    )
    p.add_argument(
        "index",
        help="index file from `build` or .shards.json manifest from "
        "`shard-build`",
    )
    p.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "disk", "tree", "seqscan", "xtree", "sharded"),
        help="backend behind the endpoint (auto: sharded for a "
        ".json manifest, disk otherwise)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8631,
        help="listening port (0 binds an ephemeral port)",
    )
    p.add_argument(
        "--pool",
        default=None,
        choices=("serial", "process"),
        help="sharded only: fan-out worker pool",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="sharded only: process-pool worker count",
    )
    p.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="session-pool size: concurrent POST /query handlers "
        "execute on this many sessions over the same index "
        "(default 1; replica sessions are refreshed after every "
        "accepted insert, so reads through any slot are "
        "read-your-writes consistent)",
    )
    p.add_argument(
        "--writable",
        action="store_true",
        help="open the primary session writable and accept "
        "POST /insert (writes serialize on the primary session)",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="log every HTTP request to stderr",
    )
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve through the asyncio tier: pipelined JSONL + HTTP "
        "on one event loop, bounded admission queues (429 + "
        "Retry-After under overload) and request coalescing into "
        "the engine's batch entry points (docs/serving.md)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="async only: most engine operations fused into one "
        "coalesced batch (default 16)",
    )
    p.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="async only: how long a free session waits for stragglers "
        "before executing an underfull batch (default 2 ms)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=512,
        help="async only: global admission-queue bound; requests over "
        "it answer 429 (default 512)",
    )
    p.add_argument(
        "--max-queue-per-client",
        type=int,
        default=64,
        help="async only: per-connection admission bound (default 64)",
    )
    p.add_argument(
        "--no-coalesce",
        action="store_true",
        help="async only: disable request coalescing (each request "
        "executes alone, as the threaded server would)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="async only: seconds shutdown waits for admitted requests "
        "to finish (default 10)",
    )
    p.add_argument(
        "--slow-query-ms",
        type=float,
        default=250.0,
        help="slow-query threshold: requests whose end-to-end time "
        "(queue wait included) crosses this log one JSONL entry with "
        "span tree and explain() plan (default 250; needs "
        "--slow-query-log)",
    )
    p.add_argument(
        "--slow-query-log",
        metavar="PATH",
        default=None,
        help="append slow-query entries to this JSONL file "
        "(render with `repro trace PATH`)",
    )
    p.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable instrumentation: /metrics serves an empty "
        "exposition and every registry call becomes a no-op",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "top",
        help="scrape a serving endpoint's GET /metrics and render the "
        "key series as a compact table",
    )
    p.add_argument(
        "url",
        help="endpoint base URL (host:port or http://host:port)",
    )
    p.add_argument(
        "--timeout", type=float, default=5.0, help="scrape timeout"
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "trace",
        help="render the span trees in a slow-query log (or any JSONL "
        "file of traced responses)",
    )
    p.add_argument(
        "file",
        help="slow-query log path from `serve --slow-query-log` "
        "(- reads stdin)",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=0,
        help="show at most this many entries (0 = all)",
    )
    p.add_argument(
        "--plan",
        action="store_true",
        help="also print each entry's explain() plan text",
    )
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
