"""Cost model: turning work counters into simulated 2006-era time.

The paper's Figure 7 reports three efficiency metrics: page accesses, CPU
time and *overall* time. The interesting phenomenon is that the Gauss-tree
beats the sequential scan by a factor 35-43 in page accesses for TIQ but
"the all over time suffered from additional seeks on the hard disc", so the
overall speed-up is only 3-7.5x. That gap exists because an index performs
*random* page reads (each paying a seek + rotational latency) while the
sequential scan streams pages at full disk bandwidth.

We reproduce this with a simple, explicit model of the paper's 2006
testbed:

* **disk** — random reads pay ``seek + rotational latency + transfer``,
  sequential runs pay one positioning delay and then pure transfer
  (defaults approximate a 7200 rpm drive of that generation);
* **CPU** — per-object refinement cost plus per-page processing cost,
  calibrated to a 2006 JVM evaluating Gaussians object by object. The
  *modeled* CPU exists because our Python substrate is the wrong ruler:
  numpy makes the sequential scan one perfectly vectorised pass while the
  index pays Python per-node overhead, inverting the CPU ratio the paper
  measured. The wall-clock CPU is still recorded alongside; EXPERIMENTS.md
  reports both.

All constants are plain dataclass fields, so experiments can sweep them
(see the buffer/cost ablation benchmark).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

__all__ = ["DiskCostModel"]


@dataclasses.dataclass(frozen=True)
class DiskCostModel:
    """Simulated seconds for disk reads and for query CPU work.

    Parameters
    ----------
    seek_seconds:
        Average head seek time (default 8 ms).
    rotational_seconds:
        Average rotational latency — half a revolution of a 7200 rpm drive
        (default ~4.17 ms).
    transfer_bytes_per_second:
        Sustained media transfer rate (default 60 MB/s).
    page_size:
        Bytes per page (must match the experiment's page layout).
    cpu_per_refinement_seconds:
        Modeled CPU of one exact Lemma-1 evaluation (default 30 us — a
        2006 JVM evaluating d Gaussians with per-feature calls).
    cpu_per_vectorized_refinement_seconds:
        Modeled CPU of one Lemma-1 evaluation served by a columnar page
        kernel (format-v3 leaves): the whole page is evaluated as one
        array operation, so the per-object cost is the amortized slice
        of a SIMD pass rather than a per-feature call chain (default
        1 us — a ~30x per-object speedup, matching what the columnar
        refinement benchmark measures on the Python substrate).
    cpu_per_page_seconds:
        Modeled CPU of processing one visited page (entry tests, bound
        evaluations; default 100 us).
    fanout_dispatch_seconds:
        Modeled per-branch cost of fanning a batch out to one shard of a
        sharded deployment (serialize the sub-batch, enqueue, collect —
        default 500 us, roughly one small RPC).
    coalesce_dispatch_seconds:
        Modeled per-request cost of the async serving tier's coalescing
        dispatcher (admission, demultiplexing one request's slice of a
        fused batch — default 200 us).
    batch_shared_fraction:
        Fraction of a query's engine work that batch execution shares
        across a fused batch (root descent, common node expansions).
        The default 0.5 reproduces the ~2x ``execute_many``
        amortization the engine benchmarks measure; see
        :meth:`coalesce_amortization`.
    """

    seek_seconds: float = 0.008
    rotational_seconds: float = 0.00417
    transfer_bytes_per_second: float = 60e6
    page_size: int = 8192
    cpu_per_refinement_seconds: float = 30e-6
    cpu_per_vectorized_refinement_seconds: float = 1e-6
    cpu_per_page_seconds: float = 100e-6
    fanout_dispatch_seconds: float = 500e-6
    coalesce_dispatch_seconds: float = 200e-6
    batch_shared_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.seek_seconds < 0 or self.rotational_seconds < 0:
            raise ValueError("latencies must be non-negative")
        if self.transfer_bytes_per_second <= 0:
            raise ValueError("transfer rate must be positive")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if (
            self.cpu_per_refinement_seconds < 0
            or self.cpu_per_vectorized_refinement_seconds < 0
            or self.cpu_per_page_seconds < 0
        ):
            raise ValueError("CPU costs must be non-negative")
        if self.fanout_dispatch_seconds < 0:
            raise ValueError("fan-out dispatch cost must be non-negative")
        if self.coalesce_dispatch_seconds < 0:
            raise ValueError("coalesce dispatch cost must be non-negative")
        if not 0.0 <= self.batch_shared_fraction < 1.0:
            raise ValueError(
                "batch_shared_fraction must be in [0, 1), got "
                f"{self.batch_shared_fraction}"
            )

    def modeled_cpu_seconds(
        self,
        objects_refined: int,
        pages_accessed: int,
        *,
        vectorized: bool = False,
    ) -> float:
        """Modeled query CPU from the two work counters.

        ``vectorized=True`` prices the refinements at the columnar-kernel
        rate (``cpu_per_vectorized_refinement_seconds``) — pass it for
        the objects refined through format-v3 columnar leaf pages. Mixed
        workloads sum two calls, one per rate.
        """
        if objects_refined < 0 or pages_accessed < 0:
            raise ValueError("work counters must be non-negative")
        per_refinement = (
            self.cpu_per_vectorized_refinement_seconds
            if vectorized
            else self.cpu_per_refinement_seconds
        )
        return (
            objects_refined * per_refinement
            + pages_accessed * self.cpu_per_page_seconds
        )

    @property
    def page_transfer_seconds(self) -> float:
        """Time to stream one page off the platter."""
        return self.page_size / self.transfer_bytes_per_second

    def random_read_seconds(self, pages: int) -> float:
        """Cost of ``pages`` independent random page reads (index traversal)."""
        if pages < 0:
            raise ValueError("pages must be non-negative")
        per_page = (
            self.seek_seconds + self.rotational_seconds + self.page_transfer_seconds
        )
        return pages * per_page

    def fan_out_seconds(
        self, branch_seconds: "Sequence[float]", *, parallel: bool = True
    ) -> float:
        """Latency of fanning one batch out over shard branches.

        A parallel fan-out (process pool, one worker per shard) finishes
        with its slowest branch — the max; a serial fan-out pays every
        branch in turn — the sum. Both pay one dispatch overhead per
        branch. This is how sharded ``explain()`` plans are priced.
        """
        branch_seconds = list(branch_seconds)
        if any(s < 0 for s in branch_seconds):
            raise ValueError("branch latencies must be non-negative")
        if not branch_seconds:
            return 0.0
        base = max(branch_seconds) if parallel else sum(branch_seconds)
        return base + self.fanout_dispatch_seconds * len(branch_seconds)

    def commit_seconds(self, wal_bytes: int, fsyncs: int) -> float:
        """Modeled cost of durable write-ahead-log commits.

        A WAL append is sequential IO — the bytes stream at the media
        transfer rate — but every fsync barrier forces the platter and
        pays one positioning delay (seek + rotational latency). This is
        the ruler ``benchmarks/bench_writes.py`` prices group commit
        with: batching N operations into one transaction divides the
        barrier count by N and deduplicates page images, which is
        invisible on hosts whose fsync is absorbed by a write cache but
        dominates on the modeled 2006 disk (and any real durable disk).
        """
        if wal_bytes < 0 or fsyncs < 0:
            raise ValueError("wal_bytes and fsyncs must be non-negative")
        return (
            fsyncs * (self.seek_seconds + self.rotational_seconds)
            + wal_bytes / self.transfer_bytes_per_second
        )

    def coalesce_amortization(self, batch: int) -> float:
        """Per-query speedup from fusing ``batch`` queries into one call.

        A fraction ``f = batch_shared_fraction`` of each query's work is
        shared across the batch (paid once), the rest is per-query, so
        the per-query cost shrinks by ``batch / (f + (1 - f) * batch)``
        — an Amdahl curve rising from 1 (no batch) toward ``1 / f``
        asymptotically. The default ``f = 0.5`` saturates at 2x, which
        is what the engine's ``execute_many`` benchmarks measure.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        f = self.batch_shared_fraction
        return batch / (f + (1.0 - f) * batch)

    def coalesced_batch_seconds(
        self, single_seconds: float, batch: int
    ) -> float:
        """Per-query seconds when ``batch`` queries fuse into one call
        (``single_seconds`` divided by :meth:`coalesce_amortization`)."""
        if single_seconds < 0:
            raise ValueError("single_seconds must be non-negative")
        return single_seconds / self.coalesce_amortization(batch)

    def expected_coalesce_wait_seconds(self, window_seconds: float) -> float:
        """Expected queueing delay a request pays inside one batching
        window (arrivals uniform over the window → half of it)."""
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        return window_seconds / 2.0

    def sequential_read_seconds(self, pages: int) -> float:
        """Cost of one sequential run over ``pages`` contiguous pages.

        One positioning delay, then streaming transfer — this is how the
        Seq.File competitor of Figure 7 reads the database.
        """
        if pages < 0:
            raise ValueError("pages must be non-negative")
        if pages == 0:
            return 0.0
        return (
            self.seek_seconds
            + self.rotational_seconds
            + pages * self.page_transfer_seconds
        )
