"""Simulated paged storage substrate (the paper's testbed stand-in).

The paper measures page accesses, CPU time and overall time on a real 2006
workstation with a 50 MB database cache. This package provides the
simulation equivalents:

``layout``     — byte-level page layout; derives node capacities / degree M.
``buffer``     — LRU buffer manager with hit/fault accounting.
``costmodel``  — random vs sequential disk read cost model.
``pagestore``  — page allocation + per-query access logs.
``serializer`` — byte encoding of leaf/inner pages (round-trip tested).
``filestore``  — file-backed page store serving real bytes through the
                 buffer (the disk path behind ``GaussTree.save/open``);
                 in writable mode the data half of the WAL protocol.
``wal``        — write-ahead log with checksummed records and redo replay.
``fault``      — crash-injection file doubles for the durability tests.
"""

from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.costmodel import DiskCostModel
from repro.storage.fault import FaultInjector, FaultyFile, InjectedCrash
from repro.storage.filestore import FilePageStore
from repro.storage.layout import PageLayout
from repro.storage.pagestore import PageStore
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferManager",
    "BufferStats",
    "DiskCostModel",
    "FaultInjector",
    "FaultyFile",
    "FilePageStore",
    "InjectedCrash",
    "PageLayout",
    "PageStore",
    "WriteAheadLog",
]
