"""A page store whose pages are real bytes in a real file.

:class:`FilePageStore` upgrades the simulated accounting of
:class:`~repro.storage.pagestore.PageStore` to an actual storage path: a
:meth:`read` still routes through the LRU
:class:`~repro.storage.buffer.BufferManager` and the
:class:`~repro.storage.costmodel.DiskCostModel` exactly like the base
class — same logical page-access counts, same fault accounting — but it
additionally *returns the page's bytes*, fetched from the file on a fault
and served from an in-memory frame cache on a hit. The frame cache mirrors
buffer residency via the buffer's eviction hook, so the bytes held in
memory are exactly the pages the simulated 50 MB cache says are resident.

The store only reads: the file layout (header in the page-0 slot, node
pages at ``page_id * page_size``, key table behind the last page) is
owned and *written* by :mod:`repro.gausstree.persist`.
"""

from __future__ import annotations

import os

from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.pagestore import PageStore

__all__ = ["FilePageStore"]


class FilePageStore(PageStore):
    """Pages live at ``page_id * page_size`` inside a read-only file.

    Page id 0 is reserved for the index header, so node pages occupy ids
    ``1..allocated_pages``.

    Parameters
    ----------
    path:
        An index file written by :func:`repro.gausstree.persist.save_tree`.
    page_size:
        Must match the :class:`~repro.storage.layout.PageLayout` of the
        index stored in the file.
    allocated_pages:
        How many node pages (ids ``1..n``) the file holds.
    buffer, cost_model:
        Forwarded to :class:`~repro.storage.pagestore.PageStore`. The
        store registers an eviction listener on the buffer and detaches
        it on :meth:`close`. Buffer residency is keyed by *store-local*
        page ids, so one buffer cannot serve two stores at once — their
        ids would collide and cold reads of one file would count as hits
        on the other; passing a buffer with a listener still attached
        raises, and any stale residency from a previous (closed) owner
        is flushed on attach.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int,
        *,
        allocated_pages: int = 0,
        buffer: BufferManager | None = None,
        cost_model: DiskCostModel | None = None,
    ) -> None:
        super().__init__(buffer=buffer, cost_model=cost_model)
        if page_size < 256:
            raise ValueError(f"page_size too small: {page_size}")
        self.path = os.fspath(path)
        self.page_size = page_size
        self._file = open(self.path, "rb")
        # Page 0 is the header slot; node pages start at 1.
        self._next_page_id = 1 + allocated_pages
        self._allocated = set(range(1, 1 + allocated_pages))
        # Bytes of the buffer-resident pages; kept in lockstep with the
        # buffer via an eviction listener, detached again on close().
        if self.buffer._evict_listeners:
            raise ValueError(
                "this BufferManager already serves another page store; "
                "buffer residency is keyed by store-local page ids, so "
                "every open index file needs its own buffer"
            )
        # Flush residency a previous owner may have left behind — stale
        # foreign page ids would otherwise count this store's cold reads
        # as hits. (Concurrent sharing with an in-memory PageStore, which
        # registers no listener, remains unsupported for the same reason.)
        self.buffer.cold_start()
        self._frames: dict[int, bytes] = {}
        self.buffer.add_evict_listener(self._drop_frame)

    # -- byte fetching -------------------------------------------------------

    def _drop_frame(self, page_id: int) -> None:
        self._frames.pop(page_id, None)

    def _read_from_file(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise IOError(
                f"short read: page {page_id} of {self.path} has "
                f"{len(data)} bytes, expected {self.page_size}"
            )
        return data

    # -- access --------------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        """One random page read through the buffer; returns the bytes.

        Accounting is the base class's, verbatim (a logical access always
        counts, only a buffer miss pays modeled IO) — but the read
        additionally fetches the page from the file on a miss and serves
        the bytes from the resident frame on a hit.
        """
        super().read(page_id)
        data = self._frames.get(page_id)
        if data is None:
            data = self._read_from_file(page_id)
            if self.buffer.contains(page_id):
                self._frames[page_id] = data
        return data

    def fetch_page(self, page_id: int) -> bytes:
        """Fetch bytes without touching the access accounting.

        Used for structural materialization right after a counted
        :meth:`read` (the frame is already resident) and for offline walks
        (saving, iteration, invariant checks) that the paper's page-access
        metric does not count.
        """
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} is not allocated")
        data = self._frames.get(page_id)
        if data is None:
            data = self._read_from_file(page_id)
        return data

    def read_tail(self, offset: int, size: int) -> bytes:
        """Read raw bytes past the page region (key table)."""
        self._file.seek(offset)
        data = self._file.read(size)
        if len(data) != size:
            raise IOError(f"short read at offset {offset} of {self.path}")
        return data

    # -- lifecycle -----------------------------------------------------------

    def free(self, page_id: int) -> None:
        self._frames.pop(page_id, None)
        super().free(page_id)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        self.buffer.remove_evict_listener(self._drop_frame)
        self._frames.clear()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FilePageStore({self.path!r}, pages={len(self._allocated)}, "
            f"page_size={self.page_size}, resident={len(self._frames)})"
        )
