"""A page store whose pages are real bytes in a real file.

:class:`FilePageStore` upgrades the simulated accounting of
:class:`~repro.storage.pagestore.PageStore` to an actual storage path: a
:meth:`read` still routes through the LRU
:class:`~repro.storage.buffer.BufferManager` and the
:class:`~repro.storage.costmodel.DiskCostModel` exactly like the base
class — same logical page-access counts, same fault accounting — but it
additionally *returns the page's bytes*, fetched from the file on a fault
and served from an in-memory frame cache on a hit. The frame cache mirrors
buffer residency via the buffer's eviction hook, so the bytes held in
memory are exactly the pages the simulated 50 MB cache says are resident.

In read-only mode the store only reads; the file layout (header in the
page-0 slot, node pages at ``page_id * page_size``, key table behind the
last page) is owned by :mod:`repro.gausstree.persist`.

In **writable** mode (``writable=True``) the store becomes the data half
of a write-ahead protocol (see :mod:`repro.storage.wal`):

* :meth:`write` installs a committed page image *in memory only* — into
  the frame cache, with the page marked dirty in the buffer. The main
  file stays untouched between checkpoints, which is what makes crash
  recovery a pure WAL replay.
* a dirty page evicted from the buffer is written back exactly once via
  the buffer's write-back hook — into the store's *pending overlay*, not
  the file, preserving the image until the next checkpoint while keeping
  buffer residency meaningful;
* reads overlay the main file with the frame cache and the pending
  images, so the store always serves the latest committed bytes;
* :meth:`allocate` reuses ids from the free-page list (populated by node
  deletes and persisted in the v2 header) before growing the file.

The checkpoint itself is driven by
:class:`repro.gausstree.persist.TreeWriter` through
:meth:`publish_checkpoint`, which writes the dirty images, key table
and header as a complete sibling file and atomically renames it over
the index — readers that already hold the file open keep serving the
pre-checkpoint generation (reader snapshot isolation). The raw-IO
helpers (:meth:`write_page_to_file`, :meth:`write_raw`, :meth:`sync`)
remain for in-place surgery paths.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.pagestore import PageStore

__all__ = ["FilePageStore"]


class FilePageStore(PageStore):
    """Pages live at ``page_id * page_size`` inside a read-only file.

    Page id 0 is reserved for the index header, so node pages occupy ids
    ``1..allocated_pages``.

    Parameters
    ----------
    path:
        An index file written by :func:`repro.gausstree.persist.save_tree`.
    page_size:
        Must match the :class:`~repro.storage.layout.PageLayout` of the
        index stored in the file.
    allocated_pages:
        How many node pages (ids ``1..n``) the file holds.
    buffer, cost_model:
        Forwarded to :class:`~repro.storage.pagestore.PageStore`. The
        store registers an eviction listener on the buffer and detaches
        it on :meth:`close`. Buffer residency is keyed by *store-local*
        page ids, so one buffer cannot serve two stores at once — their
        ids would collide and cold reads of one file would count as hits
        on the other; passing a buffer with a listener still attached
        raises, and any stale residency from a previous (closed) owner
        is flushed on attach.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int,
        *,
        allocated_pages: int = 0,
        free_pages: tuple[int, ...] = (),
        writable: bool = False,
        buffer: BufferManager | None = None,
        cost_model: DiskCostModel | None = None,
        file_factory: Callable = open,
    ) -> None:
        super().__init__(buffer=buffer, cost_model=cost_model)
        if page_size < 256:
            raise ValueError(f"page_size too small: {page_size}")
        self.path = os.fspath(path)
        self.page_size = page_size
        self.writable = writable
        self._file_factory = file_factory
        self._file = file_factory(self.path, "r+b" if writable else "rb")
        # Page 0 is the header slot; node pages start at 1. The free list
        # holds allocated-region ids currently unused (LIFO reuse).
        self._next_page_id = 1 + allocated_pages
        self._allocated = set(range(1, 1 + allocated_pages))
        self._free: list[int] = [p for p in free_pages if p in self._allocated]
        self._allocated.difference_update(self._free)
        # Committed page images whose buffer frame was evicted before the
        # next checkpoint could persist them (the write-back target).
        self._pending: dict[int, bytes] = {}
        # Bytes of the buffer-resident pages; kept in lockstep with the
        # buffer via an eviction listener, detached again on close().
        if self.buffer._evict_listeners:
            raise ValueError(
                "this BufferManager already serves another page store; "
                "buffer residency is keyed by store-local page ids, so "
                "every open index file needs its own buffer"
            )
        # Flush residency a previous owner may have left behind — stale
        # foreign page ids would otherwise count this store's cold reads
        # as hits. (Concurrent sharing with an in-memory PageStore, which
        # registers no listener, remains unsupported for the same reason.)
        self.buffer.cold_start()
        self._frames: dict[int, bytes] = {}
        self.buffer.add_evict_listener(self._drop_frame)
        if writable:
            self.buffer.set_writeback(self._write_back)

    # -- byte fetching -------------------------------------------------------

    def _drop_frame(self, page_id: int) -> None:
        self._frames.pop(page_id, None)

    def _write_back(self, page_id: int) -> None:
        """A dirty page left the buffer: preserve its committed image.

        Fired by the buffer exactly once per departure, before the
        frame-dropping eviction listener, so the bytes are still in the
        frame cache. The image moves to the pending overlay; the main
        file is only written at the next checkpoint.
        """
        data = self._frames.get(page_id)
        if data is not None:
            self._pending[page_id] = data

    def _read_from_file(self, page_id: int) -> bytes:
        pending = self._pending.get(page_id)
        if pending is not None:
            return pending
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise IOError(
                f"short read: page {page_id} of {self.path} has "
                f"{len(data)} bytes, expected {self.page_size}"
            )
        return data

    # -- access --------------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        """One random page read through the buffer; returns the bytes.

        Accounting is the base class's, verbatim (a logical access always
        counts, only a buffer miss pays modeled IO) — but the read
        additionally fetches the page from the file on a miss and serves
        the bytes from the resident frame on a hit.
        """
        super().read(page_id)
        data = self._frames.get(page_id)
        if data is None:
            data = self._read_from_file(page_id)
            if self.buffer.contains(page_id):
                self._frames[page_id] = data
        return data

    def fetch_page(self, page_id: int) -> bytes:
        """Fetch bytes without touching the access accounting.

        Used for structural materialization right after a counted
        :meth:`read` (the frame is already resident) and for offline walks
        (saving, iteration, invariant checks) that the paper's page-access
        metric does not count.
        """
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} is not allocated")
        data = self._frames.get(page_id)
        if data is None:
            data = self._read_from_file(page_id)
        return data

    def read_tail(self, offset: int, size: int) -> bytes:
        """Read raw bytes past the page region (key table)."""
        self._file.seek(offset)
        data = self._file.read(size)
        if len(data) != size:
            raise IOError(f"short read at offset {offset} of {self.path}")
        return data

    # -- writing (committed-image installs; file IO only at checkpoint) ------

    def _assert_writable(self) -> None:
        if not self.writable:
            raise RuntimeError(f"{self.path!r} is opened read-only")

    def write(self, page_id: int, data: bytes) -> None:
        """Install a committed page image (WAL already holds it durably).

        The image lands in the frame cache with the page marked dirty;
        if the buffer cannot hold it (zero capacity) it goes straight to
        the pending overlay. The main file is untouched until the next
        checkpoint, so a crash at any point replays from the WAL.
        """
        self._assert_writable()
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} is not allocated")
        if len(data) != self.page_size:
            raise ValueError(
                f"page image has {len(data)} bytes, expected {self.page_size}"
            )
        self.log.pages_written += 1
        self.buffer.write(page_id)
        if self.buffer.contains(page_id):
            self._frames[page_id] = data
            # A stale pre-image in the overlay would shadow nothing (the
            # frame wins) but would resurrect on eviction ordering bugs;
            # drop it eagerly.
            self._pending.pop(page_id, None)
        else:
            self._pending[page_id] = data

    # -- allocation with free-page reuse -------------------------------------

    def allocate(self) -> int:
        if self.writable and self._free:
            pid = self._free.pop()
            self._allocated.add(pid)
            return pid
        return super().allocate()

    def free(self, page_id: int) -> None:
        if self.writable:
            # Forget any unpersisted image and the dirty flag first: a
            # freed page must not be written back or checkpointed.
            self.buffer.mark_clean(page_id)
            self._pending.pop(page_id, None)
        self._frames.pop(page_id, None)
        was_allocated = page_id in self._allocated
        super().free(page_id)
        if self.writable and was_allocated:
            if page_id == self._next_page_id - 1:
                self._next_page_id -= 1  # shrink the high-water mark
            else:
                self._free.append(page_id)

    @property
    def page_count(self) -> int:
        """High-water page id (node pages occupy ids ``1..page_count``)."""
        return self._next_page_id - 1

    @property
    def free_pages(self) -> tuple[int, ...]:
        """Free-listed page ids, in reuse (LIFO) order from the right."""
        return tuple(self._free)

    # -- checkpoint IO (driven by TreeWriter) --------------------------------

    def dirty_images(self) -> dict[int, bytes]:
        """Latest committed image of every page not yet in the main file."""
        images = dict(self._pending)
        for page_id in self.buffer.dirty_pages:
            data = self._frames.get(page_id)
            if data is not None:
                images[page_id] = data
        return images

    def write_page_to_file(self, page_id: int, data: bytes) -> None:
        self._assert_writable()
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def write_raw(self, offset: int, data: bytes) -> None:
        self._assert_writable()
        self._file.seek(offset)
        self._file.write(data)

    def truncate_file(self, size: int) -> None:
        self._assert_writable()
        self._file.truncate(size)

    def sync(self) -> None:
        """fsync the main file (checkpoint ordering barrier)."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def mark_all_clean(self) -> None:
        """Checkpoint epilogue: every image reached the main file."""
        for page_id in self.buffer.dirty_pages:
            self.buffer.mark_clean(page_id)
        self._pending.clear()

    def publish_checkpoint(
        self, images: dict[int, bytes], table: bytes, header_page: bytes
    ) -> None:
        """Publish a checkpoint as a whole new file *generation*.

        Builds a sibling temp file — the current generation's page
        region, overlaid with the dirty ``images``, the key ``table``
        behind the last page and ``header_page`` in slot 0 — fsyncs it
        and atomically renames it over :attr:`path`. A reader that
        already has the index open keeps its file descriptor on the old
        inode and is never touched (reader snapshot isolation); this
        store's own handle is re-opened onto the new generation, with
        every cache intact (page ids and images are unchanged — the
        caller still runs :meth:`mark_all_clean` afterwards). A crash
        anywhere before the rename leaves the old generation and the
        WAL exactly as they were.
        """
        self._assert_writable()
        page_size = self.page_size
        kt_offset = (self.page_count + 1) * page_size
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        tmp_path = os.path.join(
            directory, f".{os.path.basename(self.path)}.ckpt.{os.getpid()}"
        )
        out = self._file_factory(tmp_path, "w+b")
        try:
            # Clean pages keep their current-generation bytes; pages
            # allocated past the old EOF are all dirty (they have never
            # been checkpointed), so zero-filling the gap is safe.
            self._file.seek(0)
            remaining = kt_offset
            while remaining > 0:
                chunk = self._file.read(min(1 << 20, remaining))
                if not chunk:
                    break
                out.write(chunk)
                remaining -= len(chunk)
            if remaining > 0:
                out.write(b"\x00" * remaining)
            for pid in sorted(images):
                out.seek(pid * page_size)
                out.write(images[pid])
            out.seek(kt_offset)
            out.write(table)
            out.truncate(kt_offset + len(table))
            out.seek(0)
            out.write(header_page)
            out.flush()
            os.fsync(out.fileno())
            out.close()
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                out.close()
            finally:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
            raise
        self._file.close()
        self._file = self._file_factory(self.path, "r+b")

    def rebind(self, allocated_pages: int) -> None:
        """Adopt a freshly rewritten file generation at the same path.

        After an in-place compacting save the old file handle points at
        the replaced inode; drop every cache, reset allocation to the
        dense ids ``1..allocated_pages`` (empty free list), and reopen
        through the original ``file_factory`` so crash injection and
        other wrappers stay in force.
        """
        self._assert_writable()
        self.buffer.cold_start()
        self._frames.clear()
        self._pending.clear()
        self._allocated = set(range(1, allocated_pages + 1))
        self._next_page_id = allocated_pages + 1
        self._free = []
        self._file.close()
        self._file = self._file_factory(self.path, "r+b")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        self.buffer.remove_evict_listener(self._drop_frame)
        if self.writable:
            self.buffer.set_writeback(None)
        self._frames.clear()
        self._pending.clear()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FilePageStore({self.path!r}, pages={len(self._allocated)}, "
            f"page_size={self.page_size}, resident={len(self._frames)})"
        )
