"""Page layout: how many entries fit on a simulated disk page.

The paper derives the Gauss-tree's degree ``M`` from the page size of the
underlying storage (it is "a balanced tree from the R-tree family" meant to
live inside an ORDBMS). We model that explicitly so that experiments with a
page size and a buffer budget (the paper uses a 50 MB cache) are meaningful:

* a **leaf entry** is one pfv: ``d`` means + ``d`` sigmas as float64 plus an
  8-byte key slot;
* an **inner entry** is a parameter-space MBR: ``4 d`` float64 bounds
  (mu-low/high, sigma-low/high per dimension), a 4-byte child page id and a
  4-byte subtree cardinality (needed by the sum approximation of
  Section 5.2);
* every page spends a fixed header (page id, node type, entry count).

From these, :class:`PageLayout` computes the degree ``M`` of Definition 4:
leaves hold between ``M`` and ``2 M`` pfv, inner nodes between ``ceil(M/2)``
and ``M`` children.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["PageLayout", "PAGE_HEADER_BYTES", "KEY_BYTES"]

#: Fixed per-page header: page id (4), node kind (1), entry count (4),
#: level (2), padding to 16.
PAGE_HEADER_BYTES = 16
#: Bytes reserved for an object key / record pointer in a leaf entry.
KEY_BYTES = 8
#: Bytes of an inner entry's child pointer + stored subtree cardinality.
CHILD_POINTER_BYTES = 8
FLOAT_BYTES = 8


@dataclasses.dataclass(frozen=True)
class PageLayout:
    """Derives node capacities from a page size and a dimensionality.

    Parameters
    ----------
    dims:
        Number of probabilistic features ``d``.
    page_size:
        Simulated page size in bytes (default 8192, a typical DBMS page).
    """

    dims: int
    page_size: int = 8192

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise ValueError(f"dims must be >= 1, got {self.dims}")
        if self.page_size < 256:
            raise ValueError(f"page_size too small: {self.page_size}")
        if self.leaf_capacity < 2:
            raise ValueError(
                f"page size {self.page_size} cannot hold two {self.dims}-d "
                "pfv entries; use a larger page"
            )
        if self.inner_capacity < 2:
            raise ValueError(
                f"page size {self.page_size} cannot hold two {self.dims}-d "
                "inner entries; use a larger page"
            )

    @property
    def leaf_entry_bytes(self) -> int:
        """Bytes of one stored pfv (2 d floats + key)."""
        return 2 * self.dims * FLOAT_BYTES + KEY_BYTES

    @property
    def inner_entry_bytes(self) -> int:
        """Bytes of one inner entry (4 d bound floats + pointer/count)."""
        return 4 * self.dims * FLOAT_BYTES + CHILD_POINTER_BYTES

    @property
    def leaf_capacity(self) -> int:
        """Maximum pfv per leaf page — this is ``2 M`` of Definition 4."""
        return (self.page_size - PAGE_HEADER_BYTES) // self.leaf_entry_bytes

    @property
    def inner_capacity(self) -> int:
        """Maximum children per inner page — this is ``M`` of Definition 4."""
        return (self.page_size - PAGE_HEADER_BYTES) // self.inner_entry_bytes

    @property
    def degree(self) -> int:
        """The Gauss-tree degree ``M`` (leaves hold ``M..2M`` entries)."""
        return max(1, self.leaf_capacity // 2)

    def pages_for_sequential_file(self, n: int) -> int:
        """Pages a flat file of ``n`` pfv occupies (the Seq.File competitor)."""
        if n <= 0:
            return 0
        return math.ceil(n / self.leaf_capacity)

    def __str__(self) -> str:
        return (
            f"PageLayout(d={self.dims}, page={self.page_size}B, "
            f"leaf_cap={self.leaf_capacity}, inner_cap={self.inner_capacity})"
        )
