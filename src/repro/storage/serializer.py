"""Binary page encoding for pfv leaf pages and parameter-MBR inner pages.

The Gauss-tree "belongs structurally to the R-tree family which facilitates
the integration into object-relational database management systems"
(Section 5.1). To make the simulated page accounting byte-faithful, this
module defines the actual on-page encoding matching
:class:`~repro.storage.layout.PageLayout`:

* page header: ``<page_id:uint32> <kind:uint8> <count:uint32> <level:uint16>``
  padded to 16 bytes;
* leaf entry (kind 1, formats v1/v2): ``d`` float64 means, ``d`` float64
  sigmas, ``int64`` key — interleaved per entry;
* columnar leaf (kind 3, format v3): the same ``n`` entries as three
  contiguous blocks — ``n*d`` float64 means, then ``n*d`` float64 sigmas,
  then ``n`` int64 key slots — so a page decodes into ready-to-use
  ``(n, d)`` ndarrays (zero-copy views of the page bytes) instead of
  ``n`` Python objects. Same per-entry byte budget as kind 1, hence the
  identical capacity and tree shape;
* inner entry: ``4 d`` float64 bounds (mu_lo, mu_hi, sigma_lo, sigma_hi per
  dimension), ``uint32`` child page id, ``uint32`` subtree cardinality.

Keys are mapped through a caller-provided key table when they are not
integers. Round-trips are exercised by the unit tests; the query paths use
in-memory nodes and only the page *accounting*, as explained in
:mod:`repro.storage.pagestore`.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.core.pfv import PFV
from repro.storage.layout import PAGE_HEADER_BYTES, PageLayout

__all__ = [
    "LEAF_KIND",
    "INNER_KIND",
    "COLUMNAR_LEAF_KIND",
    "encode_leaf_page",
    "decode_leaf_page",
    "encode_columnar_leaf_page",
    "decode_columnar_leaf_page",
    "encode_inner_page",
    "decode_inner_page",
    "PageHeader",
]

LEAF_KIND = 1
INNER_KIND = 2
COLUMNAR_LEAF_KIND = 3

_HEADER_STRUCT = struct.Struct("<IBIH")  # page_id, kind, count, level


class PageHeader:
    """Decoded page header fields."""

    __slots__ = ("page_id", "kind", "count", "level")

    def __init__(self, page_id: int, kind: int, count: int, level: int) -> None:
        self.page_id = page_id
        self.kind = kind
        self.count = count
        self.level = level

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageHeader):
            return NotImplemented
        return (
            self.page_id == other.page_id
            and self.kind == other.kind
            and self.count == other.count
            and self.level == other.level
        )

    def __repr__(self) -> str:
        kind = {
            LEAF_KIND: "leaf",
            INNER_KIND: "inner",
            COLUMNAR_LEAF_KIND: "columnar-leaf",
        }.get(self.kind, "?")
        return (
            f"PageHeader(page={self.page_id}, {kind}, count={self.count}, "
            f"level={self.level})"
        )


def _pack_header(page_id: int, kind: int, count: int, level: int) -> bytes:
    head = _HEADER_STRUCT.pack(page_id, kind, count, level)
    return head + b"\x00" * (PAGE_HEADER_BYTES - len(head))


def _unpack_header(page: bytes) -> PageHeader:
    page_id, kind, count, level = _HEADER_STRUCT.unpack_from(page, 0)
    return PageHeader(page_id, kind, count, level)


def encode_leaf_page(
    layout: PageLayout,
    page_id: int,
    vectors: Sequence[PFV],
    keys: Sequence[int],
) -> bytes:
    """Encode a leaf node's pfv onto one page; pads to ``layout.page_size``."""
    if len(vectors) > layout.leaf_capacity:
        raise ValueError(
            f"{len(vectors)} entries exceed leaf capacity {layout.leaf_capacity}"
        )
    if len(keys) != len(vectors):
        raise ValueError("need exactly one integer key per vector")
    parts = [_pack_header(page_id, LEAF_KIND, len(vectors), 0)]
    for v, key in zip(vectors, keys):
        if v.dims != layout.dims:
            raise ValueError(
                f"vector is {v.dims}-d but layout is {layout.dims}-d"
            )
        parts.append(v.mu.astype("<f8").tobytes())
        parts.append(v.sigma.astype("<f8").tobytes())
        parts.append(struct.pack("<q", key))
    body = b"".join(parts)
    if len(body) > layout.page_size:
        raise ValueError("encoded page overflows the page size")
    return body + b"\x00" * (layout.page_size - len(body))


def decode_leaf_page(
    layout: PageLayout, page: bytes
) -> tuple[PageHeader, list[PFV], list[int]]:
    """Decode a leaf page back into pfv and integer keys."""
    if len(page) != layout.page_size:
        raise ValueError(
            f"page has {len(page)} bytes, layout expects {layout.page_size}"
        )
    header = _unpack_header(page)
    if header.kind != LEAF_KIND:
        raise ValueError(f"not a leaf page (kind={header.kind})")
    d = layout.dims
    vectors: list[PFV] = []
    keys: list[int] = []
    offset = PAGE_HEADER_BYTES
    for _ in range(header.count):
        mu = np.frombuffer(page, dtype="<f8", count=d, offset=offset)
        offset += d * 8
        sigma = np.frombuffer(page, dtype="<f8", count=d, offset=offset)
        offset += d * 8
        (key,) = struct.unpack_from("<q", page, offset)
        offset += 8
        vectors.append(PFV(mu.copy(), sigma.copy(), key))
        keys.append(key)
    return header, vectors, keys


def encode_columnar_leaf_page(
    layout: PageLayout,
    page_id: int,
    mu: np.ndarray,
    sigma: np.ndarray,
    key_slots: Sequence[int],
) -> bytes:
    """Encode a leaf as contiguous column blocks (format v3, kind 3).

    ``mu`` and ``sigma`` are ``(n, d)`` float64 stacks; ``key_slots``
    the ``n`` int64 key-table slots. The page holds
    ``header | mu block | sigma block | key block``, padded to
    ``layout.page_size``.
    """
    mu = np.ascontiguousarray(mu, dtype="<f8")
    sigma = np.ascontiguousarray(sigma, dtype="<f8")
    n = len(key_slots)
    if mu.ndim != 2 or mu.shape != sigma.shape:
        raise ValueError(
            f"columns must both be (n, d), got {mu.shape} and {sigma.shape}"
        )
    if mu.shape != (n, layout.dims):
        raise ValueError(
            f"columns are {mu.shape}, layout expects ({n}, {layout.dims})"
        )
    if n > layout.leaf_capacity:
        raise ValueError(
            f"{n} entries exceed leaf capacity {layout.leaf_capacity}"
        )
    body = b"".join(
        [
            _pack_header(page_id, COLUMNAR_LEAF_KIND, n, 0),
            mu.tobytes(),
            sigma.tobytes(),
            np.asarray(key_slots, dtype="<i8").tobytes(),
        ]
    )
    if len(body) > layout.page_size:
        raise ValueError("encoded page overflows the page size")
    return body + b"\x00" * (layout.page_size - len(body))


def decode_columnar_leaf_page(
    layout: PageLayout, page: bytes
) -> tuple[PageHeader, np.ndarray, np.ndarray, list[int]]:
    """Decode a columnar leaf page into ``(header, mu, sigma, key_slots)``.

    ``mu`` and ``sigma`` are read-only ``(n, d)`` float64 views of the
    page bytes — no per-entry objects, no copies; the page buffer stays
    alive as the arrays' base.
    """
    if len(page) != layout.page_size:
        raise ValueError(
            f"page has {len(page)} bytes, layout expects {layout.page_size}"
        )
    header = _unpack_header(page)
    if header.kind != COLUMNAR_LEAF_KIND:
        raise ValueError(f"not a columnar leaf page (kind={header.kind})")
    n, d = header.count, layout.dims
    offset = PAGE_HEADER_BYTES
    mu = np.frombuffer(page, dtype="<f8", count=n * d, offset=offset)
    offset += n * d * 8
    sigma = np.frombuffer(page, dtype="<f8", count=n * d, offset=offset)
    offset += n * d * 8
    key_slots = np.frombuffer(page, dtype="<q", count=n, offset=offset)
    return (
        header,
        mu.reshape(n, d),
        sigma.reshape(n, d),
        key_slots.tolist(),
    )


def encode_inner_page(
    layout: PageLayout,
    page_id: int,
    level: int,
    bounds: Sequence[np.ndarray],
    children: Sequence[int],
    cardinalities: Sequence[int],
) -> bytes:
    """Encode an inner node.

    ``bounds[i]`` is a flat float64 array of length ``4 d`` laid out as
    ``[mu_lo(0..d), mu_hi(0..d), sigma_lo(0..d), sigma_hi(0..d)]``.
    """
    if not (len(bounds) == len(children) == len(cardinalities)):
        raise ValueError("bounds, children and cardinalities must align")
    if len(children) > layout.inner_capacity:
        raise ValueError(
            f"{len(children)} entries exceed inner capacity "
            f"{layout.inner_capacity}"
        )
    parts = [_pack_header(page_id, INNER_KIND, len(children), level)]
    for b, child, card in zip(bounds, children, cardinalities):
        arr = np.asarray(b, dtype="<f8").reshape(-1)
        if arr.size != 4 * layout.dims:
            raise ValueError(
                f"bounds must have 4*d={4 * layout.dims} floats, got {arr.size}"
            )
        parts.append(arr.tobytes())
        parts.append(struct.pack("<II", child, card))
    body = b"".join(parts)
    if len(body) > layout.page_size:
        raise ValueError("encoded page overflows the page size")
    return body + b"\x00" * (layout.page_size - len(body))


def decode_inner_page(
    layout: PageLayout, page: bytes
) -> tuple[PageHeader, list[np.ndarray], list[int], list[int]]:
    """Decode an inner page into (header, bounds, children, cardinalities)."""
    if len(page) != layout.page_size:
        raise ValueError(
            f"page has {len(page)} bytes, layout expects {layout.page_size}"
        )
    header = _unpack_header(page)
    if header.kind != INNER_KIND:
        raise ValueError(f"not an inner page (kind={header.kind})")
    d = layout.dims
    bounds: list[np.ndarray] = []
    children: list[int] = []
    cards: list[int] = []
    offset = PAGE_HEADER_BYTES
    for _ in range(header.count):
        arr = np.frombuffer(page, dtype="<f8", count=4 * d, offset=offset)
        offset += 4 * d * 8
        child, card = struct.unpack_from("<II", page, offset)
        offset += 8
        bounds.append(arr.copy())
        children.append(child)
        cards.append(card)
    return header, bounds, children, cards
