"""LRU buffer manager over a simulated page store.

The paper's experiments "used up to 50 MByte as database cache which was
cold started before each experiment". The :class:`BufferManager` reproduces
that: it tracks which page ids are resident, evicts least-recently-used
pages when the budget is exhausted, and counts hits and faults. A page
*access* always counts toward the paper's "page accesses" metric; only a
*fault* costs simulated disk time.

The buffer is deliberately independent of page contents — the access
methods in this repository keep their nodes in Python objects and route
every logical node visit through :meth:`BufferManager.access` with the
node's page id, which is exactly the information the paper's metric needs.

For the writable storage path the buffer additionally tracks *dirty*
pages (:meth:`BufferManager.write` / :meth:`mark_dirty`): a dirty page
leaving the buffer — LRU eviction, invalidation or cold start — first
fires the registered *write-back* callback exactly once (and before the
ordinary eviction listeners), so the owning page store can preserve the
page image before its frame is dropped. Pages can also be *pinned*:
pinned pages are skipped by LRU victim selection until unpinned. The
single-threaded write path does not need pins today (dirty images
survive eviction via the store's pending overlay); the semantics are
specified and tested here for the concurrent-reader work the ROADMAP
names, and victim selection stays O(1) while nothing is pinned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.obs import metrics as _obs_metrics

__all__ = ["BufferManager", "BufferStats"]


class BufferStats:
    """Counters of buffer activity since construction or the last reset."""

    __slots__ = ("accesses", "hits", "faults", "evictions", "writebacks")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.writebacks = 0

    def reset(self) -> None:
        """Zero every counter in place (identity-preserving, so
        scrape-time collectors keep observing this object)."""
        self.accesses = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the buffer (0 if unused)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy, convenient for experiment logs."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "faults": self.faults,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    def __repr__(self) -> str:
        return (
            f"BufferStats(accesses={self.accesses}, hits={self.hits}, "
            f"faults={self.faults}, evictions={self.evictions}, "
            f"writebacks={self.writebacks})"
        )


class BufferManager:
    """A fixed-capacity LRU page cache with hit/fault accounting.

    Parameters
    ----------
    capacity_pages:
        Number of pages the cache holds. ``0`` disables caching (every
        access faults). Use :meth:`from_bytes` to size it like the paper
        ("up to 50 MByte").
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_pages}")
        self._capacity = capacity_pages
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.stats = BufferStats()
        # Callbacks fired with a page id whenever that page leaves the
        # buffer (eviction, invalidation or cold start). A byte-holding
        # page store registers one to keep its frame cache in sync with
        # residency, and detaches it on close.
        self._evict_listeners: list[Callable[[int], None]] = []
        # Resident pages whose latest image has not reached stable
        # storage; flushed through the write-back callback when they
        # leave the buffer, cleared by mark_clean() at a checkpoint.
        self._dirty: set[int] = set()
        # Pin counts: pinned pages are skipped by LRU victim selection.
        self._pins: dict[int, int] = {}
        self._writeback: Callable[[int], None] | None = None
        # Scrape-time metrics collection: the global /metrics series sum
        # live buffers' counters, so access() pays nothing per page.
        _obs_metrics.track_buffer(self)

    @classmethod
    def from_bytes(cls, capacity_bytes: int, page_size: int) -> "BufferManager":
        """Size the buffer by a byte budget, like the paper's 50 MB cache."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        return cls(capacity_bytes // page_size)

    @property
    def capacity_pages(self) -> int:
        return self._capacity

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def access(self, page_id: int) -> bool:
        """Touch a page; returns ``True`` on a hit, ``False`` on a fault.

        A fault brings the page in, evicting the LRU page if full.
        """
        self.stats.accesses += 1
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.stats.hits += 1
            return True
        self.stats.faults += 1
        if self._capacity == 0:
            return False
        if len(self._resident) >= self._capacity:
            victim = self._pick_victim()
            if victim is not None:
                del self._resident[victim]
                self.stats.evictions += 1
                self._depart(victim)
        self._resident[page_id] = None
        return False

    def _pick_victim(self) -> int | None:
        """Least-recently-used *unpinned* resident page.

        With every resident page pinned there is no legal victim; the
        buffer then grows past its capacity rather than evicting a page
        a caller is actively using.
        """
        for page_id in self._resident:
            if not self._pins.get(page_id):
                return page_id
        return None

    def _depart(self, page_id: int) -> None:
        """A page left the buffer: write back if dirty, then notify."""
        if page_id in self._dirty:
            self._dirty.discard(page_id)
            self.stats.writebacks += 1
            if self._writeback is not None:
                self._writeback(page_id)
        self._pins.pop(page_id, None)
        self._notify_evict(page_id)

    # -- dirty tracking -----------------------------------------------------

    def write(self, page_id: int) -> bool:
        """Touch a page for writing: an access that also marks it dirty.

        Returns the hit/fault flag of the underlying :meth:`access`. With
        a zero-capacity buffer the page cannot become resident, so the
        caller keeps responsibility for the image (the writable page
        store routes it straight to its pending overlay).
        """
        hit = self.access(page_id)
        if page_id in self._resident:
            self._dirty.add(page_id)
        return hit

    def mark_dirty(self, page_id: int) -> None:
        """Flag a *resident* page as dirty without touching recency."""
        if page_id not in self._resident:
            raise KeyError(f"page {page_id} is not resident")
        self._dirty.add(page_id)

    def mark_clean(self, page_id: int) -> None:
        """Drop the dirty flag (after a checkpoint persisted the page)."""
        self._dirty.discard(page_id)

    def is_dirty(self, page_id: int) -> bool:
        return page_id in self._dirty

    @property
    def dirty_pages(self) -> set[int]:
        """Snapshot of the dirty resident page ids."""
        return set(self._dirty)

    def set_writeback(self, callback: Callable[[int], None] | None) -> None:
        """Install the single write-back callback for departing dirty pages.

        Fired exactly once per departure, before the ordinary eviction
        listeners, so the owner can copy the frame bytes aside before the
        frame-dropping listener runs.
        """
        self._writeback = callback

    # -- pinning ------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Exempt a resident page from eviction until unpinned (nestable)."""
        if page_id not in self._resident:
            raise KeyError(f"cannot pin page {page_id}: not resident")
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; unpinning an unpinned page is an error."""
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise ValueError(f"page {page_id} is not pinned")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def pin_count(self, page_id: int) -> int:
        return self._pins.get(page_id, 0)

    def add_evict_listener(self, listener: Callable[[int], None]) -> None:
        """Register an additional page-departure callback."""
        self._evict_listeners.append(listener)

    def remove_evict_listener(self, listener: Callable[[int], None]) -> None:
        """Detach a callback registered with :meth:`add_evict_listener`."""
        try:
            self._evict_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_evict(self, page_id: int) -> None:
        for listener in self._evict_listeners:
            listener(page_id)

    def contains(self, page_id: int) -> bool:
        """Residency check that does *not* count as an access."""
        return page_id in self._resident

    def invalidate(self, page_id: int) -> None:
        """Drop a page (e.g. after a node split rewrote it)."""
        if page_id in self._resident:
            if self._pins.get(page_id):
                raise RuntimeError(f"cannot invalidate pinned page {page_id}")
            del self._resident[page_id]
            self._depart(page_id)

    def cold_start(self) -> None:
        """Empty the cache, as the paper does before each experiment.

        Dirty pages are written back (in residency order) before their
        frames drop; pins do not survive a cold start. Keeps the
        statistics; call :meth:`reset_stats` too for a fully fresh
        measurement.
        """
        if self._evict_listeners or self._dirty:
            for page_id in list(self._resident):
                self._depart(page_id)
        self._resident.clear()
        self._dirty.clear()
        self._pins.clear()

    def reset_stats(self) -> None:
        """Zero the counters; the pre-reset totals are folded into the
        global metrics ledger so cumulative series stay monotone."""
        _obs_metrics.retire_buffer_stats(self.stats)
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"BufferManager(capacity={self._capacity} pages, "
            f"resident={len(self._resident)}, {self.stats!r})"
        )
