"""LRU buffer manager over a simulated page store.

The paper's experiments "used up to 50 MByte as database cache which was
cold started before each experiment". The :class:`BufferManager` reproduces
that: it tracks which page ids are resident, evicts least-recently-used
pages when the budget is exhausted, and counts hits and faults. A page
*access* always counts toward the paper's "page accesses" metric; only a
*fault* costs simulated disk time.

The buffer is deliberately independent of page contents — the access
methods in this repository keep their nodes in Python objects and route
every logical node visit through :meth:`BufferManager.access` with the
node's page id, which is exactly the information the paper's metric needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

__all__ = ["BufferManager", "BufferStats"]


class BufferStats:
    """Counters of buffer activity since construction or the last reset."""

    __slots__ = ("accesses", "hits", "faults", "evictions")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the buffer (0 if unused)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy, convenient for experiment logs."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "faults": self.faults,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"BufferStats(accesses={self.accesses}, hits={self.hits}, "
            f"faults={self.faults}, evictions={self.evictions})"
        )


class BufferManager:
    """A fixed-capacity LRU page cache with hit/fault accounting.

    Parameters
    ----------
    capacity_pages:
        Number of pages the cache holds. ``0`` disables caching (every
        access faults). Use :meth:`from_bytes` to size it like the paper
        ("up to 50 MByte").
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_pages}")
        self._capacity = capacity_pages
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.stats = BufferStats()
        # Callbacks fired with a page id whenever that page leaves the
        # buffer (eviction, invalidation or cold start). A byte-holding
        # page store registers one to keep its frame cache in sync with
        # residency, and detaches it on close.
        self._evict_listeners: list[Callable[[int], None]] = []

    @classmethod
    def from_bytes(cls, capacity_bytes: int, page_size: int) -> "BufferManager":
        """Size the buffer by a byte budget, like the paper's 50 MB cache."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        return cls(capacity_bytes // page_size)

    @property
    def capacity_pages(self) -> int:
        return self._capacity

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def access(self, page_id: int) -> bool:
        """Touch a page; returns ``True`` on a hit, ``False`` on a fault.

        A fault brings the page in, evicting the LRU page if full.
        """
        self.stats.accesses += 1
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.stats.hits += 1
            return True
        self.stats.faults += 1
        if self._capacity == 0:
            return False
        if len(self._resident) >= self._capacity:
            evicted, _ = self._resident.popitem(last=False)
            self.stats.evictions += 1
            self._notify_evict(evicted)
        self._resident[page_id] = None
        return False

    def add_evict_listener(self, listener: Callable[[int], None]) -> None:
        """Register an additional page-departure callback."""
        self._evict_listeners.append(listener)

    def remove_evict_listener(self, listener: Callable[[int], None]) -> None:
        """Detach a callback registered with :meth:`add_evict_listener`."""
        try:
            self._evict_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_evict(self, page_id: int) -> None:
        for listener in self._evict_listeners:
            listener(page_id)

    def contains(self, page_id: int) -> bool:
        """Residency check that does *not* count as an access."""
        return page_id in self._resident

    def invalidate(self, page_id: int) -> None:
        """Drop a page (e.g. after a node split rewrote it)."""
        if page_id in self._resident:
            del self._resident[page_id]
            self._notify_evict(page_id)

    def cold_start(self) -> None:
        """Empty the cache, as the paper does before each experiment.

        Keeps the statistics; call :meth:`reset_stats` too for a fully
        fresh measurement.
        """
        if self._evict_listeners:
            for page_id in list(self._resident):
                self._notify_evict(page_id)
        self._resident.clear()

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    def __repr__(self) -> str:
        return (
            f"BufferManager(capacity={self._capacity} pages, "
            f"resident={len(self._resident)}, {self.stats!r})"
        )
