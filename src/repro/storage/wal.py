"""Write-ahead log for the writable Gauss-tree storage path.

Durability protocol (redo-only, physical logging):

* Between checkpoints the main index file is **never** written. Every
  mutating tree operation appends one *transaction* to the sidecar WAL
  file: the full images of the pages it dirtied, the application keys it
  appended to the key table, a ``META`` record carrying the complete
  header-page image, and finally a ``COMMIT`` record — then the WAL is
  flushed (and fsynced, unless the caller opted out).
* **Group commit** batches N logical operations into *one* transaction:
  a :class:`WALGroup` buffers the page images, key appends and header
  meta of every operation in the batch, deduplicating page images (the
  latest image per page id wins — a leaf dirtied by 30 inserts is
  logged once, not 30 times) and seals everything with a single
  ``COMMIT`` record and a single fsync. Because only the final
  ``COMMIT`` makes any of it durable, recovery replays a batch
  all-or-nothing: a crash anywhere inside the group's append tears the
  whole batch away, never a partial one.
* A checkpoint first logs a ``CKPT_BASE`` record holding the *entire*
  key table (making replay independent of the main file), then builds a
  new main-file generation (old bytes + dirty pages + key table +
  header), fsyncs it and publishes it by atomic rename, and only then
  truncates the WAL — ``fsync`` ordering *WAL before the new
  generation before its rename before the truncate*. Already-open
  readers keep the pre-checkpoint inode (reader snapshot isolation).
* Recovery (:func:`repro.gausstree.persist.recover_index`) scans the WAL,
  keeps the longest prefix of checksum-valid records, applies everything
  up to the last ``COMMIT`` and discards the torn tail — so a crash at
  any byte leaves the index equal to a committed prefix of the workload.

Record wire format (little-endian)::

    <payload_len u32> <type u8> <payload bytes> <crc32 u32>

where the CRC covers the type byte plus the payload. The file starts
with the 8-byte magic ``GAUSWAL2``; a missing or mangled magic reads as
an empty log (the writable open then re-initializes it).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Callable

from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

__all__ = [
    "WriteAheadLog",
    "WALGroup",
    "WAL_MAGIC",
    "REC_PAGE",
    "REC_KEYS",
    "REC_META",
    "REC_CKPT_BASE",
    "REC_COMMIT",
]

WAL_MAGIC = b"GAUSWAL2"

REC_PAGE = 1  # payload: <page_id u32> <page image>
REC_KEYS = 2  # payload: UTF-8 JSON list of tagged keys appended this txn
REC_META = 3  # payload: full header-page image (fixed header + free list)
REC_CKPT_BASE = 4  # payload: UTF-8 JSON of the entire key table
REC_COMMIT = 5  # payload: empty

_REC_HEAD = struct.Struct("<IB")
_CRC = struct.Struct("<I")

#: Upper bound on a single record payload; a garbage length field past
#: this reads as a torn tail instead of a giant allocation.
_MAX_PAYLOAD = 1 << 30


class WriteAheadLog:
    """Appender/reader for one index's sidecar WAL file.

    Parameters
    ----------
    path:
        The WAL file, conventionally ``<index path> + ".wal"``.
    fsync:
        Whether :meth:`commit` fsyncs. Disabling trades the durability
        of the newest transactions for insert throughput; recovery
        correctness is unaffected (the tail simply may be shorter).
    file_factory:
        ``open``-compatible callable; the crash tests pass a
        :class:`~repro.storage.fault.FaultInjector` bound opener.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = True,
        file_factory: Callable = open,
    ) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        exists = os.path.exists(self.path)
        self._file = file_factory(self.path, "r+b" if exists else "w+b")
        if not exists:
            self._file.write(WAL_MAGIC)
            self._file.flush()
            if fsync:
                os.fsync(self._file.fileno())
        else:
            self._file.seek(0, os.SEEK_END)

    # -- appending -----------------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> None:
        """Buffer one record; durable only after :meth:`commit`."""
        self._file.write(_REC_HEAD.pack(len(payload), rtype))
        self._file.write(payload)
        self._file.write(_CRC.pack(zlib.crc32(bytes([rtype]) + payload)))

    def append_page(self, page_id: int, image: bytes) -> None:
        self.append(REC_PAGE, struct.pack("<I", page_id) + image)

    def commit(self) -> None:
        """Seal the buffered records with a COMMIT and make them durable.

        Instrumented: counts the commit (and fsync, with its latency)
        on the global metrics registry and adds a ``wal.commit`` span
        when a trace is active — the bottom of the request timeline.
        """
        started = time.perf_counter()
        self.append(REC_COMMIT, b"")
        self._file.flush()
        if self.fsync:
            fsync_started = time.perf_counter()
            os.fsync(self._file.fileno())
            fsync_elapsed = time.perf_counter() - fsync_started
            _obs_metrics.counter(
                "repro_wal_fsync_total", "WAL commit fsync calls."
            ).inc()
            _obs_metrics.histogram(
                "repro_wal_fsync_seconds", "WAL commit fsync latency."
            ).observe(fsync_elapsed)
        _obs_metrics.counter(
            "repro_wal_commits_total", "Sealed WAL transactions."
        ).inc()
        active = _obs_trace.current_trace()
        if active is not None:
            elapsed = time.perf_counter() - started
            active.add(
                "wal.commit",
                start=active.now() - elapsed,
                dur=elapsed,
                status="fsync" if self.fsync else "buffered",
            )

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def tell(self) -> int:
        """Current append offset (a transaction's rollback point)."""
        return self._file.tell()

    def truncate_to(self, offset: int) -> None:
        """Roll back an unsealed transaction to its start offset."""
        self._file.seek(offset)
        self._file.truncate(offset)
        self._file.flush()

    # -- lifecycle -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Bytes currently in the WAL file (records plus magic)."""
        return os.path.getsize(self.path)

    @property
    def is_empty(self) -> bool:
        """Whether the log holds no records (just the magic, or less)."""
        return self.size <= len(WAL_MAGIC)

    def reset(self) -> None:
        """Empty the log (after a completed checkpoint made it redundant)."""
        self._file.seek(0)
        self._file.write(WAL_MAGIC)
        self._file.truncate(len(WAL_MAGIC))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._file.seek(0, os.SEEK_END)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path!r}, fsync={self.fsync})"

    # -- scanning ------------------------------------------------------------

    @staticmethod
    def has_committed(path: str | os.PathLike) -> bool:
        """Cheap streaming probe: does the log hold any COMMIT record?

        Walks record headers (seeking over payloads, no CRC work, O(1)
        memory) — a pre-check for recovery that must stay cheap on the
        multi-hundred-MB WAL a killed bulk insert leaves behind. May
        return a false positive on a log whose tail is garbage (the
        caller's full scan then finds nothing committed); a genuinely
        committed prefix is always detected because garbage can only
        follow valid records.
        """
        try:
            with open(path, "rb") as f:
                if f.read(len(WAL_MAGIC)) != WAL_MAGIC:
                    return False
                f.seek(0, os.SEEK_END)
                total = f.tell()
                offset = len(WAL_MAGIC)
                while offset + _REC_HEAD.size <= total:
                    f.seek(offset)
                    length, rtype = _REC_HEAD.unpack(f.read(_REC_HEAD.size))
                    end = offset + _REC_HEAD.size + length + _CRC.size
                    if length > _MAX_PAYLOAD or end > total:
                        return False
                    if rtype == REC_COMMIT:
                        return True
                    offset = end
        except FileNotFoundError:
            return False
        return False

    @staticmethod
    def committed_length(path: str | os.PathLike) -> int:
        """Byte offset just past the last COMMIT record (streaming).

        Walks record headers like :meth:`has_committed` — seeking over
        payloads, no CRC work, O(1) memory — so WAL shipping
        (:mod:`repro.storage.ship`) can locate the durable prefix of a
        multi-hundred-MB log without materializing any payload. Returns
        ``len(WAL_MAGIC)`` for a missing, magic-less or commit-free log.
        Header-only walking cannot detect a checksum-corrupt committed
        record; the replica's own recovery scan (which does verify CRCs)
        discards such a tail on apply.
        """
        committed_end = len(WAL_MAGIC)
        try:
            with open(path, "rb") as f:
                if f.read(len(WAL_MAGIC)) != WAL_MAGIC:
                    return committed_end
                f.seek(0, os.SEEK_END)
                total = f.tell()
                offset = len(WAL_MAGIC)
                while offset + _REC_HEAD.size <= total:
                    f.seek(offset)
                    length, rtype = _REC_HEAD.unpack(f.read(_REC_HEAD.size))
                    end = offset + _REC_HEAD.size + length + _CRC.size
                    if length > _MAX_PAYLOAD or end > total:
                        break  # torn tail
                    if rtype == REC_COMMIT:
                        committed_end = end
                    offset = end
        except FileNotFoundError:
            pass
        return committed_end

    @staticmethod
    def iter_committed(path: str | os.PathLike):
        """Stream committed transactions: yields ``(records, end)``.

        ``records`` is the transaction's ``(type, payload)`` list
        (without the COMMIT) and ``end`` the byte offset just past its
        COMMIT record. Reads record-by-record, so peak memory is one
        transaction — not the whole log, which a killed bulk insert can
        grow to hundreds of MB. Stops at the first torn or
        checksum-corrupt record; records after the last COMMIT are never
        yielded. A missing file or mangled magic yields nothing.
        """
        try:
            f = open(path, "rb")
        except FileNotFoundError:
            return
        with f:
            if f.read(len(WAL_MAGIC)) != WAL_MAGIC:
                return
            f.seek(0, os.SEEK_END)
            total = f.tell()
            offset = len(WAL_MAGIC)
            f.seek(offset)
            current: list[tuple[int, bytes]] = []
            while offset + _REC_HEAD.size <= total:
                length, rtype = _REC_HEAD.unpack(f.read(_REC_HEAD.size))
                end = offset + _REC_HEAD.size + length + _CRC.size
                if length > _MAX_PAYLOAD or end > total:
                    return  # torn tail
                payload = f.read(length)
                (crc,) = _CRC.unpack(f.read(_CRC.size))
                if crc != zlib.crc32(bytes([rtype]) + payload):
                    return  # corrupt: discard this record and the rest
                if rtype == REC_COMMIT:
                    yield current, end
                    current = []
                else:
                    current.append((rtype, payload))
                offset = end

    @staticmethod
    def scan(path: str | os.PathLike) -> list[list[tuple[int, bytes]]]:
        """Committed transactions in the WAL, oldest first (fully
        materialized — use :meth:`iter_committed` for large logs)."""
        return [records for records, _ in WriteAheadLog.iter_committed(path)]

    @staticmethod
    def scan_detail(
        path: str | os.PathLike,
    ) -> tuple[list[list[tuple[int, bytes]]], int]:
        """Like :meth:`scan`, plus the byte offset just past the last
        COMMIT — the truncation point for discarding an unsealed tail
        before appending (recovery does this to seal its own records)."""
        committed: list[list[tuple[int, bytes]]] = []
        committed_end = len(WAL_MAGIC)
        for records, end in WriteAheadLog.iter_committed(path):
            committed.append(records)
            committed_end = end
        return committed, committed_end


class WALGroup:
    """One batched transaction under construction (group commit).

    Buffers the effects of 1..N logical operations in memory and writes
    them to a :class:`WriteAheadLog` as a *single* transaction — one run
    of ``PAGE``/``KEYS``/``META`` records sealed by one ``COMMIT`` and
    made durable by one fsync. Page images deduplicate as they are
    added: :meth:`add_page` keeps only the **latest** image per page id,
    so a page dirtied by every operation of the batch is logged once
    (this is what collapses the ~30 KB-per-insert full-page-image cost
    of per-operation commits).

    Durability is all-or-nothing by construction: nothing reaches the
    log until :meth:`commit_to`, and recovery only replays record runs
    that end in a ``COMMIT`` — a crash anywhere inside the group's
    append discards the entire batch, never a prefix of it.
    """

    def __init__(self) -> None:
        #: Latest image per page id, in first-touch order (dict
        #: preserves insertion order; re-adding only swaps the image).
        self._pages: dict[int, bytes] = {}
        #: Tagged-JSON key-table entries appended by the batch.
        self._keys: list = []
        #: The final header-page image (META); last set wins.
        self._meta: bytes | None = None

    def add_page(self, page_id: int, image: bytes) -> None:
        """Record the latest image of one page (dedup: replaces any
        image a previous operation of this batch logged for it)."""
        self._pages[page_id] = image

    def add_keys(self, entries: list) -> None:
        """Append tagged key-table entries (already JSON-safe encoded)."""
        self._keys.extend(entries)

    def set_meta(self, image: bytes) -> None:
        """Set the header-page image the transaction commits under."""
        self._meta = image

    @property
    def n_pages(self) -> int:
        """Distinct page images currently buffered (after dedup)."""
        return len(self._pages)

    @property
    def is_empty(self) -> bool:
        """Whether the group holds nothing worth committing."""
        return not self._pages and not self._keys and self._meta is None

    def commit_to(self, wal: WriteAheadLog) -> None:
        """Append the buffered batch to ``wal`` as one sealed transaction.

        Writes the deduplicated page images (first-touch order), one
        ``KEYS`` record if any keys were appended, the ``META`` header
        image, then ``COMMIT`` — flushed and fsynced once (under the
        log's fsync setting). The caller owns rollback on failure (see
        :meth:`repro.gausstree.persist.TreeWriter.commit`): record the
        log's offset before calling and truncate back to it if this
        raises.
        """
        if self._meta is None:
            raise ValueError(
                "a WAL group needs its META header image before commit"
            )
        _obs_metrics.histogram(
            "repro_wal_group_pages",
            "Deduplicated page images per group-commit transaction.",
            buckets=_obs_metrics.SIZE_BUCKETS,
        ).observe(self.n_pages)
        for page_id, image in self._pages.items():
            wal.append_page(page_id, image)
        if self._keys:
            wal.append(
                REC_KEYS, json.dumps(self._keys).encode("utf-8")
            )
        wal.append(REC_META, self._meta)
        wal.commit()

    def __repr__(self) -> str:
        return (
            f"WALGroup(pages={len(self._pages)}, keys={len(self._keys)})"
        )
