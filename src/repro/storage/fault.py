"""Crash injection for the durability tests: files that die mid-write.

The write-ahead path of the writable :class:`~repro.storage.filestore.
FilePageStore` claims a precise contract: *whatever the process was doing
when it died, reopening the index recovers a consistent state equal to a
prefix of the committed operations*. Example tests cannot exercise that
claim — the interesting failures hide at arbitrary byte offsets inside a
WAL record, a page image or the header. This module provides the test
double the property tests drive instead:

* :class:`FaultInjector` holds a byte budget shared by every file it
  opens. Once the budget is exhausted, the *next* written byte raises
  :class:`InjectedCrash` — after persisting the part of the write that
  still fit, i.e. writes tear mid-record and mid-page exactly like a
  real power cut under a non-atomic disk.
* :class:`FaultyFile` wraps one real file object and charges each write
  against the shared budget. Reads, seeks and closes are free: a crashed
  "process" in a test can still be cleaned up, and recovery code can be
  pointed at the same injector to crash *during recovery* too.

The model treats every byte that was written as durable (no reordering,
no lost OS cache); ``fsync`` is therefore a free no-op here. That is the
conservative half of the torn-write failure model and it is the half the
WAL's checksums and commit records must already survive.

**Process-level faults.** The cluster failover tests need a coarser
weapon than torn writes: a whole pool worker dying mid-batch.
:class:`WorkerKillSwitch` is a picklable, filesystem-armed kill switch —
``arm()`` drops a sentinel file, and the *first* worker process whose
runner calls :meth:`~WorkerKillSwitch.maybe_kill` atomically claims it
(``os.unlink``) and hard-exits, simulating an OOM-kill / node loss.
Exactly one worker dies per arming no matter how many race for the
sentinel. :func:`killing_runner` wraps any pool runner with that check.
"""

from __future__ import annotations

import os
from typing import Callable, IO

__all__ = [
    "InjectedCrash",
    "FaultInjector",
    "FaultyFile",
    "WorkerKillSwitch",
    "killing_runner",
]


class InjectedCrash(Exception):
    """Raised by a :class:`FaultyFile` when the write budget is exhausted."""


class FaultInjector:
    """A shared byte budget over every file opened through :meth:`open`.

    Parameters
    ----------
    budget_bytes:
        Total bytes that may still be written across all files before
        every further write raises :class:`InjectedCrash`.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError(f"budget must be >= 0, got {budget_bytes}")
        self.remaining = budget_bytes
        self.crashed = False

    def open(self, path: str | os.PathLike, mode: str = "rb") -> "FaultyFile":
        """Drop-in replacement for :func:`open` (binary modes only)."""
        return FaultyFile(open(path, mode), self)

    def charge(self, nbytes: int) -> int:
        """Consume budget for a write; returns how many bytes may land.

        Raises :class:`InjectedCrash` immediately when nothing may."""
        if self.remaining <= 0:
            self.crashed = True
            raise InjectedCrash("write budget exhausted")
        allowed = min(nbytes, self.remaining)
        self.remaining -= allowed
        return allowed


class FaultyFile:
    """A binary file wrapper whose writes die after N shared budget bytes.

    A write larger than the remaining budget persists its first
    ``remaining`` bytes (a torn write) and then raises
    :class:`InjectedCrash`. All other operations pass through to the
    wrapped file object.
    """

    def __init__(self, raw: IO[bytes], injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    # -- charged operations --------------------------------------------------

    def write(self, data: bytes) -> int:
        data = bytes(data)
        allowed = self._injector.charge(len(data))
        if allowed < len(data):
            self._raw.write(data[:allowed])
            self._raw.flush()
            self._injector.crashed = True
            raise InjectedCrash(
                f"crashed after {allowed} of a {len(data)}-byte write"
            )
        return self._raw.write(data)

    def truncate(self, size: int | None = None) -> int:
        # Model a truncate as a (cheap) metadata write: it either happens
        # or the crash strikes first.
        self._injector.charge(1)
        return self._raw.truncate(size)

    # -- free passthrough ----------------------------------------------------

    def read(self, size: int = -1) -> bytes:
        return self._raw.read(size)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def flush(self) -> None:
        self._raw.flush()

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FaultyFile({getattr(self._raw, 'name', '?')!r}, "
            f"remaining={self._injector.remaining})"
        )


class WorkerKillSwitch:
    """A picklable one-shot kill switch for pool worker processes.

    State lives in the filesystem (a sentinel file), not the object, so
    the switch survives pickling into fork/spawn workers and arming it
    from the parent is visible to all of them. ``os.unlink`` is atomic:
    when several workers race :meth:`maybe_kill`, exactly one wins the
    unlink and dies; the rest see ``FileNotFoundError`` and survive.
    """

    def __init__(self, path: str | os.PathLike, exit_code: int = 137) -> None:
        self.path = os.fspath(path)
        self.exit_code = exit_code

    def arm(self) -> None:
        """Sentence the next worker that checks in to death."""
        with open(self.path, "w"):
            pass

    @property
    def armed(self) -> bool:
        return os.path.exists(self.path)

    def maybe_kill(self) -> None:
        """Die (hard, no cleanup) if this process claims the sentinel."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            return
        os._exit(self.exit_code)


class _KillingRunner:
    """Picklable runner wrapper: check the kill switch, then delegate."""

    def __init__(self, runner: Callable, switch: WorkerKillSwitch) -> None:
        self._runner = runner
        self._switch = switch

    def __call__(self, session, payload):
        self._switch.maybe_kill()
        return self._runner(session, payload)


def killing_runner(runner: Callable, switch: WorkerKillSwitch) -> Callable:
    """Wrap a pool runner so each call first offers itself to ``switch``.

    The wrapper is a module-level class instance, hence picklable into
    :class:`~repro.cluster.pool.ProcessPool` workers.
    """
    return _KillingRunner(runner, switch)
