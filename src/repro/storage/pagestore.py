"""Simulated paged storage: page id allocation and access accounting.

A :class:`PageStore` plays the role of the disk file an index lives in. It
allocates page ids, routes every logical page access through an LRU
:class:`~repro.storage.buffer.BufferManager`, and converts faults into
simulated IO seconds via a :class:`~repro.storage.costmodel.DiskCostModel`.

In-memory access methods (Gauss-tree, X-tree, sequential scan) do not
serialise their nodes on every visit — that would only burn Python CPU
without changing any reported metric — but the byte-level encoding exists
and is round-trip tested in :mod:`repro.storage.serializer`, and
capacities are *derived* from the byte layout, so the page counts are the
ones a byte-faithful implementation shows. The byte-faithful
implementation itself is :class:`~repro.storage.filestore.FilePageStore`:
a disk-opened Gauss-tree (``GaussTree.open``) reads, caches and decodes
real page bytes through the same buffer and accounting.
"""

from __future__ import annotations

from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel

__all__ = ["PageStore", "AccessLog"]


class AccessLog:
    """Per-query access counters, reset by the caller between queries.

    ``pages_written`` counts page-image installs on the writable storage
    path; it is kept separate from ``pages_accessed`` because the
    paper's page-access metric is defined over query reads only.
    ``evictions`` counts LRU evictions this query forced — the signal
    that a query's working set outran the buffer, surfaced through
    ``QueryStats.buffer_evictions`` into the slow-query log.
    """

    __slots__ = (
        "pages_accessed", "page_faults", "io_seconds", "pages_written",
        "evictions",
    )

    def __init__(self) -> None:
        self.pages_accessed = 0
        self.page_faults = 0
        self.io_seconds = 0.0
        self.pages_written = 0
        self.evictions = 0

    def reset(self) -> None:
        self.pages_accessed = 0
        self.page_faults = 0
        self.io_seconds = 0.0
        self.pages_written = 0
        self.evictions = 0


class PageStore:
    """Allocates pages and accounts for their accesses.

    Parameters
    ----------
    buffer:
        The LRU buffer in front of the simulated disk. Defaults to an
        unbounded-feeling large cache; experiments pass a sized one.
    cost_model:
        Converts page faults into simulated seconds.
    """

    def __init__(
        self,
        buffer: BufferManager | None = None,
        cost_model: DiskCostModel | None = None,
    ) -> None:
        self.buffer = buffer if buffer is not None else BufferManager(1 << 20)
        self.cost_model = cost_model if cost_model is not None else DiskCostModel()
        self._next_page_id = 0
        self._allocated: set[int] = set()
        self.log = AccessLog()
        # Buffer-eviction count at begin_query(); evictions only happen
        # inside BufferManager.access(), so the per-query delta is exact
        # and costs one subtraction on the fault path, nothing on hits.
        self._evictions_base = self.buffer.stats.evictions

    # -- allocation --------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a fresh page id."""
        pid = self._next_page_id
        self._next_page_id += 1
        self._allocated.add(pid)
        return pid

    def free(self, page_id: int) -> None:
        """Release a page (after node merges/deletes)."""
        self._allocated.discard(page_id)
        self.buffer.invalidate(page_id)

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)

    # -- access ------------------------------------------------------------

    def read(self, page_id: int) -> None:
        """One random page read through the buffer."""
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} is not allocated")
        self.log.pages_accessed += 1
        hit = self.buffer.access(page_id)
        if not hit:
            self.log.page_faults += 1
            self.log.io_seconds += self.cost_model.random_read_seconds(1)
            self.log.evictions = max(
                0, self.buffer.stats.evictions - self._evictions_base
            )

    def read_sequential_run(self, page_ids: list[int]) -> None:
        """Read a contiguous run of pages at streaming cost.

        Pages already resident are still *accessed* (the paper counts
        logical accesses); only the faulted ones contribute transfer time,
        and the run pays a single positioning delay if it faults at all.
        """
        faulted = 0
        for pid in page_ids:
            if pid not in self._allocated:
                raise KeyError(f"page {pid} is not allocated")
            self.log.pages_accessed += 1
            if not self.buffer.access(pid):
                self.log.page_faults += 1
                faulted += 1
        if faulted:
            self.log.io_seconds += self.cost_model.sequential_read_seconds(faulted)
            self.log.evictions = max(
                0, self.buffer.stats.evictions - self._evictions_base
            )

    # -- experiment plumbing -----------------------------------------------

    def begin_query(self) -> None:
        """Reset the per-query access log."""
        self.log.reset()
        self._evictions_base = self.buffer.stats.evictions

    def cold_start(self) -> None:
        """Flush the buffer before an experiment, as the paper does."""
        self.buffer.cold_start()

    def __repr__(self) -> str:
        return (
            f"PageStore(allocated={len(self._allocated)}, "
            f"buffer={self.buffer.capacity_pages} pages)"
        )
