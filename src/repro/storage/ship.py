"""WAL shipping: stream a primary index's committed txns to replicas.

The group-commit WAL (:mod:`repro.storage.wal`) is a self-describing,
checksummed redo stream, so replica catch-up *is* crash recovery run on
someone else's log: a shipper appends the primary WAL's newly committed
bytes after the replica's own WAL magic and calls
:func:`repro.gausstree.persist.recover_index` on the replica, which
folds and publishes them exactly as it would after a crash. Two
consequences fall out for free:

* **Durable-prefix invariant.** Only bytes up to the primary's last
  ``COMMIT`` are ever shipped (located by the streaming
  :meth:`~repro.storage.wal.WriteAheadLog.committed_length`, never a
  torn tail), and replica apply is the recovery path — so a replica is
  always equal to some committed prefix of the primary's history, never
  a state the primary could not itself recover to.
* **Live readers are safe.** Recovery publishes a new replica
  generation by atomic rename; a server session already reading the
  replica keeps its pre-apply snapshot and the next open sees the
  shipped state.

A :class:`WALShipper` tracks one shipped byte offset per replica.
When the primary checkpoints, its WAL resets and the shipped offset
suddenly exceeds the log — the shipper detects this and falls back to
a **full resync** (:func:`create_replica`: copy the main file plus the
committed WAL prefix, then recover). The owner of both sides (the
sharded backend) avoids that copy on its own checkpoints by shipping
*first* and then calling :meth:`WALShipper.note_reset`, which marks the
replicas logically current with the freshly checkpointed primary.

Layering: this module sits in ``storage`` next to ``wal``/``fault`` but
replica apply needs the index-level replay, so
:mod:`repro.gausstree.persist` is imported lazily inside functions.
"""

from __future__ import annotations

import os
import shutil

from repro.storage.wal import WAL_MAGIC, WriteAheadLog

__all__ = ["replica_path", "create_replica", "WALShipper"]


def replica_path(primary: str | os.PathLike, k: int) -> str:
    """Conventional path of replica ``k`` (1-based): ``<primary>.r<k>``."""
    return f"{os.fspath(primary)}.r{k}"


def create_replica(
    primary_path: str | os.PathLike, replica: str | os.PathLike
) -> str:
    """Full resync: clone a primary index file into a replica.

    Copies the primary's main file and the committed prefix of its WAL
    (a torn tail is never shipped), then replays the WAL into the
    replica via the ordinary recovery path so the replica's main file is
    self-contained and its WAL empty. Returns the replica path. The
    caller must ensure the primary is quiescent or its WAL append-only
    for the duration (the sharded backend ships between batches, never
    mid-commit).
    """
    from repro.gausstree.persist import recover_index, wal_path_for

    primary_path = os.fspath(primary_path)
    replica = os.fspath(replica)
    shutil.copyfile(primary_path, replica)
    src_wal = wal_path_for(primary_path)
    dst_wal = wal_path_for(replica)
    end = WriteAheadLog.committed_length(src_wal)
    with open(dst_wal, "wb") as out:
        if end > len(WAL_MAGIC):
            with open(src_wal, "rb") as src:
                remaining = end
                while remaining > 0:
                    chunk = src.read(min(1 << 20, remaining))
                    if not chunk:
                        break
                    out.write(chunk)
                    remaining -= len(chunk)
        else:
            out.write(WAL_MAGIC)
        out.flush()
        os.fsync(out.fileno())
    recover_index(replica)
    return replica


class WALShipper:
    """Incremental shipper from one primary index to its replicas.

    Tracks, per replica, how many primary WAL bytes have been applied;
    :meth:`ship` forwards only the newly committed suffix. Replicas that
    cannot be caught up incrementally (primary WAL reset under us, a
    failed previous apply, a missing replica file) are rebuilt with
    :func:`create_replica`.
    """

    def __init__(
        self,
        primary_path: str | os.PathLike,
        replica_paths: list[str],
        *,
        resync: bool = True,
    ) -> None:
        """Bind to a primary and its replica paths.

        With ``resync`` (the default) every replica is fully resynced up
        front, so the shipper starts from a known-identical state; pass
        ``resync=False`` when the replicas are known current (e.g. just
        created by ``build_shards``) and only the WAL tail matters.
        """
        from repro.gausstree.persist import wal_path_for

        self.primary_path = os.fspath(primary_path)
        self.replica_paths = [os.fspath(p) for p in replica_paths]
        self._offsets: dict[str, int] = {}
        # A resync folds the primary WAL's committed prefix into the
        # replica, so the shipped offset starts past it — restarting at
        # the magic would re-apply those txns, and replay is idempotent
        # for page images but NOT for the incremental key-table appends
        # (a duplicated append shifts every later key slot).
        src_wal = wal_path_for(self.primary_path)
        synced = (
            WriteAheadLog.committed_length(src_wal)
            if os.path.exists(src_wal)
            else len(WAL_MAGIC)
        )
        for rp in self.replica_paths:
            if resync or not os.path.exists(rp):
                create_replica(self.primary_path, rp)
                self._offsets[rp] = synced
            else:
                self._offsets[rp] = len(WAL_MAGIC)

    def ship(self) -> int:
        """Forward newly committed primary WAL bytes to every replica.

        Returns the number of replicas that received (or were resynced
        to) new state. Apply reuses the recovery path, so each replica
        publishes a new generation atomically; a reader mid-query on a
        replica keeps its snapshot.
        """
        from repro.gausstree.persist import recover_index, wal_path_for

        src_wal = wal_path_for(self.primary_path)
        end = WriteAheadLog.committed_length(src_wal)
        updated = 0
        for rp in self.replica_paths:
            offset = self._offsets[rp]
            if offset > end or not os.path.exists(rp):
                # Primary WAL reset (checkpoint we were not told about)
                # or replica lost: incremental catch-up is impossible.
                create_replica(self.primary_path, rp)
                self._offsets[rp] = end
                updated += 1
                continue
            if offset == end:
                continue  # nothing new committed
            with open(src_wal, "rb") as src:
                src.seek(offset)
                delta = src.read(end - offset)
            dst_wal = wal_path_for(rp)
            try:
                with open(dst_wal, "r+b" if os.path.exists(dst_wal) else "w+b") as out:
                    out.seek(0)
                    if out.read(len(WAL_MAGIC)) != WAL_MAGIC:
                        out.seek(0)
                        out.write(WAL_MAGIC)
                    out.seek(0, os.SEEK_END)
                    out.write(delta)
                    out.flush()
                    os.fsync(out.fileno())
                recover_index(rp)
            except Exception:
                # Half-applied replica: next ship() rebuilds it.
                self._offsets[rp] = end + 1
                raise
            self._offsets[rp] = end
            updated += 1
        return updated

    def note_reset(self) -> None:
        """The primary just checkpointed *after* a ship(): replicas are
        logically current, so restart the offsets at the (now empty)
        primary WAL's magic instead of forcing a full resync."""
        for rp in self.replica_paths:
            self._offsets[rp] = len(WAL_MAGIC)

    def __repr__(self) -> str:
        return (
            f"WALShipper({self.primary_path!r}, "
            f"replicas={len(self.replica_paths)})"
        )
