"""Observability: metrics registry, request tracing, slow-query log.

The cross-cutting layer every serving stack needs three views from:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms with Prometheus text exposition, instrumented
  at the coarse seams (admission, coalescing, session pool, shard
  fan-out, page buffer, WAL) and served by ``GET /metrics`` on both
  serving tiers;
* **tracing** (:mod:`repro.obs.trace`) — per-request span trees
  propagated by contextvar from the wire down to WAL commit, attached
  to ``ResultSet.trace`` and returned on the wire when a request
  carries a ``trace`` field (JSONL) or ``X-Repro-Trace`` header (HTTP);
* **the slow-query log** (:mod:`repro.obs.slowlog`) — JSONL entries
  (spec + span tree + ``explain()`` plan + observed stats) for queries
  over a configurable threshold, rendered by ``repro trace <file>``.

Instrumentation is on by default and costs <2% on the serving headline
(asserted by ``benchmarks/bench_serve.py``); :class:`NullRegistry`
turns it off entirely. The metric catalogue and span taxonomy live in
``docs/observability.md``.
"""

from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_global_registry,
    set_global_registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    Span,
    Trace,
    current_trace,
    format_span_tree,
    span,
    tracing,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SlowQueryLog",
    "Span",
    "Trace",
    "current_trace",
    "format_span_tree",
    "get_global_registry",
    "set_global_registry",
    "span",
    "tracing",
]
