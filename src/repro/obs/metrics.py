"""Zero-dependency metrics: counters, gauges, histograms, Prometheus text.

The registry is deliberately tiny — three metric kinds, optional labels,
fixed-bucket histograms — because the serving tier instruments *coarse*
seams (one increment per coalesced batch, per WAL commit, per shard
fan-out), never per-object hot loops. Increments are plain attribute
updates under the GIL: no lock is taken on the write path, which is the
"lock-cheap" contract — a reader may observe a value mid-update from
another thread, and two racing threads can in principle lose an
increment, but every instrumented seam here is either single-threaded
(the asyncio event loop, one executor thread per pool slot) or coarse
enough that the approximation is invisible next to the work it counts.

Two registries coexist by convention:

* each server owns a private :class:`MetricsRegistry` (admission,
  coalescing, pool, request counters), so two servers in one process —
  the common test topology — never cross-contaminate; and
* one process-global registry (:func:`get_global_registry`) carries the
  storage- and cluster-level series (WAL fsyncs, group-commit batch
  sizes, fan-out latency, failovers, buffer hit ratios) that have no
  natural per-server owner.

``GET /metrics`` renders both, concatenated. Swapping the global
registry for a :class:`NullRegistry` (``set_global_registry``) turns
every instrument site into a no-op for zero-cost benchmark runs; the
module-level :func:`counter`/:func:`gauge`/:func:`histogram` helpers
resolve the global registry per call precisely so the swap takes
effect everywhere at once.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Callable, Iterable, Sequence

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "SIZE_BUCKETS",
    "counter",
    "gauge",
    "get_global_registry",
    "histogram",
    "set_global_registry",
    "track_buffer",
]

#: The Prometheus text exposition content type served by ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default buckets for latency histograms (seconds, 0.5 ms – 5 s).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default buckets for size/count histograms (batch sizes, page counts).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: float) -> str:
    """Prometheus number formatting: integral floats print as integers."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing value (or a callback read at scrape).

    Callback-backed counters expose a count that *already exists*
    somewhere (an :class:`~repro.serve.AdmissionQueue` attribute, a
    pool counter) without duplicating the bookkeeping — the single
    source of truth stays where it is and the registry reads it lazily.
    """

    __slots__ = ("_value", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._value = 0
        self._callback = callback

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0 to stay a counter)."""
        self._value += amount

    @property
    def value(self) -> float:
        """Current count (the callback's value when callback-backed)."""
        if self._callback is not None:
            return self._callback()
        return self._value


class Gauge:
    """A value that can go up and down (or a callback read at scrape)."""

    __slots__ = ("_value", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._value = 0
        self._callback = callback

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value (the callback's value when callback-backed)."""
        if self._callback is not None:
            return self._callback()
        return self._value


class Histogram:
    """Fixed-bucket histogram: cumulative ``le`` buckets at exposition.

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the overflow. ``observe`` is one bisect plus two
    adds — cheap enough for per-batch seams, and the bucket layout is
    fixed at registration so exposition never allocates.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"buckets must be ascending, got {bounds!r}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sum += value
        self._count += 1
        self._counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def summary(self) -> dict:
        """JSON-friendly view: count, sum, mean, cumulative buckets."""
        cumulative = 0
        buckets = {}
        for le, n in zip(self.buckets, self._counts):
            cumulative += n
            buckets[_format_value(le)] = cumulative
        buckets["+Inf"] = self._count
        return {
            "count": self._count,
            "sum": round(self._sum, 6),
            "mean": round(self._sum / self._count, 6) if self._count else 0.0,
            "buckets": buckets,
        }


class _Family:
    """One named metric and its per-label-set children.

    With no ``labelnames`` the family has a single implicit child and
    forwards ``inc``/``set``/``dec``/``observe``/``value``/``summary``
    to it, so unlabeled metrics read exactly like bare children.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_make")

    def __init__(self, name, help_text, kind, labelnames, make_child):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: dict = {}
        self._make = make_child
        if not self.labelnames:
            self._children[()] = make_child()

    def labels(self, **labelvalues: str):
        """The child metric for one concrete label assignment."""
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    # -- unlabeled convenience delegation ---------------------------------
    def inc(self, amount: float = 1) -> None:
        """Forward to the unlabeled child."""
        self._children[()].inc(amount)

    def dec(self, amount: float = 1) -> None:
        """Forward to the unlabeled child."""
        self._children[()].dec(amount)

    def set(self, value: float) -> None:
        """Forward to the unlabeled child."""
        self._children[()].set(value)

    def observe(self, value: float) -> None:
        """Forward to the unlabeled child."""
        self._children[()].observe(value)

    @property
    def value(self) -> float:
        """The unlabeled child's value."""
        return self._children[()].value

    def summary(self) -> dict:
        """The unlabeled child's histogram summary."""
        return self._children[()].summary()

    def items(self):
        """``(labelvalues_tuple, child)`` pairs, label-sorted."""
        return sorted(self._children.items())


class MetricsRegistry:
    """Registers metric families by name and renders Prometheus text.

    Registration is idempotent: asking for an existing name returns the
    same family (the first registration's help text and buckets win),
    so instrument sites can re-declare a metric wherever it is used
    without coordinating a central catalogue.
    """

    #: False only on :class:`NullRegistry`; lets instrument sites skip
    #: optional work (building label dicts, timing) when metrics are off.
    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(self, name, kind, help_text, labelnames, make_child):
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = _Family(
                    name, help_text, kind, labelnames, make_child
                )
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}"
                )
            return fam

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> _Family:
        """Register (or fetch) a counter family."""
        if callback is not None and labelnames:
            raise ValueError("callback-backed metrics cannot take labels")
        return self._family(
            name, "counter", help_text, labelnames,
            lambda: Counter(callback),
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> _Family:
        """Register (or fetch) a gauge family."""
        if callback is not None and labelnames:
            raise ValueError("callback-backed metrics cannot take labels")
        return self._family(
            name, "gauge", help_text, labelnames, lambda: Gauge(callback)
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> _Family:
        """Register (or fetch) a fixed-bucket histogram family."""
        bounds = tuple(buckets)
        return self._family(
            name, "histogram", help_text, labelnames,
            lambda: Histogram(bounds),
        )

    def render(self) -> str:
        """The registry as Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for fam in families:
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for labelvalues, child in fam.items():
                if fam.kind == "histogram":
                    cumulative = 0
                    for le, n in zip(child.buckets, child._counts):
                        cumulative += n
                        labels = _format_labels(
                            fam.labelnames + ("le",),
                            labelvalues + (_format_value(le),),
                        )
                        lines.append(
                            f"{fam.name}_bucket{labels} {cumulative}"
                        )
                    labels = _format_labels(
                        fam.labelnames + ("le",), labelvalues + ("+Inf",)
                    )
                    lines.append(f"{fam.name}_bucket{labels} {child.count}")
                    plain = _format_labels(fam.labelnames, labelvalues)
                    lines.append(
                        f"{fam.name}_sum{plain} {_format_value(child.sum)}"
                    )
                    lines.append(f"{fam.name}_count{plain} {child.count}")
                else:
                    labels = _format_labels(fam.labelnames, labelvalues)
                    lines.append(
                        f"{fam.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-friendly view of every family, for ``/stats`` embedding."""
        out: dict = {}
        with self._lock:
            families = list(self._families.values())
        for fam in families:
            if fam.labelnames:
                value: dict = {}
                for labelvalues, child in fam.items():
                    key = ",".join(
                        f"{n}={v}"
                        for n, v in zip(fam.labelnames, labelvalues)
                    )
                    value[key] = (
                        child.summary()
                        if fam.kind == "histogram"
                        else child.value
                    )
            elif fam.kind == "histogram":
                value = fam.summary()
            else:
                value = fam.value
            out[fam.name] = value
        return out


class _NoopMetric:
    """Shared do-nothing child handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """No-op."""

    def dec(self, amount: float = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def labels(self, **labelvalues: str) -> "_NoopMetric":
        """Return itself — labels are discarded."""
        return self

    @property
    def value(self) -> float:
        """Always zero."""
        return 0

    def summary(self) -> dict:
        """An empty histogram summary."""
        return {"count": 0, "sum": 0.0, "mean": 0.0, "buckets": {}}


_NOOP = _NoopMetric()


class NullRegistry(MetricsRegistry):
    """A registry whose metrics all discard writes and render nothing.

    Drop-in for :class:`MetricsRegistry` wherever zero instrumentation
    cost is wanted (``repro serve --no-metrics``, the overhead leg of
    ``benchmarks/bench_serve.py``).
    """

    enabled = False

    def counter(self, name, help_text="", labelnames=(), callback=None):
        """Return the shared no-op metric."""
        return _NOOP

    def gauge(self, name, help_text="", labelnames=(), callback=None):
        """Return the shared no-op metric."""
        return _NOOP

    def histogram(self, name, help_text="", buckets=(), labelnames=()):
        """Return the shared no-op metric."""
        return _NOOP

    def render(self) -> str:
        """Always empty."""
        return ""

    def snapshot(self) -> dict:
        """Always empty."""
        return {}


_global_registry: MetricsRegistry = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-global registry carrying storage/cluster series."""
    return _global_registry


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (e.g. for a :class:`NullRegistry`);
    returns the previous one so callers can restore it."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def counter(name, help_text="", labelnames=(), callback=None):
    """``get_global_registry().counter(...)`` — resolved per call so a
    registry swap takes effect at every instrument site at once."""
    return _global_registry.counter(name, help_text, labelnames, callback)


def gauge(name, help_text="", labelnames=(), callback=None):
    """``get_global_registry().gauge(...)``, resolved per call."""
    return _global_registry.gauge(name, help_text, labelnames, callback)


def histogram(name, help_text="", buckets=LATENCY_BUCKETS, labelnames=()):
    """``get_global_registry().histogram(...)``, resolved per call."""
    return _global_registry.histogram(name, help_text, buckets, labelnames)


# -- buffer collection -----------------------------------------------------
#
# BufferManager.access() is the hottest loop in the system; it must not
# pay one registry call per page touch. Instead every live buffer is
# tracked in a WeakSet and its counters are *summed at scrape time*;
# totals from buffers that have since been garbage-collected are folded
# into a retirement ledger so the exposed counters stay monotone across
# session close/reopen.

_TRACKED_BUFFERS: "weakref.WeakSet" = weakref.WeakSet()
_RETIRED_TOTALS = {
    "accesses": 0, "hits": 0, "faults": 0, "evictions": 0, "writebacks": 0,
}


def retire_buffer_stats(stats) -> None:
    """Fold a ``BufferStats``'s counters into the retirement ledger.

    Called when a buffer is garbage-collected and by
    ``BufferManager.reset_stats`` (which zeroes the live object), so
    the global cumulative series never move backwards.
    """
    for field in _RETIRED_TOTALS:
        _RETIRED_TOTALS[field] += getattr(stats, field, 0)


def track_buffer(buffer) -> None:
    """Register a live ``BufferManager`` for scrape-time collection.

    Called from ``BufferManager.__init__``; costs nothing per access.
    The buffer's final counters are folded into a retirement ledger
    when it is garbage-collected, keeping the global series monotone.
    """
    _TRACKED_BUFFERS.add(buffer)
    weakref.finalize(buffer, retire_buffer_stats, buffer.stats)


def buffer_total(field: str) -> int:
    """Sum ``field`` over live tracked buffers plus retired totals."""
    live = sum(getattr(b.stats, field, 0) for b in _TRACKED_BUFFERS)
    return _RETIRED_TOTALS.get(field, 0) + live


def live_buffer_count() -> int:
    """How many ``BufferManager`` instances are currently tracked."""
    return len(_TRACKED_BUFFERS)


def register_buffer_collectors(registry: MetricsRegistry) -> None:
    """Install the scrape-time buffer series on ``registry``.

    Idempotent; the global registry gets them at import, but a server
    that owns a private registry may want the buffer view too.
    """
    registry.counter(
        "repro_buffer_accesses_total",
        "Page-buffer lookups across all live (and retired) buffers.",
        callback=lambda: buffer_total("accesses"),
    )
    registry.counter(
        "repro_buffer_hits_total",
        "Page-buffer hits (page already resident).",
        callback=lambda: buffer_total("hits"),
    )
    registry.counter(
        "repro_buffer_faults_total",
        "Page-buffer misses that went to disk.",
        callback=lambda: buffer_total("faults"),
    )
    registry.counter(
        "repro_buffer_evictions_total",
        "LRU evictions across all buffers.",
        callback=lambda: buffer_total("evictions"),
    )
    registry.counter(
        "repro_buffer_writebacks_total",
        "Dirty pages written back on eviction.",
        callback=lambda: buffer_total("writebacks"),
    )
    registry.gauge(
        "repro_buffer_hit_ratio",
        "Aggregate hit ratio over all buffers (0 when unused).",
        callback=lambda: (
            buffer_total("hits") / max(buffer_total("accesses"), 1)
        ),
    )
    registry.gauge(
        "repro_buffers_live",
        "BufferManager instances currently alive in this process.",
        callback=live_buffer_count,
    )


register_buffer_collectors(_global_registry)
