"""Request tracing: trace IDs, span trees, contextvar propagation.

A :class:`Trace` is one request's timeline — a tree of :class:`Span`
nodes (``name, start, dur, shard, pages, status``, seconds relative to
the trace's epoch). The active trace rides a :mod:`contextvars`
variable, so the instrumented seams (``Session.execute_many``, the
sharded fan-out, ``WriteAheadLog.commit``) attach spans without any
parameter threading — and without cost when no trace is active, since
every seam guards on :func:`current_trace` first.

One asyncio caveat drives the server-side usage: ``run_in_executor``
does *not* propagate context, so the serving tier activates the trace
*inside* the executor-run function (see ``repro/serve/server.py``),
which then covers the whole synchronous engine path on that thread.

Trace IDs are 16 hex chars minted client- or server-side; a client may
supply its own (the ``trace`` wire field / ``X-Repro-Trace`` header)
to correlate spans with its logs.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "format_span_tree",
    "mint_trace_id",
    "span",
    "tracing",
]


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace ID."""
    return os.urandom(8).hex()


class Span:
    """One timed node in a trace tree.

    ``start`` is seconds since the owning trace's epoch, ``dur`` the
    span's length in seconds. ``shard``/``pages``/``count``/``status``
    are optional annotations (shard label, page accesses, batch width,
    outcome) serialized only when set.
    """

    __slots__ = ("name", "start", "dur", "shard", "pages", "count",
                 "status", "children")

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        dur: float = 0.0,
        *,
        shard: str | None = None,
        pages: int | None = None,
        count: int | None = None,
        status: str | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.dur = dur
        self.shard = shard
        self.pages = pages
        self.count = count
        self.status = status
        self.children: list[Span] = []

    def to_dict(self) -> dict:
        """JSON-friendly form; omits unset annotations and empty
        children, rounds times to microseconds."""
        d: dict = {
            "name": self.name,
            "start": round(self.start, 6),
            "dur": round(self.dur, 6),
        }
        if self.shard is not None:
            d["shard"] = self.shard
        if self.pages is not None:
            d["pages"] = self.pages
        if self.count is not None:
            d["count"] = self.count
        if self.status is not None:
            d["status"] = self.status
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def shifted(self, delta: float) -> "Span":
        """A deep copy with every ``start`` moved by ``delta`` seconds —
        used to graft a batch's shared spans into one request's tree,
        whose epoch is the request's own arrival time."""
        copy = Span(
            self.name, self.start + delta, self.dur,
            shard=self.shard, pages=self.pages, count=self.count,
            status=self.status,
        )
        copy.children = [c.shifted(delta) for c in self.children]
        return copy


class Trace:
    """A request's span tree plus the ID that names it on the wire.

    Spans added while another span is open (via the :meth:`span`
    context manager) nest under it; :meth:`add` records an already
    -measured span retroactively. All times are ``time.perf_counter``
    relative to ``epoch``, so spans created on different threads of one
    process line up.
    """

    __slots__ = ("trace_id", "epoch", "spans", "_stack")

    def __init__(
        self, trace_id: str | None = None, epoch: float | None = None
    ) -> None:
        self.trace_id = str(trace_id) if trace_id else mint_trace_id()
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def now(self) -> float:
        """Seconds since this trace's epoch."""
        return time.perf_counter() - self.epoch

    def add(
        self,
        name: str,
        *,
        start: float | None = None,
        dur: float = 0.0,
        shard: str | None = None,
        pages: int | None = None,
        count: int | None = None,
        status: str | None = None,
    ) -> Span:
        """Append a span (under the innermost open span, if any)."""
        node = Span(
            name,
            self.now() if start is None else start,
            dur,
            shard=shard, pages=pages, count=count, status=status,
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.spans).append(node)
        return node

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a timed span for the duration of the ``with`` block.

        The span's status is set to ``"error"`` when the block raises.
        """
        node = self.add(name, **attrs)
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        except BaseException:
            node.status = "error"
            raise
        finally:
            node.dur = time.perf_counter() - started
            if self._stack and self._stack[-1] is node:
                self._stack.pop()

    def to_dict(self) -> dict:
        """``{"id": ..., "spans": [...]}`` — the wire/log form."""
        return {
            "id": self.trace_id,
            "spans": [s.to_dict() for s in self.spans],
        }


_ACTIVE: "contextvars.ContextVar[Trace | None]" = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> Trace | None:
    """The trace active in this context, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def tracing(trace: Trace | None):
    """Make ``trace`` the active trace for the ``with`` block.

    Passing ``None`` deactivates tracing inside the block.
    """
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs):
    """A span on the active trace, or a no-op when none is active."""
    trace = _ACTIVE.get()
    if trace is None:
        yield None
        return
    with trace.span(name, **attrs) as node:
        yield node


def _format_span(node: dict, indent: int, lines: list[str]) -> None:
    attrs = []
    for key in ("shard", "pages", "count", "status"):
        if key in node:
            attrs.append(f"{key}={node[key]}")
    detail = f"  [{', '.join(attrs)}]" if attrs else ""
    lines.append(
        f"{'  ' * indent}{node.get('name', '?'):<24} "
        f"+{node.get('start', 0.0) * 1e3:8.2f} ms  "
        f"{node.get('dur', 0.0) * 1e3:8.2f} ms{detail}"
    )
    for child in node.get("children", ()):
        _format_span(child, indent + 1, lines)


def format_span_tree(trace_dict: dict) -> str:
    """Render a ``Trace.to_dict()`` payload as an indented text tree
    (the ``repro trace`` CLI view)."""
    lines = [f"trace {trace_dict.get('id', '?')}"]
    for node in trace_dict.get("spans", ()):
        _format_span(node, 1, lines)
    return "\n".join(lines)
