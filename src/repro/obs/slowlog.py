"""Structured slow-query log: JSONL entries over a latency threshold.

Each entry is self-contained — wall-clock timestamp, elapsed time, the
query specs as received on the wire, the span tree (when the request
was traced), the ``explain()`` plan text, and the observed
``QueryStats`` — so "why was this one query slow" is answerable from
the log alone: compare the plan's *estimated* page count against the
observed ``pages_accessed`` and ``buffer_hit_ratio``, and read the span
tree to see which stage (admission wait, shard fan-out, WAL commit)
ate the time. ``repro trace <file>`` renders the span trees.

The log is append-only JSONL, one entry per line, flushed per entry;
writers serialize on an internal lock so both serving tiers can share
one instance.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Append-only JSONL log of queries slower than a threshold.

    ``maybe_log`` is the single entry point: it returns immediately
    (and costs one float compare) for fast queries, and serializes one
    JSON line for slow ones. The file is opened lazily on the first
    slow query, so configuring a log costs nothing until it fires.
    """

    def __init__(self, path: str, threshold_ms: float = 250.0) -> None:
        if threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be non-negative, got {threshold_ms}"
            )
        self.path = path
        self.threshold_ms = float(threshold_ms)
        self._lock = threading.Lock()
        self._file = None
        self.entries_written = 0

    @property
    def threshold_seconds(self) -> float:
        """The threshold in seconds (for callers timing with
        ``time.perf_counter``)."""
        return self.threshold_ms / 1e3

    def maybe_log(
        self,
        elapsed_seconds: float,
        *,
        queries=None,
        trace: dict | None = None,
        plan: str | None = None,
        stats: dict | None = None,
        source: str | None = None,
    ) -> bool:
        """Write one entry if ``elapsed_seconds`` crosses the threshold.

        ``queries`` is the wire-format spec list, ``trace`` a
        ``Trace.to_dict()`` payload, ``plan`` the ``explain()`` text,
        ``stats`` the observed counters dict, ``source`` a free-form
        origin tag (e.g. ``"async"``/``"http"``). Returns whether an
        entry was written.
        """
        if elapsed_seconds * 1e3 < self.threshold_ms:
            return False
        entry: dict = {
            "ts": time.time(),
            "elapsed_ms": round(elapsed_seconds * 1e3, 3),
            "threshold_ms": self.threshold_ms,
        }
        if source is not None:
            entry["source"] = source
        if queries is not None:
            entry["queries"] = queries
        if trace is not None:
            entry["trace"] = trace
        if plan is not None:
            entry["plan"] = plan
        if stats is not None:
            entry["stats"] = stats
        line = json.dumps(entry) + "\n"
        with self._lock:
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line)
            self._file.flush()
            self.entries_written += 1
        return True

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
