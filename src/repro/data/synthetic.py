"""Synthetic pfv generators (data set 2 of the paper, and test fodder).

Data set 2 of the evaluation is itself synthetic: "we randomly generated
100,000 probabilistic feature vectors in a 10-dimensional feature space
along with corresponding sigma values". :func:`uniform_pfv_dataset` is a
direct reimplementation of that description. :func:`clustered_pfv_dataset`
adds a Gaussian-mixture generator for tests and ablations that need
correlated data.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule
from repro.core.pfv import PFV
from repro.data.uncertainty import mixed_precision_sigmas, uniform_sigmas

__all__ = [
    "uniform_pfv_dataset",
    "clustered_pfv_dataset",
    "database_from_arrays",
    "DS2_SIGMA_BANDS",
]

#: Calibrated sigma bands of data set 2 (see EXPERIMENTS.md): 30% of the
#: cells badly measured relative to the unit cube, the rest precise.
DS2_SIGMA_BANDS = {"p_bad": 0.3, "good": (0.003, 0.02), "bad": (0.1, 0.25)}


def database_from_arrays(
    mu: np.ndarray,
    sigma: np.ndarray,
    sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
    key_offset: int = 0,
) -> PFVDatabase:
    """Wrap ``(n, d)`` mean/sigma stacks into a database with integer keys."""
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape or mu.ndim != 2:
        raise ValueError("mu and sigma must both be (n, d)")
    vectors = [
        PFV(mu[i], sigma[i], key=key_offset + i) for i in range(mu.shape[0])
    ]
    return PFVDatabase(vectors, sigma_rule=sigma_rule)


def uniform_pfv_dataset(
    n: int = 100_000,
    d: int = 10,
    seed: int = 2006,
    sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
    **sigma_bands,
) -> PFVDatabase:
    """The paper's data set 2: uniform means in ``[0, 1]^d``, random sigmas.

    Defaults reproduce the paper's scale (100,000 x 10) with
    mixed-precision sigmas calibrated at that scale; the benchmarks scale
    ``n`` down unless full-scale mode is requested (see EXPERIMENTS.md).
    Override any of ``p_bad`` / ``good`` / ``bad`` to move off the
    calibration.
    """
    rng = np.random.default_rng(seed)
    mu = rng.uniform(0.0, 1.0, size=(n, d))
    bands = {**DS2_SIGMA_BANDS, **sigma_bands}
    sigma = mixed_precision_sigmas(rng, n, d, **bands)
    return database_from_arrays(mu, sigma, sigma_rule)


def clustered_pfv_dataset(
    n: int = 10_000,
    d: int = 10,
    clusters: int = 20,
    cluster_std: float = 0.05,
    sigma_low: float = 0.02,
    sigma_high: float = 0.12,
    seed: int = 2006,
    sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
) -> PFVDatabase:
    """Gaussian-mixture means in ``[0, 1]^d`` with random sigmas.

    Useful for tests and ablations that need correlated data (index
    selectivity behaves differently on clustered inputs).
    """
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(clusters, d))
    assignment = rng.integers(0, clusters, size=n)
    mu = centers[assignment] + rng.normal(0.0, cluster_std, size=(n, d))
    sigma = uniform_sigmas(rng, n, d, sigma_low, sigma_high)
    return database_from_arrays(mu, sigma, sigma_rule)
