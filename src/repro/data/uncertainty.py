"""Uncertainty (sigma) generators.

The paper "complemented each dimension with a randomly generated standard
deviation" without further detail; these generators make the choice
explicit and reproducible. All of them take a seeded
:class:`numpy.random.Generator` and return strictly positive ``(n, d)``
arrays.

The heterogeneity knobs matter for the effectiveness experiment: the wider
the spread between well- and badly-measured features/objects, the harder
plain Euclidean NN fails while the probabilistic model keeps working
(Figure 6's 42% vs 98%). The defaults were calibrated so the reproduction
lands in the paper's regime; EXPERIMENTS.md records the values used.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_sigmas",
    "lognormal_sigmas",
    "per_object_quality_sigmas",
    "mixed_precision_sigmas",
]


def _validate(n: int, d: int) -> None:
    if n < 1 or d < 1:
        raise ValueError(f"need n >= 1 and d >= 1, got n={n}, d={d}")


def uniform_sigmas(
    rng: np.random.Generator, n: int, d: int, low: float, high: float
) -> np.ndarray:
    """Independent per-feature sigmas uniform in ``[low, high]``."""
    _validate(n, d)
    if not 0.0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    return rng.uniform(low, high, size=(n, d))


def lognormal_sigmas(
    rng: np.random.Generator,
    n: int,
    d: int,
    median: float,
    spread: float = 0.75,
) -> np.ndarray:
    """Log-normal sigmas — heavy right tail of badly-measured features.

    ``median`` is the distribution median, ``spread`` the std-dev of the
    underlying normal in log space.
    """
    _validate(n, d)
    if median <= 0.0 or spread < 0.0:
        raise ValueError("median must be positive and spread non-negative")
    return median * np.exp(rng.normal(0.0, spread, size=(n, d)))


def mixed_precision_sigmas(
    rng: np.random.Generator,
    n: int,
    d: int,
    p_bad: float = 0.2,
    good: tuple[float, float] = (2e-4, 2e-3),
    bad: tuple[float, float] = (0.02, 0.1),
) -> np.ndarray:
    """Two-band heteroscedastic sigmas: mostly precise, occasionally bad.

    Per (object, dimension) cell the sigma is drawn log-uniformly from the
    *good* band, except with probability ``p_bad`` from the much larger
    *bad* band. This is the regime that drives the paper's Figure 6:
    Euclidean NN gets dominated by the badly-measured features (it weights
    every dimension equally), while the probabilistic model discounts them
    through the sigmas and identifies objects from the precise features.
    The defaults are the calibration of our data set 1 substitute; see
    EXPERIMENTS.md for the calibration record.
    """
    _validate(n, d)
    if not 0.0 <= p_bad <= 1.0:
        raise ValueError(f"p_bad must be in [0, 1], got {p_bad}")
    for lo, hi in (good, bad):
        if not 0.0 < lo <= hi:
            raise ValueError(f"need 0 < lo <= hi, got [{lo}, {hi}]")
    good_draw = np.exp(
        rng.uniform(np.log(good[0]), np.log(good[1]), size=(n, d))
    )
    bad_draw = np.exp(rng.uniform(np.log(bad[0]), np.log(bad[1]), size=(n, d)))
    mask = rng.random(size=(n, d)) < p_bad
    return np.where(mask, bad_draw, good_draw)


def per_object_quality_sigmas(
    rng: np.random.Generator,
    n: int,
    d: int,
    low: float,
    high: float,
    quality_spread: float = 3.0,
) -> np.ndarray:
    """Sigmas with a shared per-*object* quality factor.

    Models the paper's motivating scenario: each observation (face image)
    is taken under its own conditions, so all features of one object share
    a quality level (a factor drawn log-uniformly from
    ``[1, quality_spread]``), on top of per-feature variation in
    ``[low, high]``. A bad photo inflates *all* of its sigmas — the case
    per-dimension weighting cannot express.
    """
    _validate(n, d)
    if not 0.0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    if quality_spread < 1.0:
        raise ValueError("quality_spread must be >= 1")
    base = rng.uniform(low, high, size=(n, d))
    quality = np.exp(rng.uniform(0.0, np.log(quality_spread), size=(n, 1)))
    return base * quality
