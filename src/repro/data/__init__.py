"""Data and workload generators for the evaluation (Section 6).

``histograms``   — data set 1 substitute: synthetic 27-d colour histograms.
``synthetic``    — data set 2: uniform/clustered random pfv.
``uncertainty``  — sigma generators (uniform, log-normal, per-object quality).
``workload``     — ground-truthed re-observation query workloads.
"""

from repro.data.histograms import color_histogram_dataset, color_histogram_matrix
from repro.data.synthetic import (
    clustered_pfv_dataset,
    database_from_arrays,
    uniform_pfv_dataset,
)
from repro.data.uncertainty import (
    lognormal_sigmas,
    per_object_quality_sigmas,
    uniform_sigmas,
)
from repro.data.workload import IdentificationQuery, identification_workload

__all__ = [
    "color_histogram_dataset",
    "color_histogram_matrix",
    "clustered_pfv_dataset",
    "database_from_arrays",
    "uniform_pfv_dataset",
    "lognormal_sigmas",
    "per_object_quality_sigmas",
    "uniform_sigmas",
    "IdentificationQuery",
    "identification_workload",
]
