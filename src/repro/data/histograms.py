"""Synthetic colour-histogram data set (substitute for data set 1).

The paper's data set 1 is "10,987 27-dimensional color histograms of an
image database" — a private collection we cannot obtain. The substitution
(documented in DESIGN.md) generates data with the same statistical
character histograms have:

* vectors live on the probability simplex (non-negative, L1-normalised);
* mass concentrates in a few bins per image (real colour histograms are
  sparse-ish), modelled by Dirichlet cluster prototypes with small
  concentration;
* images form visual clusters (many similar images per theme), modelled
  by per-object noise around the prototypes.

No algorithm in the paper looks at image *content*; the evaluation only
needs a realistic correlated feature distribution at the right scale,
which this preserves.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule
from repro.data.synthetic import database_from_arrays
from repro.data.uncertainty import mixed_precision_sigmas

__all__ = ["color_histogram_matrix", "color_histogram_dataset", "DS1_SIGMA_BANDS"]

#: Calibrated sigma bands of the data set 1 substitute (see EXPERIMENTS.md):
#: 20% badly-measured cells with sigmas at 0.5-3 histogram bins, the rest
#: precise at 1/200 - 1/20 of a bin.
DS1_SIGMA_BANDS = {"p_bad": 0.2, "good": (2e-4, 2e-3), "bad": (0.02, 0.1)}

#: Scale of the paper's data set 1.
PAPER_N = 10_987
PAPER_D = 27


def color_histogram_matrix(
    n: int = PAPER_N,
    d: int = PAPER_D,
    clusters: int = 40,
    concentration: float = 0.6,
    noise: float = 0.15,
    seed: int = 1987,
) -> np.ndarray:
    """Generate ``(n, d)`` histogram-like vectors on the simplex.

    Each cluster prototype is a Dirichlet draw with a small concentration
    (mass in few bins); every object perturbs its prototype
    multiplicatively and renormalises, staying on the simplex.
    """
    if n < 1 or d < 2:
        raise ValueError(f"need n >= 1 and d >= 2, got n={n}, d={d}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    if concentration <= 0.0 or noise < 0.0:
        raise ValueError("concentration must be positive, noise non-negative")
    rng = np.random.default_rng(seed)
    prototypes = rng.dirichlet(np.full(d, concentration), size=clusters)
    assignment = rng.integers(0, clusters, size=n)
    base = prototypes[assignment]
    jitter = np.exp(rng.normal(0.0, noise, size=(n, d)))
    hist = base * jitter
    hist /= hist.sum(axis=1, keepdims=True)
    return hist


def color_histogram_dataset(
    n: int = PAPER_N,
    d: int = PAPER_D,
    seed: int = 1987,
    sigma_rule: SigmaRule = SigmaRule.CONVOLUTION,
    **sigma_bands,
) -> PFVDatabase:
    """Data set 1 substitute: histogram means + mixed-precision sigmas.

    Sigma bands are calibrated against the histogram bin scale (bins
    average ``1/27 ~ 0.037``): precise features sit far below a bin,
    badly-measured ones at a bin or three — heterogeneous enough to break
    Euclidean NN while the probabilistic model stays near-perfect, as in
    Figure 6(a). Override any of ``p_bad`` / ``good`` / ``bad`` to move
    off the calibration.
    """
    rng = np.random.default_rng(seed + 1)
    mu = color_histogram_matrix(n=n, d=d, seed=seed)
    bands = {**DS1_SIGMA_BANDS, **sigma_bands}
    sigma = mixed_precision_sigmas(rng, n, d, **bands)
    return database_from_arrays(mu, sigma, sigma_rule)
