"""Ground-truthed identification query workloads (Section 6 methodology).

The paper generates queries by re-observing stored objects: "A total
number of 100 objects was randomly selected and new observed mean value
was generated w.r.t. the corresponding Gaussian. For these queries, new
standard deviations were randomly generated."

:func:`identification_workload` reproduces that protocol exactly:

1. sample distinct database objects (without replacement);
2. for each, draw a new observed mean from ``N(mu_v, sigma_v)`` per
   dimension — the object's *own* uncertainty generates the measurement
   error, which is the Gaussian uncertainty model's core assumption;
3. attach freshly drawn query sigmas (new observation, new conditions).

The true key travels with each query so precision/recall have ground
truth.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable

import numpy as np

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV

__all__ = ["IdentificationQuery", "identification_workload"]


@dataclasses.dataclass(frozen=True)
class IdentificationQuery:
    """A query pfv together with the key of the re-observed object."""

    q: PFV
    true_key: Hashable


def identification_workload(
    db: PFVDatabase,
    n_queries: int,
    seed: int = 7,
    sigma_sampler: Callable[[np.random.Generator, int, int], np.ndarray]
    | None = None,
    observation_noise_scale: float = 1.0,
) -> list[IdentificationQuery]:
    """Re-observation queries with ground truth, per the paper's protocol.

    Parameters
    ----------
    db:
        The database to re-observe.
    n_queries:
        Number of queries (paper: 100 for data set 1, 500 for data set 2);
        must not exceed the database size (sampling is without
        replacement).
    seed:
        Workload RNG seed.
    sigma_sampler:
        Draws the fresh query sigmas as an ``(n_queries, d)`` array. The
        default bootstrap-resamples sigma rows of random *other* database
        objects, so the query uncertainties follow the same generating
        process as the stored ones — whatever that process was.
    observation_noise_scale:
        Multiplier on the re-observation noise (1.0 = the model's own
        assumption; ablations can stress- or under-drive it).
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if n_queries > len(db):
        raise ValueError(
            f"cannot sample {n_queries} distinct objects from {len(db)}"
        )
    if observation_noise_scale < 0.0:
        raise ValueError("observation_noise_scale must be non-negative")
    rng = np.random.default_rng(seed)
    rows = rng.choice(len(db), size=n_queries, replace=False)
    d = db.dims
    if sigma_sampler is None:
        sig = db.sigma_matrix

        def sigma_sampler(r: np.random.Generator, n: int, dd: int) -> np.ndarray:
            picks = r.integers(0, sig.shape[0], size=n)
            return sig[picks].copy()

    query_sigmas = np.asarray(sigma_sampler(rng, n_queries, d), dtype=np.float64)
    if query_sigmas.shape != (n_queries, d):
        raise ValueError(
            f"sigma_sampler returned shape {query_sigmas.shape}, "
            f"expected {(n_queries, d)}"
        )
    queries: list[IdentificationQuery] = []
    for j, row in enumerate(rows):
        v = db[int(row)]
        observed = rng.normal(
            v.mu, observation_noise_scale * v.sigma
        )
        queries.append(
            IdentificationQuery(
                q=PFV(observed, query_sigmas[j], key=None), true_key=v.key
            )
        )
    return queries
