"""Rectangular approximation of pfv for the X-tree baseline (Section 6).

The paper derives, per pfv, "the 95% quantiles in each dimension, i.e. we
determine the interval around the mean value of a Gaussian that contains a
random observation with a probability of 95%", and combines those
intervals into a hyper-rectangle. That is the central interval
``[mu - z * sigma, mu + z * sigma]`` with ``z = Phi^{-1}(0.975)``.

A query pfv is approximated the same way and candidates are all database
rectangles *intersecting* the query rectangle. The filter admits false
dismissals (two Gaussians whose 95% boxes are disjoint still overlap a
little), which is exactly why the paper calls the method inexact — our
effectiveness tests quantify that.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtri

from repro.baselines.rect import Rect
from repro.core.pfv import PFV

__all__ = ["quantile_rect", "quantile_z", "DEFAULT_COVERAGE"]

#: Central coverage probability the paper uses.
DEFAULT_COVERAGE = 0.95


def quantile_z(coverage: float = DEFAULT_COVERAGE) -> float:
    """Half-width in sigmas of a central interval with given coverage.

    ``coverage = 0.95`` gives the familiar ``z ~= 1.95996``.
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    return float(ndtri(0.5 + 0.5 * coverage))


def quantile_rect(v: PFV, coverage: float = DEFAULT_COVERAGE) -> Rect:
    """The paper's per-pfv hyper-rectangle approximation."""
    z = quantile_z(coverage)
    return Rect(v.mu - z * v.sigma, v.mu + z * v.sigma)


def quantile_rects(
    mu: np.ndarray, sigma: np.ndarray, coverage: float = DEFAULT_COVERAGE
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised variant over ``(n, d)`` stacks; returns ``(lo, hi)``."""
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape:
        raise ValueError("mu and sigma must have identical shapes")
    z = quantile_z(coverage)
    return mu - z * sigma, mu + z * sigma


def rect_coverage_probability(z: float) -> float:
    """Inverse sanity check: coverage of a ``+- z sigma`` interval."""
    return math.erf(z / math.sqrt(2.0))
