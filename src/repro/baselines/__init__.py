"""Competitor access methods of the paper's evaluation (Section 6).

``rect``       — plain d-dimensional rectangles.
``rtree``      — a from-scratch R*-tree (substrate of the X-tree).
``xtree``      — the X-tree: overlap-bounded splits and supernodes.
``approx``     — 95%-quantile hyper-rectangle approximations of pfv.
``xtree_pfv``  — the paper's filter-and-refine X-tree competitor.
``seqscan``    — the paged "Seq. File" competitor.
``nn``         — conventional (weighted) Euclidean k-NN on the means.
"""

from repro.baselines.approx import quantile_rect, quantile_z
from repro.baselines.nn import knn_euclidean, knn_weighted_euclidean
from repro.baselines.rect import Rect
from repro.baselines.rtree import RStarTree
from repro.baselines.seqscan import SequentialScanIndex
from repro.baselines.xtree import XTree
from repro.baselines.xtree_pfv import XTreePFVIndex

__all__ = [
    "Rect",
    "RStarTree",
    "XTree",
    "XTreePFVIndex",
    "SequentialScanIndex",
    "quantile_rect",
    "quantile_z",
    "knn_euclidean",
    "knn_weighted_euclidean",
]
