"""The X-tree (Berchtold, Keim, Kriegel; VLDB'96) — simplified, from scratch.

The X-tree is the index the paper uses to store rectangular approximations
of the pfv for its efficiency comparison (Section 6). Its defining idea:
in high-dimensional spaces every topological split eventually produces
heavily overlapping directory rectangles, and overlapping directories make
range queries degenerate toward a full scan. The X-tree therefore measures
the overlap a pending split would create and, when it exceeds a threshold,
refuses to split — the node becomes a **supernode** of twice (or more) the
capacity that is scanned linearly instead.

This implementation subclasses the from-scratch
:class:`~repro.baselines.rtree.RStarTree` and overrides only the split
policy:

1. compute the best topological (R*) split;
2. accept it if the resulting halves' overlap fraction is below
   ``max_overlap`` (the X-tree paper suggests ~20%) and both halves are
   filled to at least ``min_fanout``;
3. otherwise extend the node into a supernode by one page worth of
   capacity. A supernode spanning ``p`` pages costs ``p`` page accesses
   per visit, which the query paths account for.

The full X-tree also tracks a split history to find overlap-free splits;
that refinement mainly postpones supernode creation and is irrelevant for
the phenomenon the reproduction needs (X-tree ~ no win over the scan for
MLIQ in 27 dimensions), so we document the simplification here and in
DESIGN.md rather than modelling it.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.baselines.rect import Rect
from repro.baselines.rtree import RStarTree, _RNode
from repro.storage.pagestore import PageStore

__all__ = ["XTree"]


class XTree(RStarTree):
    """R*-tree with overlap-bounded splits and supernodes.

    Parameters
    ----------
    max_overlap:
        Maximum tolerated fraction ``overlap(left, right) / volume(union)``
        of a split; beyond it the node becomes a supernode.
    min_fanout:
        Minimum fraction of entries each split half must receive for the
        split to be *balanced* enough to be useful (the X-tree paper uses
        35%; our default 0.3 stays consistent with the R* split's 40%
        minimum fill, which on an overflowing node of ``capacity + 1``
        entries can produce fractions just below 0.35).
    """

    def __init__(
        self,
        dims: int,
        capacity: int = 32,
        page_store: PageStore | None = None,
        max_overlap: float = 0.2,
        min_fanout: float = 0.3,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(
            dims,
            capacity=capacity,
            page_store=page_store,
            reinsert_fraction=reinsert_fraction,
        )
        if not 0.0 <= max_overlap <= 1.0:
            raise ValueError("max_overlap must be in [0, 1]")
        if not 0.0 < min_fanout <= 0.5:
            raise ValueError("min_fanout must be in (0, 0.5]")
        self.max_overlap = max_overlap
        self.min_fanout = min_fanout
        #: extra page ids backing supernodes, keyed by the node's first page
        self._supernode_pages: dict[int, list[int]] = {}

    # -- split policy ----------------------------------------------------------

    def _split_policy(self, node: _RNode) -> Optional[_RNode]:
        left, right = self._rstar_split(node)
        if self._split_acceptable(node, left, right):
            return self._apply_split(node, left, right)
        self._grow_supernode(node)
        return None

    def _split_acceptable(self, node: _RNode, left: list, right: list) -> bool:
        if node.is_leaf:
            left_rect = Rect.union_of([e.rect for e in left])
            right_rect = Rect.union_of([e.rect for e in right])
        else:
            left_rect = Rect.union_of([c.rect for c in left])
            right_rect = Rect.union_of([c.rect for c in right])
        union = left_rect.union(right_rect)
        union_volume = union.volume()
        if union_volume <= 0.0:
            # Degenerate boxes: overlap fraction undefined; fall back to a
            # margin-based criterion (disjoint margins <=> no overlap).
            overlap_fraction = (
                1.0 if left_rect.intersects(right_rect) else 0.0
            )
        else:
            overlap_fraction = left_rect.overlap_volume(right_rect) / union_volume
        if overlap_fraction > self.max_overlap:
            return False
        total = len(left) + len(right)
        fanout = min(len(left), len(right)) / total
        return fanout >= self.min_fanout

    def _grow_supernode(self, node: _RNode) -> None:
        """Extend the node by one page worth of capacity."""
        extra = self.store.allocate()
        self._supernode_pages.setdefault(node.page_id, []).append(extra)
        node.capacity += self.capacity

    def supernode_page_count(self, node: _RNode) -> int:
        """Pages a node spans (1 for normal nodes)."""
        return 1 + len(self._supernode_pages.get(node.page_id, []))

    @property
    def supernode_count(self) -> int:
        """Number of supernodes currently in the tree."""
        return sum(
            1
            for n in self.nodes()
            if self._supernode_pages.get(n.page_id)
        )

    # -- page accounting ----------------------------------------------------------

    def _read_node(self, node: _RNode) -> None:
        """A supernode visit touches all of its pages."""
        self.store.read(node.page_id)
        for pid in self._supernode_pages.get(node.page_id, ()):
            self.store.read(pid)

    def intersecting(self, query: Rect) -> list:
        result = []
        stack: list[_RNode] = [self.root]
        while stack:
            node = stack.pop()
            self._read_node(node)
            if node.rect is None or not node.rect.intersects(query):
                continue
            if node.is_leaf:
                result.extend(
                    e
                    for e in node.entries  # type: ignore[attr-defined]
                    if e.rect.intersects(query)
                )
            else:
                stack.extend(
                    c
                    for c in node.children  # type: ignore[attr-defined]
                    if c.rect is not None and c.rect.intersects(query)
                )
        return result

    def knn(self, point, k: int):
        # Reuse the parent implementation but charge supernode pages: the
        # parent reads node.page_id itself, so charge only the extras here.
        import heapq
        import itertools

        import numpy as np

        point = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list[tuple[float, int, object, bool]] = [
            (0.0, next(counter), self.root, False)
        ]
        result = []
        while heap and len(result) < k:
            dist, _, obj, is_entry = heapq.heappop(heap)
            if is_entry:
                result.append((math.sqrt(dist), obj))
                continue
            node: _RNode = obj  # type: ignore[assignment]
            self._read_node(node)
            if node.is_leaf:
                for e in node.entries:  # type: ignore[attr-defined]
                    heapq.heappush(
                        heap, (e.rect.min_dist_sq(point), next(counter), e, True)
                    )
            else:
                for c in node.children:  # type: ignore[attr-defined]
                    if c.rect is not None:
                        heapq.heappush(
                            heap,
                            (c.rect.min_dist_sq(point), next(counter), c, False),
                        )
        return result
