"""An R*-tree over d-dimensional rectangles — substrate of the X-tree.

The paper's efficiency competitor stores rectangular approximations of the
pfv "in an X-tree" (Berchtold et al., VLDB'96), which is itself an R*-tree
(Beckmann et al., SIGMOD'90) extended with supernodes. This module
implements the R* part from scratch:

* **choose-subtree**: minimum overlap enlargement at the leaf level,
  minimum volume enlargement above (the R* rule);
* **split**: choose the split axis by minimum margin sum over all
  distributions, then the distribution with minimum overlap (volume as
  tie-breaker) — the topological R* split;
* optional **forced reinsert** of the 30% farthest entries on the first
  overflow per level, the R* trick that improves packing.

:class:`repro.baselines.xtree.XTree` subclasses this and replaces the split
policy with the X-tree's overlap-bounded split / supernode mechanism.

Entries carry an opaque integer payload (a database row id); queries report
payloads. Page accounting runs through the same
:class:`~repro.storage.pagestore.PageStore` machinery as the Gauss-tree, so
Figure 7's page-access comparison is apples to apples.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.baselines.rect import Rect
from repro.storage.pagestore import PageStore

__all__ = ["RStarTree", "RTreeLeaf", "RTreeInner", "LeafEntry"]


class LeafEntry:
    """A data rectangle plus its payload (a database row id)."""

    __slots__ = ("rect", "payload")

    def __init__(self, rect: Rect, payload: int) -> None:
        self.rect = rect
        self.payload = payload

    def __repr__(self) -> str:
        return f"LeafEntry(payload={self.payload}, rect={self.rect!r})"


class _RNode:
    __slots__ = ("rect", "parent", "page_id", "capacity")

    def __init__(self, page_id: int, capacity: int) -> None:
        self.rect: Optional[Rect] = None
        self.parent: Optional["RTreeInner"] = None
        self.page_id = page_id
        self.capacity = capacity  # supernodes raise this (X-tree)

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def refresh_rect(self) -> None:
        raise NotImplementedError


class RTreeLeaf(_RNode):
    __slots__ = ("entries",)

    def __init__(self, page_id: int, capacity: int) -> None:
        super().__init__(page_id, capacity)
        self.entries: list[LeafEntry] = []

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def size(self) -> int:
        return len(self.entries)

    def refresh_rect(self) -> None:
        self.rect = (
            Rect.union_of([e.rect for e in self.entries]) if self.entries else None
        )


class RTreeInner(_RNode):
    __slots__ = ("children",)

    def __init__(self, page_id: int, capacity: int) -> None:
        super().__init__(page_id, capacity)
        self.children: list[_RNode] = []

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def size(self) -> int:
        return len(self.children)

    def refresh_rect(self) -> None:
        rects = [c.rect for c in self.children if c.rect is not None]
        self.rect = Rect.union_of(rects) if rects else None

    def add_child(self, child: _RNode) -> None:
        self.children.append(child)
        child.parent = self
        if self.rect is None:
            self.rect = child.rect.copy()  # type: ignore[union-attr]
        else:
            self.rect.extend(child.rect)  # type: ignore[arg-type]


class RStarTree:
    """R*-tree over :class:`Rect` data with integer payloads.

    Parameters
    ----------
    dims:
        Dimensionality of the indexed rectangles.
    capacity:
        Maximum entries per node; minimum fill is 40% (the R* default).
    page_store:
        Shared storage accounting backend.
    reinsert_fraction:
        Fraction of entries force-reinserted on first overflow per level
        (0 disables the R* reinsert).
    """

    def __init__(
        self,
        dims: int,
        capacity: int = 32,
        page_store: PageStore | None = None,
        reinsert_fraction: float = 0.3,
    ) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        if not 0.0 <= reinsert_fraction < 0.5:
            raise ValueError("reinsert_fraction must be in [0, 0.5)")
        self.dims = dims
        self.capacity = capacity
        self.min_fill = max(2, int(0.4 * capacity))
        self.reinsert_fraction = reinsert_fraction
        self.store = page_store if page_store is not None else PageStore()
        self.root: _RNode = RTreeLeaf(self.store.allocate(), capacity)
        self._size = 0
        self._reinserting_levels: set[int] = set()

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            h += 1
        return h

    def nodes(self) -> Iterator[_RNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[attr-defined]

    # -- insertion ---------------------------------------------------------

    def insert(self, rect: Rect, payload: int) -> None:
        if rect.dims != self.dims:
            raise ValueError(f"rect is {rect.dims}-d, tree is {self.dims}-d")
        self._reinserting_levels.clear()
        self._insert_entry(LeafEntry(rect, payload))
        self._size += 1

    def _insert_entry(self, entry: LeafEntry) -> None:
        leaf = self._choose_leaf(self.root, entry.rect)
        leaf.entries.append(entry)
        if leaf.rect is None:
            leaf.rect = entry.rect.copy()
        else:
            leaf.rect.extend(entry.rect)
        node: Optional[RTreeInner] = leaf.parent
        while node is not None:
            node.rect.extend(entry.rect)  # type: ignore[union-attr]
            node = node.parent
        if leaf.size > leaf.capacity:
            self._handle_overflow(leaf, level=0)

    def _choose_leaf(self, node: _RNode, rect: Rect) -> RTreeLeaf:
        while not node.is_leaf:
            inner: RTreeInner = node  # type: ignore[assignment]
            children = inner.children
            if children[0].is_leaf:
                # R* rule: minimise overlap enlargement at the leaf level.
                node = self._min_overlap_child(children, rect)
            else:
                node = min(
                    children,
                    key=lambda c: (
                        c.rect.enlargement(rect),  # type: ignore[union-attr]
                        c.rect.volume(),  # type: ignore[union-attr]
                    ),
                )
        return node  # type: ignore[return-value]

    #: R* optimisation for large fanouts: evaluate the overlap criterion
    #: only for this many least-enlargement candidates (Beckmann et al.
    #: suggest 32; 8 keeps the pure-Python build fast with near-identical
    #: trees on our workloads).
    CHOOSE_SUBTREE_P = 8

    @classmethod
    def _min_overlap_child(cls, children: Sequence[_RNode], rect: Rect) -> _RNode:
        """R* leaf-level choose-subtree, vectorised over the siblings.

        Grow each candidate child to cover ``rect`` and measure how much
        extra overlap with its siblings that creates; pick the child with
        the least overlap growth (enlargement, then volume, as
        tie-breakers). Only the ``CHOOSE_SUBTREE_P`` least-enlargement
        children enter the quadratic overlap test.
        """
        lo = np.array([c.rect.lo for c in children])  # (k, d)
        hi = np.array([c.rect.hi for c in children])
        grown_lo = np.minimum(lo, rect.lo[np.newaxis, :])
        grown_hi = np.maximum(hi, rect.hi[np.newaxis, :])
        volume = np.prod(hi - lo, axis=1)
        enlargement = np.prod(grown_hi - grown_lo, axis=1) - volume

        k = len(children)
        p = min(cls.CHOOSE_SUBTREE_P, k)
        cand = np.lexsort((np.arange(k), volume, enlargement))[:p]

        def overlap_with_all(a_lo, a_hi):
            inter = np.minimum(a_hi[:, np.newaxis, :], hi[np.newaxis, :, :]) - (
                np.maximum(a_lo[:, np.newaxis, :], lo[np.newaxis, :, :])
            )
            return np.prod(np.maximum(inter, 0.0), axis=2)  # (p, k)

        before = overlap_with_all(lo[cand], hi[cand])
        after = overlap_with_all(grown_lo[cand], grown_hi[cand])
        # A candidate's overlap with itself is its own volume both before
        # and after growth only if untouched; zero the self term exactly.
        for row, j in enumerate(cand):
            before[row, j] = 0.0
            after[row, j] = 0.0
        overlap_delta = (after - before).sum(axis=1)
        order = np.lexsort(
            (cand, volume[cand], enlargement[cand], overlap_delta)
        )
        return children[int(cand[int(order[0])])]

    # -- overflow ------------------------------------------------------------

    def _handle_overflow(self, node: _RNode, level: int) -> None:
        if (
            self.reinsert_fraction > 0.0
            and node.is_leaf
            and node.parent is not None
            and level not in self._reinserting_levels
        ):
            # Forced reinsert on first overflow, leaves only (the classic
            # R* applies it per level; restricting it to the data level is
            # a common simplification with nearly all of the benefit).
            self._reinserting_levels.add(level)
            self._forced_reinsert(node)
            return
        new_node = self._split_policy(node)
        if new_node is None:
            return  # the X-tree turned the node into a supernode instead
        parent = node.parent
        if parent is None:
            new_root = RTreeInner(self.store.allocate(), self.capacity)
            node.refresh_rect()
            new_root.add_child(node)
            new_root.add_child(new_node)
            self.root = new_root
            return
        node.refresh_rect()
        parent.refresh_rect()
        parent.add_child(new_node)
        if parent.size > parent.capacity:
            self._handle_overflow(parent, level + 1)

    def _forced_reinsert(self, leaf: _RNode) -> None:
        """Re-insert the entries farthest from the node centre (R* 4.3)."""
        assert leaf.is_leaf and leaf.rect is not None
        entries: list[LeafEntry] = leaf.entries  # type: ignore[attr-defined]
        center = leaf.rect.center
        count = max(1, int(self.reinsert_fraction * len(entries)))
        entries.sort(
            key=lambda e: float(np.sum((e.rect.center - center) ** 2)),
            reverse=True,
        )
        evicted = entries[:count]
        leaf.entries = entries[count:]  # type: ignore[attr-defined]
        self._refresh_upward(leaf)
        for entry in evicted:
            self._insert_entry(entry)

    def _refresh_upward(self, node: _RNode) -> None:
        node.refresh_rect()
        parent = node.parent
        while parent is not None:
            parent.refresh_rect()
            parent = parent.parent

    # -- split (R* topological; overridden by the X-tree) ----------------------

    def _split_policy(self, node: _RNode) -> Optional[_RNode]:
        """Split ``node``, returning the new sibling (never None here)."""
        left, right = self._rstar_split(node)
        return self._apply_split(node, left, right)

    def _apply_split(self, node: _RNode, left: list, right: list) -> _RNode:
        if node.is_leaf:
            sibling: _RNode = RTreeLeaf(self.store.allocate(), self.capacity)
            node.entries = left  # type: ignore[attr-defined]
            sibling.entries = right  # type: ignore[attr-defined]
        else:
            sibling = RTreeInner(self.store.allocate(), self.capacity)
            node.children = left  # type: ignore[attr-defined]
            for c in left:
                c.parent = node
            sibling.children = right  # type: ignore[attr-defined]
            for c in right:
                c.parent = sibling
        node.refresh_rect()
        sibling.refresh_rect()
        self.store.buffer.invalidate(node.page_id)
        return sibling

    def _node_items_rects(self, node: _RNode) -> tuple[list, list[Rect]]:
        if node.is_leaf:
            items = list(node.entries)  # type: ignore[attr-defined]
            return items, [e.rect for e in items]
        items = list(node.children)  # type: ignore[attr-defined]
        return items, [c.rect for c in items]

    def _rstar_split(self, node: _RNode) -> tuple[list, list]:
        """The R* split: margin-minimal axis, overlap-minimal distribution.

        Vectorised: for each axis and sort order, prefix/suffix cumulative
        min/max give the MBRs of every candidate distribution in one pass,
        so the whole split is O(d^2 n) numpy work instead of O(d n^2)
        Python loops.
        """
        items, rects = self._node_items_rects(node)
        n = len(items)
        m = self.min_fill
        lo = np.array([r.lo for r in rects])  # (n, d)
        hi = np.array([r.hi for r in rects])
        split_positions = np.arange(m, n - m + 1)

        def distributions(order: np.ndarray):
            """Left/right MBRs for every split position along one order."""
            slo, shi = lo[order], hi[order]
            pre_lo = np.minimum.accumulate(slo, axis=0)
            pre_hi = np.maximum.accumulate(shi, axis=0)
            suf_lo = np.minimum.accumulate(slo[::-1], axis=0)[::-1]
            suf_hi = np.maximum.accumulate(shi[::-1], axis=0)[::-1]
            left_lo = pre_lo[split_positions - 1]
            left_hi = pre_hi[split_positions - 1]
            right_lo = suf_lo[split_positions]
            right_hi = suf_hi[split_positions]
            return left_lo, left_hi, right_lo, right_hi

        best_axis = None
        best_axis_margin = math.inf
        axis_orders: dict[int, list[np.ndarray]] = {}
        for axis in range(self.dims):
            orders = [
                np.lexsort((np.arange(n), lo[:, axis])),
                np.lexsort((np.arange(n), hi[:, axis])),
            ]
            axis_orders[axis] = orders
            margin = 0.0
            for order in orders:
                llo, lhi, rlo, rhi = distributions(order)
                margin += float(np.sum(lhi - llo) + np.sum(rhi - rlo))
            if margin < best_axis_margin:
                best_axis_margin = margin
                best_axis = axis
        assert best_axis is not None

        best_key = None
        best_groups: tuple[list, list] | None = None
        for order in axis_orders[best_axis]:
            llo, lhi, rlo, rhi = distributions(order)
            inter = np.minimum(lhi, rhi) - np.maximum(llo, rlo)
            overlap = np.prod(np.maximum(inter, 0.0), axis=1)
            volume = np.prod(lhi - llo, axis=1) + np.prod(rhi - rlo, axis=1)
            for j, k in enumerate(split_positions):
                key = (float(overlap[j]), float(volume[j]))
                if best_key is None or key < best_key:
                    best_key = key
                    best_groups = (
                        [items[i] for i in order[:k]],
                        [items[i] for i in order[k:]],
                    )
        assert best_groups is not None
        return best_groups

    # -- queries ----------------------------------------------------------------

    def intersecting(self, query: Rect) -> list[LeafEntry]:
        """All entries whose rectangle intersects ``query``.

        Counts one page access per visited node, like every other access
        method in this repository.
        """
        result: list[LeafEntry] = []
        stack: list[_RNode] = [self.root]
        while stack:
            node = stack.pop()
            self.store.read(node.page_id)
            if node.rect is None or not node.rect.intersects(query):
                continue
            if node.is_leaf:
                result.extend(
                    e
                    for e in node.entries  # type: ignore[attr-defined]
                    if e.rect.intersects(query)
                )
            else:
                stack.extend(
                    c
                    for c in node.children  # type: ignore[attr-defined]
                    if c.rect is not None and c.rect.intersects(query)
                )
        return result

    def knn(self, point: np.ndarray, k: int) -> list[tuple[float, LeafEntry]]:
        """k nearest entries by MINDIST (best-first, Hjaltason/Samet)."""
        point = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list[tuple[float, int, object, bool]] = [
            (0.0, next(counter), self.root, False)
        ]
        result: list[tuple[float, LeafEntry]] = []
        while heap and len(result) < k:
            dist, _, obj, is_entry = heapq.heappop(heap)
            if is_entry:
                result.append((math.sqrt(dist), obj))  # type: ignore[arg-type]
                continue
            node: _RNode = obj  # type: ignore[assignment]
            self.store.read(node.page_id)
            if node.is_leaf:
                for e in node.entries:  # type: ignore[attr-defined]
                    heapq.heappush(
                        heap, (e.rect.min_dist_sq(point), next(counter), e, True)
                    )
            else:
                for c in node.children:  # type: ignore[attr-defined]
                    if c.rect is not None:
                        heapq.heappush(
                            heap,
                            (c.rect.min_dist_sq(point), next(counter), c, False),
                        )
        return result

    # -- validation ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants (fill, MBRs, depth, parents)."""
        depths: set[int] = set()
        self._check(self.root, 0, depths)
        assert len(depths) <= 1, f"leaves at depths {sorted(depths)}"
        assert self._count(self.root) == self._size

    def _count(self, node: _RNode) -> int:
        if node.is_leaf:
            return len(node.entries)  # type: ignore[attr-defined]
        return sum(self._count(c) for c in node.children)  # type: ignore[attr-defined]

    def _check(self, node: _RNode, depth: int, depths: set[int]) -> None:
        is_root = node is self.root
        assert node.size <= node.capacity, "node overfull"
        if not is_root:
            assert node.size >= self.min_fill or node.capacity > self.capacity, (
                "node underfull"
            )
        if node.is_leaf:
            depths.add(depth)
            if node.entries:  # type: ignore[attr-defined]
                tight = Rect.union_of(
                    [e.rect for e in node.entries]  # type: ignore[attr-defined]
                )
                assert node.rect == tight, "leaf MBR not tight"
            return
        assert node.size >= 2 or not is_root, "inner root needs 2 children"
        tight = Rect.union_of(
            [c.rect for c in node.children]  # type: ignore[attr-defined]
        )
        assert node.rect == tight, "inner MBR not tight"
        for c in node.children:  # type: ignore[attr-defined]
            assert c.parent is node, "broken parent pointer"
            self._check(c, depth + 1, depths)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(d={self.dims}, cap={self.capacity}, "
            f"n={self._size}, height={self.height})"
        )
