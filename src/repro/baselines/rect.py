"""Plain d-dimensional axis-parallel rectangles for the R-/X-tree baseline.

Unlike :class:`repro.gausstree.bounds.ParameterRect` (which bounds Gaussian
*parameters*), these rectangles live in the feature space itself: the
X-tree competitor of Section 6 stores a 95%-quantile hyper-rectangle per
pfv and answers queries by rectangle intersection.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Rect"]


class Rect:
    """An axis-parallel box ``[lo_i, hi_i]`` in d dimensions."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        self.lo = np.asarray(lo, dtype=np.float64).copy()
        self.hi = np.asarray(hi, dtype=np.float64).copy()
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("lo and hi must be 1-d arrays of equal length")
        if np.any(self.lo > self.hi):
            raise ValueError("lo must not exceed hi")

    @classmethod
    def of_point(cls, p: np.ndarray) -> "Rect":
        return cls(p, p)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        rects = list(rects)
        if not rects:
            raise ValueError("cannot union an empty collection")
        return cls(
            np.min([r.lo for r in rects], axis=0),
            np.max([r.hi for r in rects], axis=0),
        )

    @property
    def dims(self) -> int:
        return int(self.lo.shape[0])

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    def copy(self) -> "Rect":
        return Rect(self.lo, self.hi)

    def extend(self, other: "Rect") -> None:
        np.minimum(self.lo, other.lo, out=self.lo)
        np.maximum(self.hi, other.hi, out=self.hi)

    def union(self, other: "Rect") -> "Rect":
        r = self.copy()
        r.extend(other)
        return r

    def intersects(self, other: "Rect") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def contains_point(self, p: np.ndarray) -> bool:
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        return float(np.sum(self.hi - self.lo))

    def overlap_volume(self, other: "Rect") -> float:
        """Volume of the intersection (0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        extents = hi - lo
        if np.any(extents < 0.0):
            return 0.0
        return float(np.prod(extents))

    def enlargement(self, other: "Rect") -> float:
        """Volume increase of this box if it had to cover ``other``."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        return float(np.prod(hi - lo)) - self.volume()

    def min_dist_sq(self, p: np.ndarray) -> float:
        """Squared MINDIST of a point to the box (0 inside) — for kNN."""
        gaps = np.maximum(np.maximum(self.lo - p, p - self.hi), 0.0)
        return float(np.dot(gaps, gaps))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)

    def __repr__(self) -> str:
        return (
            f"Rect(lo={np.array2string(self.lo, precision=3, threshold=4)}, "
            f"hi={np.array2string(self.hi, precision=3, threshold=4)})"
        )
