"""The paper's X-tree competitor: filter by rectangle intersection, refine.

Section 6 describes the method exactly: store the 95%-quantile
hyper-rectangle of every pfv in an X-tree; to answer an identification
query, build the query pfv's rectangle, collect all intersecting database
rectangles as candidates, then refine the candidates with the exact
Lemma-1 probabilities. The paper stresses that "this method does not offer
exact results ... because the used approximations allow false dismissals" —
both effectiveness (slightly lower precision/recall) and the Figure-7
efficiency numbers of this method inherit that caveat, and so does this
implementation on purpose.

The Bayes denominator is likewise approximated over the candidate set
only: objects whose rectangles miss the query's contribute (nearly) zero
density, so the normalisation error is tiny — but it is an approximation,
consistent with the paper's description.

Page accounting covers *both* stages: the X-tree traversal (supernode
pages included) and the refinement's random fetches of the candidate pfv
from the base data file — an X-tree stores only boxes, so the exact
``(mu, sigma)`` live in the table the index points into. Those base-table
fetches are what keep the X-tree from beating the scan on MLIQ in the
paper's Figure 7.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.baselines.approx import DEFAULT_COVERAGE, quantile_rect, quantile_rects
from repro.baselines.rect import Rect
from repro.baselines.xtree import XTree
from repro.core.bayes import posteriors_from_log_densities
from repro.core.database import PFVDatabase
from repro.core.joint import log_joint_density_batch
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.storage.pagestore import PageStore

__all__ = ["XTreePFVIndex"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"XTreePFVIndex.{old} is deprecated; use "
        f"repro.connect(db, backend='xtree').{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class XTreePFVIndex:
    """Filter-and-refine identification queries over an X-tree of boxes.

    Parameters
    ----------
    db:
        The underlying pfv database (provides exact refinement data).
    coverage:
        Quantile coverage of the rectangular approximations (paper: 0.95).
    capacity:
        X-tree node capacity.
    page_store:
        Shared storage accounting backend.
    """

    def __init__(
        self,
        db: PFVDatabase,
        coverage: float = DEFAULT_COVERAGE,
        capacity: int | None = None,
        page_store: PageStore | None = None,
        max_overlap: float = 0.2,
    ) -> None:
        self.db = db
        self.coverage = coverage
        if len(db) == 0:
            # Normalised empty-database semantics (see repro.engine.spec):
            # no boxes, no base pages, every query answers empty.
            self.tree = None
            self.store_ = page_store if page_store is not None else PageStore()
            self._rows_per_page = 0
            self._base_pages: list[int] = []
            return
        if capacity is None:
            # Box entries store 2 d floats + payload, like a leaf pfv entry,
            # so reuse the pfv page capacity for comparability.
            from repro.storage.layout import PageLayout

            capacity = PageLayout(dims=db.dims).leaf_capacity
        self.tree = XTree(
            dims=db.dims,
            capacity=capacity,
            page_store=page_store,
            max_overlap=max_overlap,
        )
        lo, hi = quantile_rects(db.mu_matrix, db.sigma_matrix, coverage)
        for row in range(len(db)):
            self.tree.insert(Rect(lo[row], hi[row]), row)
        # Base data file the index points into: refinement fetches the
        # exact pfv of each candidate row from here.
        self._rows_per_page = capacity
        self._base_pages = [
            self.store.allocate()
            for _ in range(-(-len(db) // self._rows_per_page))
        ]

    @property
    def store(self) -> PageStore:
        return self.store_ if self.tree is None else self.tree.store

    # -- queries -----------------------------------------------------------

    def _candidates(self, q) -> list[int]:
        if self.tree is None:
            return []
        query_rect = quantile_rect(q, self.coverage)
        return [e.payload for e in self.tree.intersecting(query_rect)]

    def _refine(self, rows: list[int], q) -> tuple[np.ndarray, np.ndarray]:
        """Exact log densities and candidate-normalised posteriors.

        Charges one random base-table page read per distinct page holding
        a candidate row.
        """
        for page_index in sorted({row // self._rows_per_page for row in rows}):
            self.store.read(self._base_pages[page_index])
        mu = self.db.mu_matrix[rows]
        sigma = self.db.sigma_matrix[rows]
        log_dens = log_joint_density_batch(mu, sigma, q, self.db.sigma_rule)
        return log_dens, posteriors_from_log_densities(log_dens)

    def mliq(self, query: MLIQuery) -> tuple[list[Match], QueryStats]:
        """Deprecated shim; connect with ``repro.connect(db,
        backend="xtree")`` and execute ``MLIQ`` specs instead."""
        _deprecated("mliq", "execute(MLIQ(q, k))")
        return self._mliq_impl(query)

    def tiq(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]:
        """Deprecated shim; connect with ``repro.connect(db,
        backend="xtree")`` and execute ``TIQ`` specs instead."""
        _deprecated("tiq", "execute(TIQ(q, tau))")
        return self._tiq_impl(query)

    def _mliq_impl(self, query: MLIQuery) -> tuple[list[Match], QueryStats]:
        """Approximate k-MLIQ: intersect, refine, rank.

        Returns fewer than ``k`` matches (possibly none) when the filter
        dismisses true answers — the method's documented inexactness.
        """
        store = self.store
        store.begin_query()
        started = time.perf_counter()
        rows = self._candidates(query.q)
        matches: list[Match] = []
        if rows:
            log_dens, post = self._refine(rows, query.q)
            order = np.lexsort((np.arange(len(rows)), -log_dens))[: query.k]
            matches = [
                Match(self.db[rows[int(i)]], float(log_dens[int(i)]), float(post[int(i)]))
                for i in order
            ]
        stats = self._stats(len(rows), started)
        return matches, stats

    def _tiq_impl(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]:
        """Approximate TIQ over the candidate set."""
        store = self.store
        store.begin_query()
        started = time.perf_counter()
        rows = self._candidates(query.q)
        matches: list[Match] = []
        if rows:
            log_dens, post = self._refine(rows, query.q)
            order = np.lexsort((np.arange(len(rows)), -log_dens))
            for i in order:
                if post[int(i)] >= query.p_theta:
                    matches.append(
                        Match(
                            self.db[rows[int(i)]],
                            float(log_dens[int(i)]),
                            float(post[int(i)]),
                        )
                    )
        stats = self._stats(len(rows), started)
        return matches, stats

    def _stats(self, refined: int, started: float) -> QueryStats:
        return QueryStats(
            pages_accessed=self.store.log.pages_accessed,
            page_faults=self.store.log.page_faults,
            objects_refined=refined,
            nodes_expanded=0,
            cpu_seconds=time.perf_counter() - started,
            io_seconds=self.store.log.io_seconds,
            modeled_cpu_seconds=self.store.cost_model.modeled_cpu_seconds(
                refined, self.store.log.pages_accessed
            ),
            buffer_evictions=self.store.log.evictions,
        )

    def __repr__(self) -> str:
        supernodes = 0 if self.tree is None else self.tree.supernode_count
        return (
            f"XTreePFVIndex(n={len(self.db)}, coverage={self.coverage}, "
            f"supernodes={supernodes})"
        )
