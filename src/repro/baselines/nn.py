"""Conventional similarity search on the mean vectors (Figure 6 baseline).

The paper's effectiveness experiment compares identification by posterior
probability (MLIQ on pfv) against plain nearest-neighbour retrieval on the
observed feature values with the Euclidean distance — the "simplest
solution" its introduction dismisses. This module provides that baseline
(vectorised, exact), plus the weighted-Euclidean variant the related-work
section mentions (per-dimension weights, e.g. the inverse query variances)
so the ablation benchmark can show that even an adaptable distance measure
cannot model per-*object* uncertainty.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.database import PFVDatabase

__all__ = ["knn_euclidean", "knn_weighted_euclidean", "euclidean_distances"]


def euclidean_distances(
    db: PFVDatabase, query_mu: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Euclidean distances from the query means to every stored mean."""
    q = np.asarray(query_mu, dtype=np.float64)
    if q.ndim != 1 or q.shape[0] != db.dims:
        raise ValueError(f"query must be a {db.dims}-d vector")
    diff = db.mu_matrix - q[np.newaxis, :]
    return np.sqrt(np.sum(diff * diff, axis=1))


def _top_k(db: PFVDatabase, dist: np.ndarray, k: int) -> list[tuple[Hashable, float]]:
    order = np.lexsort((np.arange(dist.size), dist))[:k]
    return [(db[int(i)].key, float(dist[int(i)])) for i in order]


def knn_euclidean(
    db: PFVDatabase, query_mu: Sequence[float] | np.ndarray, k: int
) -> list[tuple[Hashable, float]]:
    """k nearest database objects by Euclidean distance on the means.

    Returns ``(key, distance)`` pairs, closest first. This ignores every
    sigma — deliberately: it is the strawman whose precision/recall
    Figure 6 shows collapsing.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return _top_k(db, euclidean_distances(db, query_mu), k)


def knn_weighted_euclidean(
    db: PFVDatabase,
    query_mu: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    k: int,
) -> list[tuple[Hashable, float]]:
    """Weighted Euclidean k-NN: ``sqrt(sum_i w_i (mu_i - q_i)^2)``.

    The related-work section's "adaptable" distance: weights can encode
    per-*dimension* importance (e.g. ``1 / sigma_q^2``), but remain the
    same for every database object — which is exactly why it still cannot
    model per-object uncertainty (quantified in the ablation benchmark).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (db.dims,):
        raise ValueError(f"weights must have shape ({db.dims},)")
    if np.any(w < 0.0):
        raise ValueError("weights must be non-negative")
    q = np.asarray(query_mu, dtype=np.float64)
    diff = db.mu_matrix - q[np.newaxis, :]
    dist = np.sqrt(np.sum(w[np.newaxis, :] * diff * diff, axis=1))
    return _top_k(db, dist, k)
