"""The "Seq. File" competitor of Figure 7: a paged sequential scan.

The general solution of Section 4 run "on top of a sequential scan of the
complete database": the pfv live in a flat paged file; an MLIQ reads every
page once (accumulating the denominator on the way); a TIQ reads the file
twice — one scan to determine the total probability, a second to report
the qualifying objects, exactly as the paper describes. Sequential runs
are charged streaming IO by the disk model, which is what makes the scan
harder to beat on *overall* time than on page counts.

The public per-method entry points (``mliq``/``tiq``/``mliq_many``/
``tiq_many``) are deprecation shims since the unified session API landed:
connect with ``repro.connect(db, backend="seqscan")`` and execute the
specs of :mod:`repro.engine.spec` instead. Edge cases follow the engine's
normalised semantics: an empty database is a valid (zero-page) source
whose every query answers with the empty match list.
"""

from __future__ import annotations

import time
import warnings
from typing import Iterable, Sequence

import numpy as np

from repro.core.bayes import posteriors_from_log_densities
from repro.core.database import PFVDatabase
from repro.core.joint import log_joint_density_batch, log_joint_density_multi
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery
from repro.storage.layout import PageLayout
from repro.storage.pagestore import PageStore

__all__ = ["SequentialScanIndex"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"SequentialScanIndex.{old} is deprecated; use "
        f"repro.connect(db, backend='seqscan').{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SequentialScanIndex:
    """Exact identification queries over a flat paged file of pfv."""

    def __init__(
        self,
        db: PFVDatabase,
        layout: PageLayout | None = None,
        page_store: PageStore | None = None,
    ) -> None:
        self.db = db
        self.store = page_store if page_store is not None else PageStore()
        if len(db) == 0:
            # Normalised empty-database semantics: a zero-page file whose
            # queries all answer with the empty match list. The layout
            # stays as given (possibly None: an empty db has no dims yet).
            self.layout = layout
            self._pages: list[int] = []
            self._rows_per_page = 0
            return
        self.layout = layout if layout is not None else PageLayout(dims=db.dims)
        per_page = self.layout.leaf_capacity
        self._pages = [
            self.store.allocate()
            for _ in range(self.layout.pages_for_sequential_file(len(db)))
        ]
        self._rows_per_page = per_page

    @property
    def file_pages(self) -> int:
        """Pages the flat file occupies."""
        return len(self._pages)

    def _scan_once(self, q) -> np.ndarray:
        """One sequential pass: touch every page, compute all densities."""
        self.store.read_sequential_run(self._pages)
        return log_joint_density_batch(
            self.db.mu_matrix, self.db.sigma_matrix, q, self.db.sigma_rule
        )

    # -- deprecated public entry points --------------------------------------

    def mliq(self, query: MLIQuery) -> tuple[list[Match], QueryStats]:
        """Deprecated shim; see :meth:`_mliq_impl`."""
        _deprecated("mliq", "execute(MLIQ(q, k))")
        return self._mliq_impl(query)

    def tiq(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]:
        """Deprecated shim; see :meth:`_tiq_impl`."""
        _deprecated("tiq", "execute(TIQ(q, tau))")
        return self._tiq_impl(query)

    def mliq_many(
        self, queries: Iterable[MLIQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Deprecated shim; see :meth:`_mliq_many_impl`."""
        _deprecated("mliq_many", "execute_many([MLIQ(q, k), ...])")
        return self._mliq_many_impl(list(queries))

    def tiq_many(
        self, queries: Iterable[ThresholdQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Deprecated shim; see :meth:`_tiq_many_impl`."""
        _deprecated("tiq_many", "execute_many([TIQ(q, tau), ...])")
        return self._tiq_many_impl(list(queries))

    # -- implementations (the engine's seqscan backend calls these) ----------

    def _mliq_impl(self, query: MLIQuery) -> tuple[list[Match], QueryStats]:
        """Exact k-MLIQ in a single sequential pass."""
        self.store.begin_query()
        started = time.perf_counter()
        if not self._pages:
            return [], self._stats(0, started)
        log_dens = self._scan_once(query.q)
        post = posteriors_from_log_densities(log_dens)
        order = np.lexsort((np.arange(log_dens.size), -log_dens))[: query.k]
        matches = [
            Match(self.db[int(i)], float(log_dens[int(i)]), float(post[int(i)]))
            for i in order
        ]
        return matches, self._stats(len(self.db), started)

    def _tiq_impl(self, query: ThresholdQuery) -> tuple[list[Match], QueryStats]:
        """Exact TIQ in two sequential passes (Section 4's algorithm)."""
        self.store.begin_query()
        started = time.perf_counter()
        if not self._pages:
            return [], self._stats(0, started)
        log_dens = self._scan_once(query.q)  # pass 1: total probability
        post = posteriors_from_log_densities(log_dens)
        self.store.read_sequential_run(self._pages)  # pass 2: report
        order = np.lexsort((np.arange(log_dens.size), -log_dens))
        matches = [
            Match(self.db[int(i)], float(log_dens[int(i)]), float(post[int(i)]))
            for i in order
            if post[int(i)] >= query.p_theta
        ]
        # Densities are computed once (pass 1); pass 2 only re-reads pages.
        return matches, self._stats(len(self.db), started)

    # -- batch entry points --------------------------------------------------

    def _scan_once_multi(self, queries: Sequence) -> np.ndarray:
        """One sequential pass shared by a whole batch: every page is read
        once, densities for all m queries come from one ``(m, n)`` kernel."""
        self.store.read_sequential_run(self._pages)
        q_mu = np.vstack([q.mu for q in queries])
        q_sigma = np.vstack([q.sigma for q in queries])
        return log_joint_density_multi(
            self.db.mu_matrix, self.db.sigma_matrix, q_mu, q_sigma,
            self.db.sigma_rule,
        )

    def _mliq_many_impl(
        self, queries: Sequence[MLIQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Exact k-MLIQs for a batch in a *single* sequential pass.

        The flat file is scanned once for the whole batch (the per-query
        answer only needs that query's density row), so page accesses are
        those of one scan, not of ``m`` scans. Returns ``(per-query match
        lists, aggregate stats)`` like the Gauss-tree batch API.
        """
        queries = list(queries)
        if not queries:
            return [], QueryStats()
        self.store.begin_query()
        started = time.perf_counter()
        if not self._pages:
            return [[] for _ in queries], self._stats(0, started)
        log_dens = self._scan_once_multi([query.q for query in queries])
        results: list[list[Match]] = []
        for row, query in zip(log_dens, queries):
            post = posteriors_from_log_densities(row)
            order = np.lexsort((np.arange(row.size), -row))[: query.k]
            results.append(
                [
                    Match(self.db[int(i)], float(row[int(i)]), float(post[int(i)]))
                    for i in order
                ]
            )
        return results, self._stats(len(self.db) * len(queries), started)

    def _tiq_many_impl(
        self, queries: Sequence[ThresholdQuery]
    ) -> tuple[list[list[Match]], QueryStats]:
        """Exact TIQs for a batch: one density pass plus one report pass."""
        queries = list(queries)
        if not queries:
            return [], QueryStats()
        self.store.begin_query()
        started = time.perf_counter()
        if not self._pages:
            return [[] for _ in queries], self._stats(0, started)
        log_dens = self._scan_once_multi([query.q for query in queries])
        self.store.read_sequential_run(self._pages)  # report pass
        results: list[list[Match]] = []
        for row, query in zip(log_dens, queries):
            post = posteriors_from_log_densities(row)
            order = np.lexsort((np.arange(row.size), -row))
            results.append(
                [
                    Match(self.db[int(i)], float(row[int(i)]), float(post[int(i)]))
                    for i in order
                    if post[int(i)] >= query.p_theta
                ]
            )
        return results, self._stats(len(self.db) * len(queries), started)

    def _stats(self, refined: int, started: float) -> QueryStats:
        return QueryStats(
            pages_accessed=self.store.log.pages_accessed,
            page_faults=self.store.log.page_faults,
            objects_refined=refined,
            nodes_expanded=0,
            cpu_seconds=time.perf_counter() - started,
            io_seconds=self.store.log.io_seconds,
            modeled_cpu_seconds=self.store.cost_model.modeled_cpu_seconds(
                refined, self.store.log.pages_accessed
            ),
            buffer_evictions=self.store.log.evictions,
        )

    def __repr__(self) -> str:
        return f"SequentialScanIndex(n={len(self.db)}, pages={self.file_pages})"
