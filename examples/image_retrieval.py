"""Image retrieval on colour histograms: the paper's data set 1 scenario.

Builds (a scaled-down version of) the 27-dimensional colour-histogram
data set, generates re-observation queries, and reproduces the
effectiveness comparison of Figure 6(a): precision and recall of
conventional k-NN versus k-MLIQ at growing result-set sizes.

Run:  python examples/image_retrieval.py         (2,000 images, fast)
      REPRO_N=10987 python examples/image_retrieval.py  (paper scale)
"""

import os

from repro.data.histograms import color_histogram_dataset
from repro.data.workload import identification_workload
from repro.eval.figures import figure6
from repro.eval.report import format_figure6

n = int(os.environ.get("REPRO_N", "2000"))
db = color_histogram_dataset(n=n)
print(f"image database: {len(db)} histograms, {db.dims} colour bins")

workload = identification_workload(db, n_queries=60, seed=7)
print(f"workload: {len(workload)} re-observed query images\n")

rows = figure6(db, workload, multiples=(1, 2, 3, 6, 9))
print(format_figure6(rows, f"Figure 6(a) reproduction at n={n}"))

x1 = rows[0]
print(
    f"\nAt the exact result size, MLIQ identifies "
    f"{x1.mliq.recall:.0%} of the queries while Euclidean NN manages "
    f"{x1.nn.recall:.0%} - heterogeneous measurement uncertainty defeats "
    "plain distance-based retrieval (Section 6, Figure 6)."
)
x9 = rows[-1]
print(
    f"Even 9x larger NN result sets only reach {x9.nn.recall:.0%} recall "
    f"at {x9.nn.precision:.0%} precision: 'the right selection of k cannot "
    "compensate for the missing handling of uncertainty'."
)
