"""Tour of the unified session/engine API: one surface, every backend.

The paper's point is that a single probabilistic query model can be
served by interchangeable access methods. ``repro.connect`` makes that a
ten-line program: the same MLIQ/TIQ/RankQuery specs run on an in-memory
Gauss-tree, a paged sequential scan, the approximate X-tree baseline,
and a disk-resident index file — with identical answers from every
exact backend, per-backend work counters, and ``explain()`` showing the
plan before anything runs.

Run:  python examples/engine_tour.py
"""

import os
import tempfile

import numpy as np

import repro
from repro import MLIQ, PFV, PFVDatabase, RankQuery, TIQ, connect

rng = np.random.default_rng(42)
d = 4
db = PFVDatabase(
    [
        PFV(rng.uniform(0, 1, d), rng.uniform(0.02, 0.1, d), key=f"obj-{i}")
        for i in range(400)
    ]
)
# A noisy re-observation of object 17 — the identification scenario.
target = db[17]
q = PFV(rng.normal(target.mu, 0.02), rng.uniform(0.02, 0.08, d))

print(f"database: {len(db)} objects, d={db.dims}")
print(f"registered backends: {sorted(repro.engine.available_backends())}\n")

# -- the same specs through three backends ---------------------------------
specs = [MLIQ(q, k=3), TIQ(q, tau=0.10), RankQuery(q, k=10, min_mass=0.95)]
for backend in ("tree", "seqscan", "xtree"):
    with connect(db, backend=backend) as session:
        rs = session.execute_many(specs)
        mliq_keys = [m.key for m in rs[0]]
        print(
            f"{backend:8s} MLIQ(3)={mliq_keys}  "
            f"TIQ(0.10)={len(rs[1])} hits  "
            f"Rank(10, mass>=0.95)={len(rs[2])} ranks  "
            f"[{rs.stats.pages_accessed} page accesses, "
            f"backend={rs.backend!r}]"
        )

# -- explain before you run ------------------------------------------------
print()
with connect(db, backend="tree") as session:
    print(session.explain(specs).describe())

# -- the rank query's mass cut --------------------------------------------
print()
with connect(db, backend="seqscan") as session:
    rs = session.execute(RankQuery(q, k=10, min_mass=0.95))
    cum = rs.cumulative_probability()
    print("probabilistic top-k ranking (cut at 95% cumulative mass):")
    for m, mass in zip(rs.matches, cum):
        print(f"  {m.key:8s} P={m.probability:6.1%}  cumulative={mass:6.1%}")
    assert rs.matches[0].key == target.key

# -- any backend over a saved index file -----------------------------------
print()
with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "tour.gauss")
    tree = repro.bulk_load(db.vectors, sigma_rule=db.sigma_rule)
    tree.save(path)
    answers = {}
    for backend in ("disk", "seqscan"):
        with connect(path, backend=backend) as session:
            answers[backend] = [m.key for m in session.execute(MLIQ(q, 3)).matches]
            print(f"{backend!r} over {os.path.basename(path)}: {answers[backend]}")
    assert answers["disk"] == answers["seqscan"]

    # A writable session: WAL-durable inserts with a bounded log.
    with connect(path, writable=True, auto_checkpoint_bytes=1 << 20) as session:
        session.insert(PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.3, d),
                           key="late-arrival"))
        print(f"writable session {session.backend_name!r}: now {len(session)} objects")
print("\nevery exact backend agrees - one query surface, interchangeable engines")
