"""Quickstart: the paper's Figure 1 scenario in a dozen lines of API.

Three facial observations of varying quality are stored as probabilistic
feature vectors; a query observation (good rotation, bad illumination)
is identified. Plain Euclidean search picks the wrong person; the
Gaussian uncertainty model picks the right one with ~77% posterior —
the worked example of Section 3.1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MLIQ,
    PFV,
    TIQ,
    GaussTree,
    PFVDatabase,
    ThresholdQuery,
    scan_tiq,
    session_for,
)

# Feature F1 is sensitive to head rotation, F2 to illumination.
# (mu values are abstract face-geometry features; sigma encodes how
# trustworthy each measurement is under its capture conditions.)
o1 = PFV([4.42, 1.50], [0.21, 0.21], key="O1: good conditions")
o2 = PFV([1.18, 1.46], [1.34, 1.55], key="O2: bad rotation + illumination")
o3 = PFV([3.82, 1.20], [1.22, 0.37], key="O3: bad rotation only")
db = PFVDatabase([o1, o2, o3])

# The query image: sharp rotation, washed-out illumination.
query = PFV([3.59, 2.46], [0.23, 1.58])

print("Euclidean distances (conventional similarity search):")
for v in db:
    print(f"  {v.key:35s} d = {np.linalg.norm(v.mu - query.mu):.2f}")
print("-> nearest neighbour is O1, which is the WRONG person.\n")

# Index the database in a Gauss-tree and ask identification queries
# through the unified session API (repro.connect works the same way;
# session_for adopts an index you already built).
tree = GaussTree(dims=2, degree=2)
tree.extend(db.vectors)
session = session_for(tree)

result = session.execute(MLIQ(query, k=3))
print("1..3-most-likely identification (k-MLIQ) on the Gauss-tree:")
for m in result.matches:
    print(f"  P = {m.probability:5.1%}  {m.key}")
print(f"  ({result.stats.pages_accessed} page accesses, "
      f"{result.stats.objects_refined} exact refinements)\n")

# Threshold identification: everyone above 12% probability.
tiq_matches = session.execute(TIQ(query, tau=0.12)).matches
print("TIQ(P >= 12%):", [m.key.split(":")[0] for m in tiq_matches])

# The sequential scan (the paper's reference algorithm) agrees exactly.
scan_keys = [m.key.split(":")[0] for m in scan_tiq(db, ThresholdQuery(query, 0.12))]
assert [m.key.split(":")[0] for m in tiq_matches] == scan_keys
print("Sequential scan returns the same answer set - the index is exact.")
