"""Biometric identification at scale: the paper's motivating application.

A gallery of 5,000 "enrolled persons" is observed under heterogeneous
capture conditions (each feature of each enrolment has its own
uncertainty). Probe observations of already-enrolled persons are then
identified three ways:

* conventional Euclidean nearest neighbour on the feature values,
* exact sequential-scan MLIQ under the Gaussian uncertainty model,
* Gauss-tree MLIQ (same answers, far fewer page accesses).

Run:  python examples/biometric_identification.py
"""

import numpy as np

from repro import MLIQ, MLIQuery, PFV, scan_mliq, session_for
from repro.baselines.nn import knn_euclidean
from repro.data.synthetic import database_from_arrays
from repro.data.uncertainty import mixed_precision_sigmas
from repro.data.workload import identification_workload
from repro.eval.figures import make_page_store
from repro.gausstree.bulkload import bulk_load

N_PERSONS = 5_000
N_FEATURES = 12
N_PROBES = 60

rng = np.random.default_rng(2006)

# Enrolment: 12 facial-geometry features per person; each measurement is
# either precise or degraded (bad pose, blur, illumination...).
gallery_mu = rng.uniform(0.0, 1.0, (N_PERSONS, N_FEATURES))
gallery_sigma = mixed_precision_sigmas(
    rng, N_PERSONS, N_FEATURES, p_bad=0.25, good=(0.002, 0.01), bad=(0.08, 0.2)
)
gallery = database_from_arrays(gallery_mu, gallery_sigma)
print(f"enrolled {len(gallery)} persons with {gallery.dims} features each")

# Probes: re-observations of known persons (fresh noise, fresh sigmas).
probes = identification_workload(gallery, N_PROBES, seed=11)

# Index the gallery.
store = make_page_store(gallery.dims)
tree = bulk_load(gallery.vectors, page_store=store, sigma_rule=gallery.sigma_rule)
session = session_for(tree, mliq_tolerance=0.01)
print(f"Gauss-tree built: height {tree.height}, {store.allocated_pages} pages\n")

nn_hits = scan_hits = tree_hits = 0
tree_pages = 0
store.cold_start()
for probe in probes:
    nn_key = knn_euclidean(gallery, probe.q.mu, 1)[0][0]
    nn_hits += nn_key == probe.true_key

    scan_best = scan_mliq(gallery, MLIQuery(probe.q, 1))[0]
    scan_hits += scan_best.key == probe.true_key

    # mliq_tolerance: posterior accuracy of Section 5.2.2 — 1% is plenty
    # for an identification decision and keeps page counts low.
    result = session.execute(MLIQ(probe.q, 1))
    tree_hits += result.matches[0].key == probe.true_key
    tree_pages += result.stats.pages_accessed
    assert result.matches[0].key == scan_best.key  # index never changes answers

file_pages = -(-N_PERSONS // (8192 // (2 * N_FEATURES * 8 + 8)))
print(f"identification rate over {N_PROBES} probes:")
print(f"  Euclidean NN          : {nn_hits / N_PROBES:6.1%}")
print(f"  MLIQ (scan)           : {scan_hits / N_PROBES:6.1%}")
print(f"  MLIQ (Gauss-tree)     : {tree_hits / N_PROBES:6.1%}")
print(f"\npage accesses per probe : {tree_pages / N_PROBES:7.1f} (tree)"
      f"  vs {file_pages} (sequential file)")

best = scan_mliq(gallery, MLIQuery(probes[0].q, 3))
print("\nexample probe, top-3 posteriors:")
for m in best:
    marker = "  <-- true identity" if m.key == probes[0].true_key else ""
    print(f"  person {m.key:5}  P = {m.probability:7.3%}{marker}")
