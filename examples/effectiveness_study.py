"""Effectiveness study: why adaptable distance weights are not enough.

The related-work section of the paper argues that weighted Euclidean /
ellipsoid queries can encode per-*dimension* importance but not
per-*object* uncertainty. This study quantifies that on a controlled
dataset: plain NN, query-adaptive weighted NN (weights 1/sigma_q^2),
and the full Gaussian uncertainty model (MLIQ).

Run:  python examples/effectiveness_study.py
"""

import numpy as np

from repro import MLIQuery, scan_mliq
from repro.baselines.nn import knn_euclidean, knn_weighted_euclidean
from repro.data.synthetic import database_from_arrays
from repro.data.uncertainty import mixed_precision_sigmas
from repro.data.workload import identification_workload

N, D, QUERIES = 4_000, 10, 80
rng = np.random.default_rng(7)

mu = rng.uniform(0.0, 1.0, (N, D))
sigma = mixed_precision_sigmas(
    rng, N, D, p_bad=0.3, good=(0.003, 0.02), bad=(0.1, 0.25)
)
db = database_from_arrays(mu, sigma)
workload = identification_workload(db, QUERIES, seed=13)

nn = weighted = mliq = 0
for item in workload:
    q = item.q
    nn += knn_euclidean(db, q.mu, 1)[0][0] == item.true_key
    # The best a per-dimension scheme can do with query-side knowledge:
    # down-weight the query's own uncertain dimensions.
    w = 1.0 / np.square(q.sigma)
    weighted += (
        knn_weighted_euclidean(db, q.mu, w, 1)[0][0] == item.true_key
    )
    mliq += scan_mliq(db, MLIQuery(q, 1))[0].key == item.true_key

print(f"identification rate over {QUERIES} queries (n={N}, d={D}):")
print(f"  Euclidean NN                  : {nn / QUERIES:6.1%}")
print(f"  weighted NN (w = 1/sigma_q^2) : {weighted / QUERIES:6.1%}")
print(f"  MLIQ (Gaussian uncertainty)   : {mliq / QUERIES:6.1%}")
print(
    "\nWeighted distances help a little - they know which of the QUERY's "
    "dimensions\nare unreliable - but only the probabilistic model also "
    "accounts for each\nDATABASE object's own uncertainty (Section 2 of "
    "the paper)."
)
