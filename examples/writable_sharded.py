"""Writable sharded serving: route inserts, query while writing.

Walks the write-router lifecycle introduced with group commit:

1. shard-build a dataset into 3 disk shards plus a manifest;
2. open a **writable** sharded session: batched inserts route to their
   owning shards (placement policy) and each shard's slice lands as one
   group-commit WAL transaction, while interleaved queries on the same
   session observe every write immediately (read-your-writes);
3. run a mixed ``execute_many`` batch — ``Insert`` specs between
   ``MLIQ`` queries — and show the answers shifting as the writes land;
4. serve it over HTTP with ``POST /insert`` enabled and a second pooled
   read session, writing through the stdlib client while querying;
5. reopen read-only and verify the grown deployment is durable (counts
   refreshed in the manifest, answers served from the shard indexes).

Run:  PYTHONPATH=src python examples/writable_sharded.py
"""

import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.cluster import ServeClient, build_shards, load_manifest, serve  # noqa: E402
from repro.core.pfv import PFV  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.engine import MLIQ, Insert, connect  # noqa: E402


def main() -> int:
    d = 6
    db = uniform_pfv_dataset(n=900, d=d, seed=44)
    rng = np.random.default_rng(45)
    tmp_dir = tempfile.mkdtemp()
    try:
        # -- 1. shard-build ---------------------------------------------------
        manifest = build_shards(db, 3, os.path.join(tmp_dir, "live"))
        sizes = [s.objects for s in manifest.shards]
        print(
            f"sharded n={len(db)} into {sizes} (policy={manifest.policy}, "
            f"placement epoch {manifest.effective_placement_epoch})"
        )

        fresh = [
            PFV(
                rng.uniform(0.0, 1.0, d),
                rng.uniform(0.05, 0.4, d),
                key=("live", i),
            )
            for i in range(96)
        ]
        # A sharply observed object: a re-observation of itself is its
        # own best match once (and only once) the insert landed.
        fresh[0] = PFV(rng.uniform(0.0, 1.0, d), np.full(d, 0.02),
                       key=("live", 0))
        probe = MLIQ(fresh[0], 3)

        # -- 2 + 3. the write router ------------------------------------------
        with connect(
            manifest.source_path, backend="sharded", writable=True
        ) as session:
            print(f"\nwritable session: {session!r}")
            before = [m.key for m in session.execute(probe).matches]
            session.insert_many(fresh[:64])  # routed, group-committed
            after = [m.key for m in session.execute(probe).matches]
            print(f"top-3 before the batch: {before}")
            print(f"top-3 after 64 routed inserts: {after}")
            assert after[0] == ("live", 0), "the write must be queryable"

            # Interleaved batch: the second query sees the Insert that
            # precedes it in the batch, the first does not.
            target = PFV(
                rng.uniform(0.0, 1.0, d),
                np.full(d, 0.02),
                key="bullseye",
            )
            rs = session.execute_many(
                [MLIQ(target, 1), Insert(target), MLIQ(target, 1)]
            )
            print(
                "interleaved batch: before-insert answer "
                f"{[m.key for m in rs[0]]}, after-insert answer "
                f"{[m.key for m in rs[2]]}"
            )
            assert [m.key for m in rs[2]] == ["bullseye"]
            total = len(session)

        refreshed = load_manifest(manifest.source_path)
        print(
            f"manifest refreshed on commit: counts "
            f"{[s.objects for s in refreshed.shards]}, epoch "
            f"{refreshed.effective_placement_epoch}"
        )

        # -- 4. HTTP serving with writes --------------------------------------
        primary = connect(
            manifest.source_path, backend="sharded", writable=True
        )
        read_replica = lambda: connect(  # noqa: E731
            manifest.source_path, backend="sharded"
        )
        with serve(
            primary, port=0, session_factory=read_replica, pool_size=2
        ) as server:
            client = ServeClient(server.url)
            reply = client.insert(fresh[64:])
            print(
                f"\nPOST /insert: {reply['inserted']} vectors in "
                f"{reply['execute_seconds'] * 1e3:.1f} ms, server now "
                f"holds {reply['objects']} objects"
            )
            answer = client.query([MLIQ(fresh[64], 3)])
            print(f"queried while writing: top keys {answer.keys()[0]}")
            pool = client.stats()["session_pool"]
            print(
                f"session pool: size={pool['size']}, "
                f"acquires={pool['acquires']}, waits={pool['waits']}"
            )
            total = reply["objects"]
        primary.close()

        # -- 5. durability ----------------------------------------------------
        with connect(manifest.source_path, backend="sharded") as session:
            assert len(session) == total, (len(session), total)
            answer = session.execute(probe)
            print(
                f"\nreopened read-only: {len(session)} objects, probe "
                f"answers {[m.key for m in answer.matches]}"
            )
    finally:
        shutil.rmtree(tmp_dir)
    print("\nwritable sharded round trip complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
