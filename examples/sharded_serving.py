"""Sharded serving, end to end: shard-build -> fan-out session -> HTTP.

Walks the full ``repro.cluster`` lifecycle on a synthetic dataset:

1. partition the database into 3 shards and save one Gauss-tree index
   per shard plus the ``.shards.json`` manifest (what
   ``repro shard-build`` does);
2. connect a ``backend="sharded"`` session to the manifest and show
   that the fanned-out answers carry *globally* renormalised posteriors
   — identical to a sequential scan of the whole database, even though
   no single shard ever saw all of it;
3. serve the session over HTTP (what ``repro serve`` does) and query it
   with the stdlib client.

Run:  PYTHONPATH=src python examples/sharded_serving.py
"""

import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cluster import ServeClient, build_shards, serve  # noqa: E402
from repro.data.synthetic import uniform_pfv_dataset  # noqa: E402
from repro.data.workload import identification_workload  # noqa: E402
from repro.engine import MLIQ, TIQ, connect  # noqa: E402


def main() -> int:
    db = uniform_pfv_dataset(n=1200, d=6, seed=42)
    workload = identification_workload(db, 5, seed=43)
    tmp_dir = tempfile.mkdtemp()
    try:
        # -- 1. shard-build ---------------------------------------------------
        manifest = build_shards(db, 3, os.path.join(tmp_dir, "demo"))
        sizes = [s.objects for s in manifest.shards]
        print(f"sharded n={len(db)} into {sizes} (policy={manifest.policy})")
        print(f"manifest: {os.path.basename(manifest.source_path)}\n")

        # -- 2. fan-out session ----------------------------------------------
        with connect(db, backend="seqscan") as scan, connect(
            manifest.source_path, backend="sharded"
        ) as sharded:
            spec = MLIQ(workload[0].q, 5)
            print(sharded.explain(spec).describe())
            local = scan.execute(spec).matches
            fanned = sharded.execute(spec).matches
            print("\nglobal posteriors survive the shard merge:")
            for a, b in zip(local, fanned):
                agreement = abs(a.probability - b.probability)
                print(
                    f"  key={b.key!r}: sharded {b.probability:.6f} "
                    f"vs scan {a.probability:.6f} (|diff|={agreement:.1e})"
                )
                assert a.key == b.key and agreement < 1e-9

            # -- 3. HTTP serving ---------------------------------------------
            with serve(sharded, port=0) as server:
                client = ServeClient(server.url)
                health = client.healthz()
                print(
                    f"\nserving {health['backend']} "
                    f"({health['objects']} objects) at {server.url}"
                )
                answer = client.query(
                    [MLIQ(w.q, 3) for w in workload]
                    + [TIQ(workload[0].q, 0.2)]
                )
                hits = sum(
                    1
                    for w, keys in zip(workload, answer.keys())
                    if keys and keys[0] == w.true_key
                )
                print(
                    f"served {len(answer.results)} queries over HTTP in "
                    f"{answer.execute_seconds * 1e3:.1f} ms "
                    f"(top-1 hit rate {hits}/{len(workload)})"
                )
                for entry in answer.provenance:
                    print(
                        f"  {entry['shard']}: {entry['pages_accessed']} "
                        f"pages, {entry['objects_refined']} refinements"
                    )
                print(f"server stats: {client.stats()['queries']} queries")
    finally:
        shutil.rmtree(tmp_dir)
    print("\nsharded serving round trip complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
