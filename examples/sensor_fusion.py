"""Sensor fusion: threshold identification over heterogeneous sensors.

A fleet of environmental stations is observed through two kinds of
sensors — calibrated lab-grade units and cheap field units whose error
is an order of magnitude larger. Given an anonymous reading, a
TIQ(P >= theta) asks: which stations could plausibly have produced it?

Demonstrates: per-object uncertainty, TIQ semantics (answer sets shrink
as the threshold rises; probabilities always sum to <= 1), dynamic
index maintenance (insert + delete), and exactness versus the scan.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import PFV, TIQ, PFVDatabase, ThresholdQuery, scan_tiq, session_for
from repro.data.workload import identification_workload
from repro.gausstree.tree import GaussTree

rng = np.random.default_rng(42)
N_STATIONS = 800
D = 6  # temperature, humidity, PM2.5, NO2, O3, pressure (normalised)

mu = rng.uniform(0.0, 1.0, (N_STATIONS, D))
# 70% lab-grade sensors, 30% cheap field units: the uncertainty is a
# property of the *station*, exactly the per-object heterogeneity the
# paper argues distance weighting cannot express.
lab_grade = rng.random(N_STATIONS) < 0.7
sigma = np.where(
    lab_grade[:, None],
    rng.uniform(0.004, 0.015, (N_STATIONS, D)),
    rng.uniform(0.05, 0.15, (N_STATIONS, D)),
)
db = PFVDatabase(
    [PFV(mu[i], sigma[i], key=f"station-{i:03d}") for i in range(N_STATIONS)]
)
print(
    f"{N_STATIONS} stations, {int(lab_grade.sum())} lab-grade, "
    f"{int((~lab_grade).sum())} field-grade"
)

tree = GaussTree(dims=D, degree=6)
tree.extend(db.vectors)
tree.check_invariants()
print(f"Gauss-tree: n={len(tree)}, height={tree.height}\n")

# An anonymous reading re-observed from some station.
probe = identification_workload(db, 1, seed=5)[0]
print(f"anonymous reading; true origin = {probe.true_key}")

session = session_for(tree, probability_tolerance=0.01)
for theta in (0.05, 0.2, 0.5, 0.9):
    # probability_tolerance makes the *reported* posteriors accurate to
    # one point (the answer set itself is exact regardless).
    rs = session.execute(TIQ(probe.q, tau=theta))
    matches, stats = rs.matches, rs.stats
    total = sum(m.probability for m in matches)
    scan_keys = {m.key for m in scan_tiq(db, ThresholdQuery(probe.q, theta))}
    assert {m.key for m in matches} == scan_keys, "index must stay exact"
    listing = ", ".join(
        f"{m.key} ({m.probability:.0%})" for m in matches[:4]
    )
    print(
        f"  TIQ(P>={theta:4.0%}): {len(matches):3d} candidates"
        f"  (sum P = {total:5.1%}, {stats.pages_accessed:3d} pages)  {listing}"
    )

# Stations get decommissioned and replaced; the index keeps its
# invariants through deletes and fresh inserts.
victims = [db[i] for i in range(0, 50)]
for v in victims:
    assert tree.delete(v)
replacement = PFV(rng.uniform(0, 1, D), rng.uniform(0.004, 0.015, D), key="station-new")
tree.insert(replacement)
tree.check_invariants()
print(
    f"\nafter decommissioning {len(victims)} stations and adding one: "
    f"n={len(tree)}, invariants hold"
)
