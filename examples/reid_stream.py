"""Online re-identification over a writable sharded deployment.

The Gauss-tree's motivating workload, run as a live stream: each
arriving observation is *uncertain* (a mean plus a per-dimension
standard deviation), and the question is never "which stored vector is
closest" but "which stored identity most probably generated this".

The loop below is the classic identify-then-insert pattern:

1. shard-build an empty deployment (2 disk shards, round-robin
   placement) and open one writable sharded session;
2. for every observation in a seeded stream, run ``ConsensusTopK`` —
   the symmetric-difference-optimal top-k under the identification
   posterior — and accept the top answer as a re-identification when
   its membership probability clears a threshold, otherwise enroll a
   new identity;
3. insert the observation as a fresh track version either way
   (identify **then** insert, so an observation never matches itself);
4. expire stale track versions with sliding-window deletes, keeping
   the database bounded while the stream runs;
5. report identification accuracy against the generator's ground truth
   plus an ``ExpectedRank`` ranking for the final observation.

Run:  PYTHONPATH=src python examples/reid_stream.py
"""

import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.cluster import build_shards  # noqa: E402
from repro.core.database import PFVDatabase  # noqa: E402
from repro.core.pfv import PFV  # noqa: E402
from repro.engine import ConsensusTopK, ExpectedRank, connect  # noqa: E402

D = 4  # feature dimensions
N_IDENTITIES = 12  # distinct people/objects behind the stream
STREAM = 120  # observations to process
WINDOW = 60  # live track versions kept per sliding window
ACCEPT = 0.9  # consensus membership needed to re-identify


def make_stream(rng):
    """Ground-truth identities plus a seeded stream of noisy, uncertain
    observations of them (each with its own per-dimension sigma)."""
    centers = rng.uniform(0.0, 1.0, (N_IDENTITIES, D))
    stream = []
    for _ in range(STREAM):
        ident = int(rng.integers(N_IDENTITIES))
        sigma = rng.uniform(0.03, 0.12, D)
        mu = centers[ident] + rng.normal(0.0, sigma)
        stream.append((ident, PFV(mu, sigma)))
    return stream


def main() -> int:
    rng = np.random.default_rng(7)
    stream = make_stream(rng)
    tmp_dir = tempfile.mkdtemp()
    try:
        # Seed the deployment with the first observation of the stream
        # (build_shards wants at least the dimensionality pinned down).
        first_ident, first_obs = stream[0]
        seed_track = PFV(first_obs.mu, first_obs.sigma, key=("track", 0))
        manifest = build_shards(
            PFVDatabase([seed_track]),
            2,
            os.path.join(tmp_dir, "reid"),
            policy="round-robin",
        )
        print(
            f"deployment: {manifest.n_shards} shards "
            f"(policy={manifest.policy}), streaming {STREAM} observations "
            f"of {N_IDENTITIES} identities, window={WINDOW}"
        )

        track_identity = {0: first_ident}  # track serial -> enrolled ident
        window = [seed_track]  # FIFO of live track versions, stalest first
        serial = 1
        hits = misses = enrolled = 0
        with connect(
            manifest.source_path, backend="sharded", writable=True
        ) as session:
            for true_ident, obs in stream[1:]:
                # -- identify ---------------------------------------------
                matches = session.execute(ConsensusTopK(obs, 3)).matches
                top = matches[0] if matches else None
                if top is not None and top.score >= ACCEPT:
                    guess = track_identity[top.key[1]]
                    if guess == true_ident:
                        hits += 1
                    else:
                        misses += 1
                else:
                    guess = None  # below threshold: enroll a new track
                    enrolled += 1
                # -- then insert ------------------------------------------
                track = PFV(obs.mu, obs.sigma, key=("track", serial))
                track_identity[serial] = true_ident
                session.insert(track)
                window.append(track)
                serial += 1
                # -- sliding-window expiry --------------------------------
                while len(window) > WINDOW:
                    stale = window.pop(0)
                    assert session.delete(stale), stale.key
            live = len(session)
            print(
                f"re-identified {hits} observations correctly, {misses} "
                f"confused, {enrolled} enrolled as new tracks "
                f"({hits / max(1, hits + misses):.0%} precision on "
                f"accepted matches); {live} track versions live"
            )
            assert live == min(STREAM, WINDOW)
            assert hits > misses

            # The same posterior also ranks by expected rank: useful when
            # the caller wants "the k identities this observation would
            # rank highest", not a set-optimal answer.
            _, last_obs = stream[-1]
            ranked = session.execute(ExpectedRank(last_obs, 3)).matches
            print("final observation, by expected rank:")
            for m in ranked:
                print(
                    f"  track {m.key[1]:>3}  identity "
                    f"{track_identity[m.key[1]]:>2}  "
                    f"P={m.probability:.3f}  E[rank]={m.score:.3f}"
                )
    finally:
        shutil.rmtree(tmp_dir)
    print("\nre-identification stream complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
