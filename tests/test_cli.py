"""CLI round trips: batch workload files, shard lifecycle, serving.

``repro query --input workload.jsonl`` and ``repro serve`` share one
wire format (:mod:`repro.cluster.wire`); these tests pin the round trip
end to end: specs dumped to JSONL parse back identically, the CLI
replays them through any backend, `shard-build` output connects through
``--backend sharded``, and `repro serve` answers a live client from a
fresh process.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import main
from repro.cluster import ServeClient, dump_jsonl, load_jsonl
from repro.engine import MLIQ, TIQ, RankQuery
from repro.core.pfv import PFV


@pytest.fixture(scope="module")
def built_index(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "ds1.gauss")
    assert main(["build", path, "--dataset", "1", "--scale", "0.03"]) == 0
    return path


@pytest.fixture(scope="module")
def shard_manifest(tmp_path_factory):
    prefix = str(tmp_path_factory.mktemp("cli-shards") / "ds1")
    assert (
        main(
            [
                "shard-build",
                prefix,
                "--dataset",
                "1",
                "--scale",
                "0.03",
                "--shards",
                "3",
            ]
        )
        == 0
    )
    return prefix + ".shards.json"


def _workload_specs(n=4, d=27, seed=123):
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(n):
        q = PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.4, d))
        specs.append(MLIQ(q, 3))
        specs.append(TIQ(q, 0.25))
        specs.append(RankQuery(q, 5, min_mass=0.9))
    return specs


def test_jsonl_round_trip_preserves_specs(tmp_path):
    specs = _workload_specs()
    path = tmp_path / "w.jsonl"
    with open(path, "w") as f:
        assert dump_jsonl(specs, f) == len(specs)
    with open(path) as f:
        parsed = load_jsonl(f)
    # Float round trip through JSON is exact (repr-based), so the parsed
    # specs compare equal spec by spec.
    assert parsed == specs


def test_query_replays_an_input_file(built_index, tmp_path, capsys):
    workload = tmp_path / "w.jsonl"
    specs = _workload_specs(n=2)
    with open(workload, "w") as f:
        dump_jsonl(specs, f)
    assert (
        main(["query", built_index, "--input", str(workload), "--show", "2"])
        == 0
    )
    out = capsys.readouterr().out
    assert f"{len(specs)} queries" in out
    assert "backend=disk" in out


def test_query_reads_stdin_workload(built_index, capsys, monkeypatch):
    buffer = io.StringIO()
    dump_jsonl(_workload_specs(n=1), buffer)
    monkeypatch.setattr("sys.stdin", io.StringIO(buffer.getvalue()))
    assert main(["query", built_index, "--input", "-"]) == 0
    assert "3 queries" in capsys.readouterr().out


def test_query_input_excludes_generated_workload_flags(built_index):
    with pytest.raises(SystemExit, match="--input replays"):
        main(["query", built_index, "--input", "w.jsonl", "--k", "3"])


def test_query_rejects_bad_input_file(built_index, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "knn", "mu": [0.1], "sigma": [0.1]}\n')
    with pytest.raises(SystemExit, match="unknown query kind"):
        main(["query", built_index, "--input", str(bad)])
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(SystemExit, match="no queries"):
        main(["query", built_index, "--input", str(empty)])


def test_query_serves_sharded_manifest(shard_manifest, capsys):
    assert (
        main(
            [
                "query",
                shard_manifest,
                "--backend",
                "sharded",
                "--k",
                "3",
                "--queries",
                "10",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "backend=sharded(diskx3)" in out
    assert "shard-00:disk" in out  # provenance breakdown printed


def test_query_pool_flags_require_sharded(built_index):
    with pytest.raises(SystemExit, match="only apply to --backend sharded"):
        main(["query", built_index, "--k", "3", "--pool", "process"])


def test_shard_build_and_input_through_sharded(
    shard_manifest, tmp_path, capsys
):
    workload = tmp_path / "w.jsonl"
    with open(workload, "w") as f:
        dump_jsonl(_workload_specs(n=2), f)
    assert (
        main(
            [
                "query",
                shard_manifest,
                "--backend",
                "sharded",
                "--input",
                str(workload),
            ]
        )
        == 0
    )
    assert "6 queries" in capsys.readouterr().out


def test_serve_smoke_from_fresh_process(shard_manifest, tmp_path):
    """`repro serve` in a real subprocess: healthz + a client query."""
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            shard_manifest,
            "--port",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("serving http://"):
                url = line.split()[1]
                break
        assert url, "server never announced its address"
        client = ServeClient(url, timeout=30)
        health = _poll_healthz(client)
        assert health["objects"] > 0
        rng = np.random.default_rng(7)
        q = PFV(rng.uniform(0, 1, 27), rng.uniform(0.05, 0.4, 27))
        answer = client.query([MLIQ(q, 3)])
        assert answer.backend.startswith("sharded(")
        assert len(answer.results[0]) == 3
        assert json.dumps(answer.results[0][0]["key"]) is not None
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)


def _poll_healthz(client, attempts=30):
    last = None
    for _ in range(attempts):
        try:
            return client.healthz()
        except Exception as exc:  # server still starting
            last = exc
            time.sleep(0.3)
    raise AssertionError(f"healthz never came up: {last}")
