"""Shared fixtures: small seeded databases and query generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV


def make_random_db(
    n: int = 60,
    d: int = 3,
    seed: int = 0,
    sigma_low: float = 0.05,
    sigma_high: float = 0.4,
) -> PFVDatabase:
    """A small uniform pfv database with integer keys."""
    rng = np.random.default_rng(seed)
    vectors = [
        PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(sigma_low, sigma_high, d),
            key=i,
        )
        for i in range(n)
    ]
    return PFVDatabase(vectors)


def make_random_query(d: int = 3, seed: int = 1) -> PFV:
    rng = np.random.default_rng(seed)
    return PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))


@pytest.fixture
def small_db() -> PFVDatabase:
    return make_random_db()


@pytest.fixture
def query_pfv() -> PFV:
    return make_random_query()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
